"""JSON persistence for table pools and sharding tasks.

The paper's artifact ships its processed table configurations and
generated sharding tasks as files on disk (Appendix I: ``tools/
gen_dlrm_data.py`` writes ``data/dlrm_datasets``, ``tools/gen_tasks.py``
writes ``data/tasks/4_gpus``) so that every later stage — data
collection, training, evaluation — operates on *identical* inputs.  This
module provides the same decoupling: pools and task batches round-trip
through human-readable JSON, letting benchmark runs pin their inputs and
letting users bring their own table configurations.

Format notes:

- Files carry a ``format`` tag and version so stale files fail loudly
  instead of deserializing garbage.
- Tables serialize every cost-relevant field of
  :class:`~repro.data.table.TableConfig`; nothing is derived at load
  time, so a file is a complete, reproducible description.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

from repro.data.pool import TablePool
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask

__all__ = [
    "load_pool",
    "load_tasks",
    "save_pool",
    "save_tasks",
    "table_from_dict",
    "table_to_dict",
]

_POOL_FORMAT = "neuroshard-repro/table-pool"
_TASKS_FORMAT = "neuroshard-repro/sharding-tasks"
_VERSION = 1


def table_to_dict(table: TableConfig) -> dict:
    """Serialize one table config to plain JSON types."""
    return {
        "table_id": table.table_id,
        "hash_size": table.hash_size,
        "dim": table.dim,
        "pooling_factor": table.pooling_factor,
        "zipf_alpha": table.zipf_alpha,
        "bytes_per_element": table.bytes_per_element,
    }


def table_from_dict(data: dict) -> TableConfig:
    """Inverse of :func:`table_to_dict`; validation happens in the
    ``TableConfig`` constructor."""
    try:
        return TableConfig(
            table_id=int(data["table_id"]),
            hash_size=int(data["hash_size"]),
            dim=int(data["dim"]),
            pooling_factor=float(data["pooling_factor"]),
            zipf_alpha=float(data["zipf_alpha"]),
            bytes_per_element=int(data.get("bytes_per_element", 4)),
        )
    except KeyError as exc:
        raise ValueError(f"table record missing field {exc}") from None


def _check_header(data: dict, expected_format: str, path: Path) -> None:
    if not isinstance(data, dict) or data.get("format") != expected_format:
        raise ValueError(
            f"{path} is not a {expected_format} file "
            f"(format tag: {data.get('format') if isinstance(data, dict) else None!r})"
        )
    version = data.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{path} has format version {version}, this code reads {_VERSION}"
        )


def save_pool(pool: TablePool, path: str | os.PathLike) -> None:
    """Write a pool (base tables + augmentation grid) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": _POOL_FORMAT,
        "version": _VERSION,
        "augment_dims": list(pool.augment_dims),
        "tables": [table_to_dict(t) for t in pool.tables],
    }
    path.write_text(json.dumps(payload, indent=1))


def load_pool(path: str | os.PathLike) -> TablePool:
    """Load a pool saved by :func:`save_pool`."""
    path = Path(path)
    data = json.loads(path.read_text())
    _check_header(data, _POOL_FORMAT, path)
    tables = [table_from_dict(t) for t in data["tables"]]
    return TablePool(tables, augment_dims=data["augment_dims"])


def save_tasks(tasks: Sequence[ShardingTask], path: str | os.PathLike) -> None:
    """Write a batch of sharding tasks to JSON."""
    if not tasks:
        raise ValueError("cannot save an empty task batch")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": _TASKS_FORMAT,
        "version": _VERSION,
        "tasks": [
            {
                "task_id": task.task_id,
                "num_devices": task.num_devices,
                "memory_bytes": task.memory_bytes,
                "tables": [table_to_dict(t) for t in task.tables],
            }
            for task in tasks
        ],
    }
    path.write_text(json.dumps(payload, indent=1))


def load_tasks(path: str | os.PathLike) -> list[ShardingTask]:
    """Load a task batch saved by :func:`save_tasks`."""
    path = Path(path)
    data = json.loads(path.read_text())
    _check_header(data, _TASKS_FORMAT, path)
    tasks = []
    for record in data["tasks"]:
        try:
            tasks.append(
                ShardingTask(
                    tables=tuple(
                        table_from_dict(t) for t in record["tables"]
                    ),
                    num_devices=int(record["num_devices"]),
                    memory_bytes=int(record["memory_bytes"]),
                    task_id=int(record.get("task_id", 0)),
                )
            )
        except KeyError as exc:
            raise ValueError(f"task record missing field {exc}") from None
    return tasks
