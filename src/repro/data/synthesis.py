"""Synthetic DLRM table-pool generation.

The paper evaluates on the open ``dlrm_datasets`` benchmark: 856 synthetic
embedding tables whose index distributions mirror Meta production
workloads.  Paper Table 6 publishes its aggregate statistics:

===========================  ==========
# of tables                  856
average hash size            4,107,458
average pooling factor       15
===========================  ==========

We cannot ship the 4 GB artifact here, so this module *synthesizes* a pool
with matching statistics.  Hash sizes follow a clipped log-normal (real
table pools span 4 orders of magnitude); pooling factors are a mixture of
"one-hot" features (pooling factor ~1, like Criteo-style categorical
fields) and heavy multi-valued features; Zipf exponents cover the
mild-to-extreme skew range observed in production traces.

Everything is driven by an explicit seed, so the pool is reproducible
bit-for-bit across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import rng_from_seed
from repro.data.table import TableConfig

__all__ = [
    "DEFAULT_NUM_TABLES",
    "PoolStatistics",
    "synthesize_table_pool",
    "pool_statistics",
    "public_dataset_statistics",
]

#: Size of the dlrm_datasets table pool.
DEFAULT_NUM_TABLES = 856

#: Target statistics from paper Table 6.
_TARGET_MEAN_HASH_SIZE = 4_107_458
_TARGET_MEAN_POOLING = 15.0

#: Hash sizes are clipped to this range (rows).
_MIN_HASH_SIZE = 1_000
_MAX_HASH_SIZE = 100_000_000

#: Zipf exponent range: ~1.0 is mild skew, >2 is extreme hot-row skew.
_ZIPF_RANGE = (0.95, 2.2)


def synthesize_table_pool(
    num_tables: int = DEFAULT_NUM_TABLES,
    seed: int | np.random.Generator = 0,
    default_dim: int = 64,
) -> list[TableConfig]:
    """Generate a reproducible pool of embedding-table configs.

    Args:
        num_tables: pool size (856 reproduces ``dlrm_datasets``).
        seed: integer seed or generator.
        default_dim: dimension given to every table.  The benchmark tasks
            re-assign dimensions per task (paper Section 4), and table
            augmentation covers the full dimension grid, so this is only a
            placeholder.

    Returns:
        List of ``num_tables`` :class:`TableConfig` with ``table_id`` equal
        to the list position.
    """
    if num_tables < 1:
        raise ValueError(f"num_tables must be >= 1, got {num_tables}")
    rng = rng_from_seed(seed)

    # --- hash sizes: log-normal calibrated to the Table 6 mean. --------
    # mean(lognormal(mu, sigma)) = exp(mu + sigma^2 / 2).  sigma = 2.05
    # spreads tables from ~1e3 to ~1e8 rows; solve mu for the target mean.
    sigma = 2.05
    mu = float(np.log(_TARGET_MEAN_HASH_SIZE)) - sigma**2 / 2.0
    hash_sizes = np.exp(rng.normal(mu, sigma, size=num_tables))
    hash_sizes = np.clip(hash_sizes, _MIN_HASH_SIZE, _MAX_HASH_SIZE)
    hash_sizes = hash_sizes.astype(np.int64)

    # --- pooling factors: mixture of one-hot-ish and heavy features. ---
    # ~35% of features are nearly one-hot (pooling in [1, 2]); the rest are
    # multi-valued with a log-normal spread.  The log-normal mean is chosen
    # so that the pool-wide mean lands on the published value of 15.
    one_hot = rng.random(num_tables) < 0.35
    heavy_mean = (_TARGET_MEAN_POOLING - 0.35 * 1.5) / 0.65
    p_sigma = 1.0
    p_mu = float(np.log(heavy_mean)) - p_sigma**2 / 2.0
    pooling = np.where(
        one_hot,
        rng.uniform(1.0, 2.0, size=num_tables),
        np.exp(rng.normal(p_mu, p_sigma, size=num_tables)),
    )
    pooling = np.clip(pooling, 1.0, 200.0)

    # --- index-distribution skew. ---------------------------------------
    zipf_alpha = rng.uniform(*_ZIPF_RANGE, size=num_tables)

    return [
        TableConfig(
            table_id=i,
            hash_size=int(hash_sizes[i]),
            dim=default_dim,
            pooling_factor=float(round(pooling[i], 4)),
            zipf_alpha=float(round(zipf_alpha[i], 4)),
        )
        for i in range(num_tables)
    ]


@dataclass(frozen=True)
class PoolStatistics:
    """Aggregate statistics of a table pool (paper Table 6 row)."""

    num_tables: int
    mean_hash_size: float
    mean_pooling_factor: float
    max_hash_size: int
    min_hash_size: int
    total_size_gb_at_dim: float
    dim_for_size: int

    def as_row(self) -> dict[str, float | int | str]:
        """Row for the Table 6 reproduction benchmark."""
        return {
            "dataset": "DLRM (synthesized)",
            "num_tables": self.num_tables,
            "avg_hash_size": round(self.mean_hash_size),
            "avg_pooling_factor": round(self.mean_pooling_factor, 1),
        }


def pool_statistics(
    pool: Sequence[TableConfig], dim_for_size: int = 64
) -> PoolStatistics:
    """Compute the aggregate statistics the paper reports in Table 6."""
    if not pool:
        raise ValueError("pool must not be empty")
    hash_sizes = np.array([t.hash_size for t in pool], dtype=np.float64)
    pooling = np.array([t.pooling_factor for t in pool], dtype=np.float64)
    total_bytes = float(
        sum(t.hash_size * dim_for_size * t.bytes_per_element for t in pool)
    )
    return PoolStatistics(
        num_tables=len(pool),
        mean_hash_size=float(hash_sizes.mean()),
        mean_pooling_factor=float(pooling.mean()),
        max_hash_size=int(hash_sizes.max()),
        min_hash_size=int(hash_sizes.min()),
        total_size_gb_at_dim=total_bytes / 1024**3,
        dim_for_size=dim_for_size,
    )


def public_dataset_statistics() -> list[dict[str, float | int | str]]:
    """The public-dataset comparison rows of paper Table 6 (verbatim).

    Used by the Table 6 benchmark to reproduce the paper's argument that
    Criteo/Avazu/KDD are orders of magnitude too small for sharding to
    matter.
    """
    return [
        {"dataset": "Criteo", "num_tables": 26, "avg_hash_size": 17_839,
         "avg_pooling_factor": 1},
        {"dataset": "Avazu", "num_tables": 23, "avg_hash_size": 67_152,
         "avg_pooling_factor": 1},
        {"dataset": "KDD", "num_tables": 10, "avg_hash_size": 601_908,
         "avg_pooling_factor": 1},
    ]
