"""Table pool: augmentation and random input generation (Section 3.1).

The pre-training data for the cost models is produced from three
generators, reproduced here exactly as the paper's appendix pseudo-code:

- **Table augmentation** (Algorithm 3): every pool table is replicated at
  every dimension of the augmentation grid, so the cost models see all the
  dimensions that feature selection or column-wise sharding can create.
- **Random table combination generation** (Algorithm 4): uniform table
  count ``T`` in a range, then ``T`` tables sampled from the augmented
  pool — the computation-cost micro-benchmark inputs.
- **Random table placement generation** (Algorithm 5): a
  greedy-with-probability-``p`` allocation across ``D`` devices where
  ``p ~ U[0, 1]`` per placement, covering the whole spectrum from
  perfectly dimension-balanced to fully random placements — the
  communication-cost micro-benchmark inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import DIMENSION_GRID, rng_from_seed
from repro.data.table import TableConfig

__all__ = ["Placement", "TablePool"]


@dataclass(frozen=True)
class Placement:
    """A table-to-device assignment produced by Algorithm 5.

    Attributes:
        per_device: ``per_device[d]`` is the list of tables on device ``d``.
        greedy_probability: the ``p`` drawn for this placement — the
            probability each table was placed greedily rather than
            uniformly at random.  Retained for analysis/debugging.
    """

    per_device: tuple[tuple[TableConfig, ...], ...]
    greedy_probability: float

    @property
    def num_devices(self) -> int:
        return len(self.per_device)

    @property
    def device_dims(self) -> list[int]:
        """Sum of table dimensions per device (the comm-balance proxy)."""
        return [sum(t.dim for t in dev) for dev in self.per_device]

    @property
    def num_tables(self) -> int:
        return sum(len(dev) for dev in self.per_device)

    def device_sizes(self) -> list[int]:
        """Bytes of embedding weights per device."""
        return [sum(t.size_bytes for t in dev) for dev in self.per_device]


class TablePool:
    """A pool of embedding tables plus the paper's sampling algorithms.

    Args:
        tables: base tables (typically from
            :func:`~repro.data.synthesis.synthesize_table_pool`).
        augment_dims: dimension grid for Algorithm 3; defaults to the
            paper's {4, 8, 16, 32, 64, 128}.
    """

    def __init__(
        self,
        tables: Sequence[TableConfig],
        augment_dims: Sequence[int] = DIMENSION_GRID,
    ) -> None:
        if not tables:
            raise ValueError("tables must not be empty")
        if not augment_dims:
            raise ValueError("augment_dims must not be empty")
        self._tables = list(tables)
        self._augment_dims = tuple(sorted(set(int(d) for d in augment_dims)))
        self._augmented: list[TableConfig] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def tables(self) -> list[TableConfig]:
        """The base (un-augmented) tables."""
        return list(self._tables)

    @property
    def augment_dims(self) -> tuple[int, ...]:
        return self._augment_dims

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # Algorithm 3: table augmentation
    # ------------------------------------------------------------------

    @property
    def augmented(self) -> list[TableConfig]:
        """The augmented pool: every base table at every grid dimension.

        Computed lazily and cached; ``len == len(pool) * len(grid)``.
        """
        if self._augmented is None:
            self._augmented = [
                t.with_dim(d) for t in self._tables for d in self._augment_dims
            ]
        return list(self._augmented)

    # ------------------------------------------------------------------
    # Algorithm 4: random table combination generation
    # ------------------------------------------------------------------

    def sample_combination(
        self,
        rng: int | np.random.Generator,
        min_tables: int = 1,
        max_tables: int = 15,
    ) -> list[TableConfig]:
        """One random table combination from the augmented pool.

        Sampling is *with replacement* across calls but without
        replacement within a combination, matching a multi-table fused
        kernel input.
        """
        if not 1 <= min_tables <= max_tables:
            raise ValueError(
                f"need 1 <= min_tables <= max_tables, got {min_tables}..{max_tables}"
            )
        rng = rng_from_seed(rng)
        pool = self.augmented
        num = int(rng.integers(min_tables, max_tables + 1))
        num = min(num, len(pool))
        idx = rng.choice(len(pool), size=num, replace=False)
        return [pool[i] for i in idx]

    def sample_combinations(
        self,
        count: int,
        rng: int | np.random.Generator,
        min_tables: int = 1,
        max_tables: int = 15,
    ) -> list[list[TableConfig]]:
        """``count`` combinations (Algorithm 4's outer loop)."""
        rng = rng_from_seed(rng)
        return [
            self.sample_combination(rng, min_tables, max_tables)
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # Algorithm 5: random table placement generation
    # ------------------------------------------------------------------

    def sample_placement(
        self,
        rng: int | np.random.Generator,
        num_devices: int,
        min_tables: int = 10,
        max_tables: int = 60,
        memory_bytes: int | None = None,
    ) -> Placement:
        """One random placement across ``num_devices`` devices.

        Implements Algorithm 5: sample ``T`` tables, sort by descending
        dimension, then place each table greedily (onto the device with the
        lowest running dimension sum) with probability ``p`` and uniformly
        at random otherwise, where ``p ~ U[0, 1]`` is drawn once per
        placement.  Devices that would exceed ``memory_bytes`` are never
        candidates; tables too large for *any* remaining device are
        skipped (the communication benchmark only needs valid placements
        with diverse device dimensions — oversized tables are what
        column-wise sharding exists for).

        Raises:
            RuntimeError: if no pool table at all fits an empty device.
        """
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if not 1 <= min_tables <= max_tables:
            raise ValueError(
                f"need 1 <= min_tables <= max_tables, got {min_tables}..{max_tables}"
            )
        rng = rng_from_seed(rng)
        pool = self.augmented
        if memory_bytes is not None:
            # A table larger than a whole device can never be placed; the
            # paper's placement benchmark only exercises placeable tables
            # (oversized ones are what column-wise sharding is for).
            pool = [t for t in pool if t.size_bytes <= memory_bytes]
            if not pool:
                raise RuntimeError(
                    f"no pool table fits the {memory_bytes} B device budget"
                )
        num = min(int(rng.integers(min_tables, max_tables + 1)), len(pool))
        idx = rng.choice(len(pool), size=num, replace=False)
        chosen = sorted((pool[i] for i in idx), key=lambda t: -t.dim)

        p = float(rng.random())
        device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        device_dims = np.zeros(num_devices, dtype=np.int64)
        device_bytes = np.zeros(num_devices, dtype=np.int64)

        for table in chosen:
            if memory_bytes is None:
                candidates = np.arange(num_devices)
            else:
                candidates = np.flatnonzero(
                    device_bytes + table.size_bytes <= memory_bytes
                )
                if candidates.size == 0:
                    # Every device is too full for this table.  The comm
                    # benchmark only needs *valid* placements with diverse
                    # device dimensions, so the table is skipped rather
                    # than failing the whole placement.
                    continue
            if rng.random() <= p:
                # Greedy step: lowest device dimension among candidates.
                target = int(candidates[np.argmin(device_dims[candidates])])
            else:
                target = int(rng.choice(candidates))
            device_tables[target].append(table)
            device_dims[target] += table.dim
            device_bytes[target] += table.size_bytes

        return Placement(
            per_device=tuple(tuple(dev) for dev in device_tables),
            greedy_probability=p,
        )

    def sample_placements(
        self,
        count: int,
        rng: int | np.random.Generator,
        num_devices: int,
        min_tables: int = 10,
        max_tables: int = 60,
        memory_bytes: int | None = None,
    ) -> list[Placement]:
        """``count`` placements (Algorithm 5's outer loop)."""
        rng = rng_from_seed(rng)
        return [
            self.sample_placement(
                rng, num_devices, min_tables, max_tables, memory_bytes
            )
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # misc sampling helpers
    # ------------------------------------------------------------------

    def sample_tables(
        self,
        count: int,
        rng: int | np.random.Generator,
        dims: Sequence[int] | None = None,
    ) -> list[TableConfig]:
        """Sample ``count`` distinct base tables, optionally re-dimensioned.

        Used by the sharding-task generator: ``dims`` gives the choices
        each sampled table's dimension is drawn from.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = rng_from_seed(rng)
        count = min(count, len(self._tables))
        idx = rng.choice(len(self._tables), size=count, replace=False)
        chosen = [self._tables[i] for i in idx]
        if dims is not None:
            dims = tuple(dims)
            if not dims:
                raise ValueError("dims must not be empty when provided")
            chosen = [t.with_dim(int(rng.choice(dims))) for t in chosen]
        return chosen
