"""Embedding-table data model and synthetic DLRM dataset.

This package replaces the paper's ``dlrm_datasets`` dependency (856
synthetic Meta-like tables, distributed as a 4 GB PyTorch file) with a
seeded generator that matches the published statistics (paper Table 6):
856 tables, average hash size ~4.1 M rows, average pooling factor ~15,
skewed (Zipf-like) index distributions.

Public API:

- :class:`~repro.data.table.TableConfig` — one embedding table.
- :func:`~repro.data.synthesis.synthesize_table_pool` — the 856-table pool.
- :class:`~repro.data.pool.TablePool` — augmentation (Algorithm 3), random
  combinations (Algorithm 4) and random placements (Algorithm 5).
- :class:`~repro.data.tasks.ShardingTask` /
  :func:`~repro.data.tasks.generate_tasks` — benchmark sharding tasks
  (paper Table 5).
"""

from repro.data.table import TableConfig, table_set_key, total_size_bytes
from repro.data.synthesis import (
    PoolStatistics,
    pool_statistics,
    public_dataset_statistics,
    synthesize_table_pool,
)
from repro.data.pool import Placement, TablePool
from repro.data.tasks import ShardingTask, generate_task_grid, generate_tasks
from repro.data.io import (
    load_pool,
    load_tasks,
    save_pool,
    save_tasks,
    table_from_dict,
    table_to_dict,
)

__all__ = [
    "generate_task_grid",
    "load_pool",
    "load_tasks",
    "save_pool",
    "save_tasks",
    "table_from_dict",
    "table_to_dict",
    "TableConfig",
    "table_set_key",
    "total_size_bytes",
    "PoolStatistics",
    "pool_statistics",
    "public_dataset_statistics",
    "synthesize_table_pool",
    "Placement",
    "TablePool",
    "ShardingTask",
    "generate_tasks",
]
