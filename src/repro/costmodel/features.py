"""Per-table feature extraction for the computation cost model.

Section 2.1 identifies the cost-relevant factors: dimension, hash size,
pooling factor and the indices distribution (access skew, unique rows per
batch).  Following AutoShard (Zha et al., 2022a), each table is encoded as
a fixed vector of those factors plus distribution summaries; the batch
size is fixed per deployment, so batch-dependent quantities (indices per
batch, expected unique rows) are features, not inputs.

All heavy-tailed quantities enter in log scale and are shifted/scaled to
O(1) magnitudes so the MLP trains without per-dataset normalization
statistics (which would complicate the "once-for-all" deployment story —
a pre-trained model must featurize unseen tables identically).

**Feature bank.**  Feature rows live in one preallocated 2-D array (the
*bank*), grown geometrically and indexed by an interned per-``uid`` row
id.  The batched search keeps per-device state as lists of those integer
row ids and materializes a whole grid pass / beam frontier of candidate
sets with a single fancy-index gather (:meth:`TableFeaturizer.gather`)
instead of re-stacking Python lists of vectors per candidate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import TableConfig

__all__ = ["TableFeaturizer"]

#: Concentration quantiles summarizing the access distribution: the mass
#: hitting the hottest 0.1% / 1% / 10% of rows.
_CONCENTRATION_FRACTIONS = (0.001, 0.01, 0.1)


class TableFeaturizer:
    """Maps a :class:`TableConfig` to the cost model's feature vector.

    Args:
        batch_size: the deployment batch size (fixed per trained model;
            a model trained for one batch size must be re-trained for
            another, like the paper's per-setting models in Table 2).

    The feature layout (``num_features`` wide) is::

        0  log2(dim)                      5  log10(indices per batch)
        1  dim / 128                      6  unique fraction of the batch
        2  log10(hash size)               7  log10(expected unique rows)
        3  log10(pooling factor + 1)      8  zipf alpha
        4  pooling factor / 100           9  log10(table bytes)
        10..12  access concentration at the hottest 0.1% / 1% / 10%
        13 dim * pooling / 1000  (lookup workload, the "lookup-based"
           greedy heuristic, as a learned-model input)
        14 constant 1.0 — sums to the table count under the pooling,
           letting the head model the fused-kernel speedup, which is a
           function of how many tables are fused (Observation 2)

    Feature rows are interned per table ``uid`` into a preallocated bank
    (the search queries the same tables thousands of times); callers on
    the hot path hold integer row ids (:meth:`row_index`,
    :meth:`row_indices`) and gather flat candidate matrices straight
    from the bank.
    """

    NUM_FEATURES = 15
    _INITIAL_CAPACITY = 64

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._bank = np.empty(
            (self._INITIAL_CAPACITY, self.NUM_FEATURES), dtype=np.float64
        )
        self._row_by_uid: dict[str, int] = {}
        self._num_rows = 0
        # Per-uid view objects into the bank, so repeated features()
        # calls return the same array object (callers rely on identity
        # for their own caching).  Views from before a geometric grow
        # keep the retired buffer alive — values stay correct because
        # interned rows are immutable until clear_cache().
        self._views: dict[str, np.ndarray] = {}

    @property
    def num_features(self) -> int:
        return self.NUM_FEATURES

    @property
    def bank(self) -> np.ndarray:
        """The preallocated feature bank; rows ``< num_interned`` are live."""
        return self._bank

    @property
    def num_interned(self) -> int:
        """Number of live rows in :attr:`bank`."""
        return self._num_rows

    def _compute_features(self, table: TableConfig) -> np.ndarray:
        b = self.batch_size
        indices = table.indices_per_batch(b)
        unique = table.expected_unique_rows(b)
        vec = np.array(
            [
                np.log2(table.dim),
                table.dim / 128.0,
                np.log10(table.hash_size),
                np.log10(table.pooling_factor + 1.0),
                table.pooling_factor / 100.0,
                np.log10(indices),
                unique / indices,
                np.log10(unique + 1.0),
                table.zipf_alpha,
                np.log10(table.size_bytes),
                *(
                    table.access_concentration(f)
                    for f in _CONCENTRATION_FRACTIONS
                ),
                table.dim * table.pooling_factor / 1000.0,
                1.0,
            ],
            dtype=np.float64,
        )
        if vec.shape != (self.NUM_FEATURES,):
            raise AssertionError(
                f"feature layout drifted: got {vec.shape}, "
                f"expected ({self.NUM_FEATURES},)"
            )
        return vec

    def row_index(self, table: TableConfig) -> int:
        """Bank row id of ``table``, interning its features on first use."""
        idx = self._row_by_uid.get(table.uid)
        if idx is not None:
            return idx
        idx = self._num_rows
        if idx == self._bank.shape[0]:
            # Geometric growth: copy live rows into a fresh buffer twice
            # the size.  Never shrinks, never rebuilds from Python lists,
            # and never writes new rows into a buffer an outstanding view
            # aliases past its live region.
            grown = np.empty(
                (2 * self._bank.shape[0], self.NUM_FEATURES), dtype=np.float64
            )
            grown[:idx] = self._bank[:idx]
            self._bank = grown
        self._bank[idx] = self._compute_features(table)
        self._row_by_uid[table.uid] = idx
        self._num_rows = idx + 1
        return idx

    def row_indices(self, tables: Sequence[TableConfig]) -> np.ndarray:
        """Bank row ids for a table list (interning as needed)."""
        return np.fromiter(
            (self.row_index(t) for t in tables), dtype=np.intp, count=len(tables)
        )

    def gather(self, flat_row_ids: np.ndarray) -> np.ndarray:
        """Stack bank rows ``[len(flat_row_ids), F]`` by fancy index.

        The batched scoring path concatenates the row-id lists of every
        candidate set in a grid pass / beam frontier and materializes the
        whole flat feature matrix in this one gather.  Ids must be live
        (interned in the current epoch): ids issued before a
        :meth:`clear_cache` are rejected rather than silently resolved
        against re-interned rows.
        """
        flat_row_ids = np.asarray(flat_row_ids)
        if flat_row_ids.size and int(flat_row_ids.max()) >= self._num_rows:
            raise IndexError(
                f"stale feature row id {int(flat_row_ids.max())}: only "
                f"{self._num_rows} rows are interned in the current epoch "
                "(row ids do not survive clear_cache())"
            )
        return self._bank[flat_row_ids]

    def features(self, table: TableConfig) -> np.ndarray:
        """Feature vector of one table (interned; stable object identity)."""
        view = self._views.get(table.uid)
        if view is None:
            view = self._bank[self.row_index(table)]
            self._views[table.uid] = view
        return view

    def features_rows(
        self, tables: Sequence[TableConfig]
    ) -> list[np.ndarray]:
        """Cached per-table feature rows, without stacking.

        The non-batched (ablation) search keeps per-device *lists* of
        these rows and stacks only the combinations the cost cache
        misses; returning interned row references avoids re-stacking on
        every candidate.
        """
        return [self.features(t) for t in tables]

    def features_matrix(self, tables: Sequence[TableConfig]) -> np.ndarray:
        """Stacked feature rows for a table combination ``[T, F]``."""
        if len(tables) == 0:
            return np.zeros((0, self.NUM_FEATURES))
        return self.gather(self.row_indices(tables))

    def clear_cache(self) -> None:
        """Drop every interned row *and* the preallocated bank.

        Replacing the bank (instead of only clearing the uid map) is
        load-bearing: previously handed-out row ids must never resolve
        to stale rows after a :class:`TableConfig` changes under a
        reused ``uid`` — re-interning into a retained buffer would let
        an old id silently alias the old features.  The fresh epoch
        starts at zero live rows, so :meth:`gather` rejects stale ids
        loudly until they are re-interned.
        """
        self._row_by_uid.clear()
        self._views.clear()
        self._num_rows = 0
        self._bank = np.empty(
            (self._INITIAL_CAPACITY, self.NUM_FEATURES), dtype=np.float64
        )
