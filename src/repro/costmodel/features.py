"""Per-table feature extraction for the computation cost model.

Section 2.1 identifies the cost-relevant factors: dimension, hash size,
pooling factor and the indices distribution (access skew, unique rows per
batch).  Following AutoShard (Zha et al., 2022a), each table is encoded as
a fixed vector of those factors plus distribution summaries; the batch
size is fixed per deployment, so batch-dependent quantities (indices per
batch, expected unique rows) are features, not inputs.

All heavy-tailed quantities enter in log scale and are shifted/scaled to
O(1) magnitudes so the MLP trains without per-dataset normalization
statistics (which would complicate the "once-for-all" deployment story —
a pre-trained model must featurize unseen tables identically).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import TableConfig

__all__ = ["TableFeaturizer"]

#: Concentration quantiles summarizing the access distribution: the mass
#: hitting the hottest 0.1% / 1% / 10% of rows.
_CONCENTRATION_FRACTIONS = (0.001, 0.01, 0.1)


class TableFeaturizer:
    """Maps a :class:`TableConfig` to the cost model's feature vector.

    Args:
        batch_size: the deployment batch size (fixed per trained model;
            a model trained for one batch size must be re-trained for
            another, like the paper's per-setting models in Table 2).

    The feature layout (``num_features`` wide) is::

        0  log2(dim)                      5  log10(indices per batch)
        1  dim / 128                      6  unique fraction of the batch
        2  log10(hash size)               7  log10(expected unique rows)
        3  log10(pooling factor + 1)      8  zipf alpha
        4  pooling factor / 100           9  log10(table bytes)
        10..12  access concentration at the hottest 0.1% / 1% / 10%
        13 dim * pooling / 1000  (lookup workload, the "lookup-based"
           greedy heuristic, as a learned-model input)
        14 constant 1.0 — sums to the table count under the pooling,
           letting the head model the fused-kernel speedup, which is a
           function of how many tables are fused (Observation 2)

    Feature vectors are cached per table ``uid`` — the search queries the
    same tables thousands of times.
    """

    NUM_FEATURES = 15

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._cache: dict[str, np.ndarray] = {}

    @property
    def num_features(self) -> int:
        return self.NUM_FEATURES

    def features(self, table: TableConfig) -> np.ndarray:
        """Feature vector of one table (cached)."""
        cached = self._cache.get(table.uid)
        if cached is not None:
            return cached
        b = self.batch_size
        indices = table.indices_per_batch(b)
        unique = table.expected_unique_rows(b)
        vec = np.array(
            [
                np.log2(table.dim),
                table.dim / 128.0,
                np.log10(table.hash_size),
                np.log10(table.pooling_factor + 1.0),
                table.pooling_factor / 100.0,
                np.log10(indices),
                unique / indices,
                np.log10(unique + 1.0),
                table.zipf_alpha,
                np.log10(table.size_bytes),
                *(
                    table.access_concentration(f)
                    for f in _CONCENTRATION_FRACTIONS
                ),
                table.dim * table.pooling_factor / 1000.0,
                1.0,
            ],
            dtype=np.float64,
        )
        if vec.shape != (self.NUM_FEATURES,):
            raise AssertionError(
                f"feature layout drifted: got {vec.shape}, "
                f"expected ({self.NUM_FEATURES},)"
            )
        self._cache[table.uid] = vec
        return vec

    def features_rows(
        self, tables: Sequence[TableConfig]
    ) -> list[np.ndarray]:
        """Cached per-table feature rows, without stacking.

        The incremental search keeps per-device *lists* of these rows
        (appending a candidate row is O(1)) and stacks only the few
        combinations the cost cache misses; returning the cached row
        references directly avoids re-stacking on every candidate.
        """
        return [self.features(t) for t in tables]

    def features_matrix(self, tables: Sequence[TableConfig]) -> np.ndarray:
        """Stacked feature rows for a table combination ``[T, F]``."""
        if len(tables) == 0:
            return np.zeros((0, self.NUM_FEATURES))
        return np.stack(self.features_rows(tables))

    def clear_cache(self) -> None:
        self._cache.clear()
