"""Pre-trained neural cost models (Sections 3.1-3.2).

This package turns the hardware micro-benchmarks into the "universal
sharding simulator" at the heart of NeuroShard:

- :mod:`~repro.costmodel.features` — per-table feature extraction
  (dimension, hash size, pooling factor, index-distribution summaries).
- :mod:`~repro.costmodel.compute_model` — the computation cost model:
  a shared table MLP, element-wise sum over the combination, and an MLP
  head (Figure 5, left).
- :mod:`~repro.costmodel.comm_model` — the forward/backward communication
  cost models: an MLP over per-device starting timestamps and transfer
  sizes (Figure 5, right).
- :mod:`~repro.costmodel.collect` — micro-benchmark collection against the
  simulated cluster (the PARAM-benchmark stand-in).
- :mod:`~repro.costmodel.pretrain` — the end-to-end pre-training pipeline
  producing a :class:`~repro.costmodel.pretrain.PretrainedCostModels`
  bundle.
- :mod:`~repro.costmodel.evaluate` — accuracy metrics (MSE, Kendall's
  tau) for Table 2 / Figure 8.
- :mod:`~repro.costmodel.drift` — the production drift monitor sketched
  in Section 3.2 ("periodically calculate the prediction errors ... and
  trigger re-training when the error exceeds a certain threshold").
- :mod:`~repro.costmodel.linear_model` — closed-form *linear* (ridge)
  cost models, the "even simpler network" Section 4.2 argues cannot
  capture the cost non-linearity; used by the extension ablation.
"""

from repro.costmodel.features import TableFeaturizer
from repro.costmodel.compute_model import ComputeCostModel
from repro.costmodel.comm_model import CommCostModel, comm_features
from repro.costmodel.collect import (
    collect_comm_data,
    collect_compute_data,
)
from repro.costmodel.pretrain import (
    CostModelReport,
    PretrainedCostModels,
    pretrain_cost_models,
)
from repro.costmodel.evaluate import kendall_tau, mse, scatter_eval
from repro.costmodel.drift import DriftMonitor, DriftReport
from repro.costmodel.linear_model import (
    LinearCommCostModel,
    LinearComputeCostModel,
    fit_linear_comm_model,
    fit_linear_compute_model,
)

__all__ = [
    "LinearCommCostModel",
    "LinearComputeCostModel",
    "fit_linear_comm_model",
    "fit_linear_compute_model",
    "TableFeaturizer",
    "ComputeCostModel",
    "CommCostModel",
    "comm_features",
    "collect_compute_data",
    "collect_comm_data",
    "PretrainedCostModels",
    "CostModelReport",
    "pretrain_cost_models",
    "mse",
    "kendall_tau",
    "scatter_eval",
    "DriftMonitor",
    "DriftReport",
]
