"""Linear cost models — the "even simpler network" the paper rules out.

Section 4.2: *"the result does not imply that we can use a simpler model.
The current neural architecture of NeuroShard is already very shallow.
An even simpler network (i.e., a linear one) may not work due to the
non-linearity of the costs."*  This module makes that claim testable:

:class:`LinearComputeCostModel` is the strongest linear competitor one
can build on the same features — closed-form ridge regression on the
*pooled* combination representation (the element-wise sum of per-table
feature vectors, plus the table count).  Sum-pooling is the only
aggregation that keeps the model linear in per-table quantities, and it
is exactly the structure a mixed-integer formulation (RecShard) needs:
``cost(S) = w · sum_t phi(t) + b``.  What it *cannot* represent is
Observation 2 — the fused multi-table cost being non-linear in the
single-table sums — which is where the MLP earns its keep.

:class:`LinearCommCostModel` is the analogous ridge regressor on the
communication features.

Both expose the same ``predict_*`` / ``set_target_stats`` interface as
the neural models, so they can be dropped into a
:class:`~repro.costmodel.pretrain.PretrainedCostModels` bundle and run
through the full search — the extension benchmark does precisely this to
measure the end-to-end sharding cost of linear cost modeling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.kernels import chunked_affine, stable_segment_sum
from repro.nn.data import ArrayDataset

__all__ = [
    "LinearComputeCostModel",
    "LinearCommCostModel",
    "fit_linear_compute_model",
    "fit_linear_comm_model",
]


def _ridge_fit(x: np.ndarray, y: np.ndarray, l2: float) -> np.ndarray:
    """Closed-form ridge solution with an unpenalized bias column.

    Returns the stacked coefficient matrix ``[F+1, O]`` whose last row is
    the bias.
    """
    n, f = x.shape
    xb = np.concatenate([x, np.ones((n, 1))], axis=1)
    reg = l2 * np.eye(f + 1)
    reg[-1, -1] = 0.0  # do not shrink the bias
    gram = xb.T @ xb + reg
    return np.linalg.solve(gram, xb.T @ y)


def _pooled_features(matrix: np.ndarray, num_features: int) -> np.ndarray:
    """Sum-pool a combination's [T, F] feature matrix to [F+1]
    (feature sums plus the table count)."""
    mat = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    if mat.size == 0:
        return np.zeros(num_features + 1)
    if mat.shape[1] != num_features:
        raise ValueError(
            f"combination has {mat.shape[1]} features, expected {num_features}"
        )
    return np.concatenate([mat.sum(axis=0), [float(mat.shape[0])]])


class LinearComputeCostModel:
    """Ridge regression on sum-pooled table features.

    Interface-compatible with
    :class:`~repro.costmodel.compute_model.ComputeCostModel` for
    prediction, so a bundle carrying it runs through the unmodified
    search.

    Args:
        num_features: width of each table's feature vector.
        l2: ridge penalty.
    """

    def __init__(self, num_features: int, l2: float = 1e-3) -> None:
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.num_features = num_features
        self.l2 = l2
        self._coef: np.ndarray | None = None  # [F+2] incl. count + bias
        self.target_mean = 0.0
        self.target_std = 1.0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, matrices: Sequence[np.ndarray], targets: Sequence[float]) -> float:
        """Closed-form fit; returns the training MSE in ms²."""
        if len(matrices) != len(targets):
            raise ValueError(
                f"{len(matrices)} inputs but {len(targets)} targets"
            )
        if len(matrices) == 0:
            raise ValueError("need at least one sample")
        x = np.stack(
            [_pooled_features(m, self.num_features) for m in matrices]
        )
        y = np.asarray(targets, dtype=np.float64)
        self._coef = _ridge_fit(x, y[:, None], self.l2)[:, 0]
        preds = self._predict_pooled(x)
        return float(np.mean((preds - y) ** 2))

    def _predict_pooled(self, x: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        xb = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        # Chunk-stable affine (see repro.costmodel.kernels): a set's
        # prediction must not depend on how many other sets share the
        # call, so the batched search can merge calls freely.
        return chunked_affine(xb, self._coef[:, None])[:, 0]

    # ------------------------------------------------------------------
    # ComputeCostModel-compatible prediction
    # ------------------------------------------------------------------

    def set_target_stats(self, mean: float, std: float) -> None:
        """Kept for interface parity; ridge fits in raw ms directly."""
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.target_mean = float(mean)
        self.target_std = float(std)

    def predict_many(self, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Latencies (ms) for many combinations.

        Routed through :meth:`predict_rows` so every prediction entry
        point pools and projects identically — a set's latency is
        bitwise the same whether it is scored alone, per search step, or
        merged into a whole-frontier batch.
        """
        if self._coef is None:
            raise RuntimeError("fit() the model before predicting")
        mats = [np.atleast_2d(np.asarray(m, dtype=np.float64)) for m in matrices]
        for m in mats:
            if m.size and m.shape[1] != self.num_features:
                raise ValueError(
                    f"combination has {m.shape[1]} features, expected "
                    f"{self.num_features}"
                )
        rows = np.concatenate(
            [m for m in mats if m.size] or [np.zeros((0, self.num_features))]
        )
        segments = np.concatenate(
            [
                np.full(m.shape[0], i, dtype=np.int64)
                for i, m in enumerate(mats)
                if m.size
            ]
            or [np.zeros(0, dtype=np.int64)]
        )
        return self.predict_rows(rows, segments, len(mats))

    def predict_one(self, features_matrix: np.ndarray) -> float:
        return float(self.predict_many([features_matrix])[0])

    def predict_rows(
        self,
        rows: np.ndarray,
        segments: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Latencies (ms) from pre-concatenated feature rows.

        Interface parity with
        :meth:`~repro.costmodel.compute_model.ComputeCostModel
        .predict_rows` (the search hot path's entry point): sum-pools the
        rows per segment (in canonical content order, so any intra-set
        row permutation predicts identically) and applies the ridge
        coefficients, equal to :meth:`predict_many` over the
        per-combination matrices.
        """
        if self._coef is None:
            raise RuntimeError("fit() the model before predicting")
        rows = np.asarray(rows, dtype=np.float64)
        pooled = stable_segment_sum(rows, segments, num_segments)
        counts = np.bincount(segments, minlength=num_segments).astype(np.float64)
        x = np.concatenate([pooled, counts[:, None]], axis=1)
        return self._predict_pooled(x)


class LinearCommCostModel:
    """Ridge regression on the flat communication feature rows.

    Interface-compatible with
    :class:`~repro.costmodel.comm_model.CommCostModel.predict`.

    Args:
        num_devices: collective size (output width).
        l2: ridge penalty.
    """

    def __init__(self, num_devices: int, l2: float = 1e-3) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.num_devices = num_devices
        self.l2 = l2
        self._coef: np.ndarray | None = None
        self.target_mean = 0.0
        self.target_std = 1.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Closed-form fit; returns the training MSE in ms²."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2:
            raise ValueError("features and targets must be 2-D")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} inputs but {len(y)} targets")
        if y.shape[1] != self.num_devices:
            raise ValueError(
                f"targets have {y.shape[1]} devices, model has "
                f"{self.num_devices}"
            )
        self._coef = _ridge_fit(x, y, self.l2)
        preds = self._predict_rows(x)
        return float(np.mean((preds - y) ** 2))

    def _predict_rows(self, x: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        xb = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        # Chunk-stable: single-collective and whole-frontier queries
        # must agree bitwise (see repro.costmodel.kernels).
        return chunked_affine(xb, self._coef)

    def set_target_stats(self, mean: float, std: float) -> None:
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.target_mean = float(mean)
        self.target_std = float(std)

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Per-device latencies ``[N, D]`` for stacked feature rows.

        Interface parity with
        :meth:`~repro.costmodel.comm_model.CommCostModel.predict_batch`:
        the simulator's batched plan finalization predicts every
        placement's collectives in one call.  Row ``i`` equals the
        single-query :meth:`predict` for the same features bitwise.
        """
        if self._coef is None:
            raise RuntimeError("fit() the model before predicting")
        return self._predict_rows(np.atleast_2d(np.asarray(features, dtype=np.float64)))

    def predict(
        self,
        device_dims: Sequence[int],
        start_times_ms: Sequence[float],
        batch_size: int,
    ) -> np.ndarray:
        """Per-device latencies (ms) for one collective query."""
        if self._coef is None:
            raise RuntimeError("fit() the model before predicting")
        from repro.costmodel.comm_model import comm_features

        row = comm_features(device_dims, start_times_ms, batch_size)
        return self._predict_rows(row[None, :])[0]


def fit_linear_compute_model(
    data: ArrayDataset, num_features: int, l2: float = 1e-3
) -> tuple[LinearComputeCostModel, float]:
    """Fit a linear compute model on a collected dataset.

    Returns ``(model, training MSE in ms²)``.
    """
    model = LinearComputeCostModel(num_features, l2=l2)
    train_mse = model.fit(list(data.inputs), np.asarray(data.targets))
    return model, train_mse


def fit_linear_comm_model(
    data: ArrayDataset, num_devices: int, l2: float = 1e-3
) -> tuple[LinearCommCostModel, float]:
    """Fit a linear communication model on a collected dataset."""
    model = LinearCommCostModel(num_devices, l2=l2)
    train_mse = model.fit(
        np.asarray(data.inputs), np.asarray(data.targets)
    )
    return model, train_mse
