"""The computation cost model (Figure 5, left).

Architecture, following the paper (Appendix C): a *shared* MLP of size
128-32 processes each table's feature vector into a table representation;
the representations of a combination are element-wise summed into a
fixed-size combination representation; a head MLP of size 32-64 produces
the predicted forward+backward latency.  The sum pooling makes the model
permutation-invariant and size-agnostic — it can score any number of
tables, which is what makes it "once-for-all".

A batch of samples is a list of feature matrices (one per combination);
they are concatenated row-wise with a segment-id vector so the shared MLP
runs over all tables of the batch at once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Linear, Module, ReLU, SegmentSum, Sequential

__all__ = ["ComputeCostModel"]


def _infer_mlp(mlp: Sequential, x: np.ndarray) -> np.ndarray:
    """Stateless MLP forward for inference.

    Applies exactly the operations of ``mlp.forward`` — ``x @ W + b``
    per :class:`Linear`, ``np.where(x > 0, x, 0.0)`` per :class:`ReLU` —
    without recording activations for backprop, so results are
    bit-identical to the training-path forward at a fraction of the
    per-call overhead (the search issues tens of thousands of tiny
    batches).
    """
    for module in mlp.modules:
        if isinstance(module, Linear):
            x = x @ module.weight.data + module.bias.data
        elif isinstance(module, ReLU):
            x = np.where(x > 0, x, 0.0)
        else:  # pragma: no cover - compute MLPs are Linear/ReLU only
            x = module.forward(x)
    return x


class ComputeCostModel(Module):
    """Shared-MLP + sum-pooling + head latency regressor.

    Args:
        num_features: width of each table's feature vector.
        table_hidden: hidden sizes of the shared table MLP
            (paper: ``(128, 32)``).
        head_hidden: hidden sizes of the head MLP (paper: ``(64,)`` on a
            32-wide input, i.e. "32-64" then a scalar output).
        rng: weight-initialization generator.
    """

    def __init__(
        self,
        num_features: int,
        table_hidden: Sequence[int] = (128, 32),
        head_hidden: Sequence[int] = (64,),
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if not table_hidden or not head_hidden:
            raise ValueError("hidden size tuples must be non-empty")
        rng = rng or np.random.default_rng(0)
        self.num_features = num_features
        self.table_mlp = Sequential.mlp(
            [num_features, *table_hidden], rng=rng, final_activation=True,
            name="table",
        )
        self.pool = SegmentSum()
        self.head_mlp = Sequential.mlp(
            [table_hidden[-1], *head_hidden, 1], rng=rng, name="head"
        )
        # Latencies span two orders of magnitude; training happens in
        # standardized target space (set by the pre-training pipeline via
        # :meth:`set_target_stats`) and ``predict_*`` map back to ms.
        self.target_mean = 0.0
        self.target_std = 1.0

    # ------------------------------------------------------------------
    # batch interface (used by the Trainer)
    # ------------------------------------------------------------------

    def forward_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Predict latencies for a batch of combinations.

        Args:
            inputs: per-sample feature matrices ``[T_i, F]`` (``T_i`` may
                vary; empty combinations are legal and predict the bias).

        Returns:
            1-D array of predicted latencies, one per combination.
        """
        if len(inputs) == 0:
            raise ValueError("batch must contain at least one combination")
        mats = [np.atleast_2d(np.asarray(m, dtype=np.float64)) for m in inputs]
        for i, m in enumerate(mats):
            if m.size and m.shape[1] != self.num_features:
                raise ValueError(
                    f"combination {i} has {m.shape[1]} features, expected "
                    f"{self.num_features}"
                )
        rows = np.concatenate(
            [m for m in mats if m.size] or [np.zeros((0, self.num_features))]
        )
        segments = np.concatenate(
            [
                np.full(m.shape[0], i, dtype=np.int64)
                for i, m in enumerate(mats)
                if m.size
            ]
            or [np.zeros(0, dtype=np.int64)]
        )
        table_repr = (
            self.table_mlp.forward(rows)
            if rows.size
            else np.zeros((0, self._repr_width()))
        )
        self._had_rows = rows.shape[0] > 0
        pooled = self.pool.forward(table_repr, segments, len(mats))
        return self.head_mlp.forward(pooled)[:, 0]

    def backward_batch(self, grad: np.ndarray) -> None:
        """Backprop the per-sample latency gradient of the last batch."""
        grad = np.asarray(grad, dtype=np.float64)[:, None]
        grad_pooled = self.head_mlp.backward(grad)
        grad_rows = self.pool.backward(grad_pooled)
        if self._had_rows:
            self.table_mlp.backward(grad_rows)

    def _repr_width(self) -> int:
        # Output width of the table MLP = input width of the head MLP.
        first_head = self.head_mlp.modules[0]
        assert isinstance(first_head, Linear)
        return first_head.in_features

    # ------------------------------------------------------------------
    # target standardization
    # ------------------------------------------------------------------

    def set_target_stats(self, mean: float, std: float) -> None:
        """Record the affine transform from raw outputs to milliseconds.

        ``forward_batch`` stays in standardized space (that is what the
        trainer optimizes); ``predict_*`` return
        ``mean + std * raw_output``.
        """
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.target_mean = float(mean)
        self.target_std = float(std)

    # ------------------------------------------------------------------
    # convenience prediction (real milliseconds)
    # ------------------------------------------------------------------

    def predict_one(self, features_matrix: np.ndarray) -> float:
        """Latency (ms) of a single combination given its feature matrix."""
        return float(self.predict_many([features_matrix])[0])

    def predict_many(self, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Latencies (ms) for many combinations."""
        raw = self.forward_batch(list(matrices))
        return self.target_mean + self.target_std * raw

    def predict_rows(
        self,
        rows: np.ndarray,
        segments: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Latencies (ms) from pre-concatenated per-table feature rows.

        The search's hot path already holds cached feature rows; this
        entry point skips :meth:`forward_batch`'s per-combination
        stacking, validation and segment-id rebuild.  Given ``rows``
        equal to the row-wise concatenation of the per-combination
        matrices (in combination order) and matching ``segments``, the
        result is bit-identical to :meth:`predict_many` — the same
        concatenated array flows through the same layer forwards.

        Inference-only: no layer state is recorded, so it cannot be
        followed by ``backward_batch`` (the training path keeps using
        :meth:`forward_batch`).

        Args:
            rows: ``[total_tables, F]`` feature rows, float64.
            segments: combination id per row, ``[total_tables]``.
            num_segments: number of combinations predicted.
        """
        if rows.size:
            if rows.shape[1] != self.num_features:
                raise ValueError(
                    f"rows have {rows.shape[1]} features, expected "
                    f"{self.num_features}"
                )
            table_repr = _infer_mlp(self.table_mlp, rows)
        else:
            table_repr = np.zeros((0, self._repr_width()))
        pooled = np.zeros((num_segments, table_repr.shape[1]), dtype=np.float64)
        np.add.at(pooled, segments, table_repr)
        raw = _infer_mlp(self.head_mlp, pooled)[:, 0]
        return self.target_mean + self.target_std * raw
