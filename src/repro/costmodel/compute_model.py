"""The computation cost model (Figure 5, left).

Architecture, following the paper (Appendix C): a *shared* MLP of size
128-32 processes each table's feature vector into a table representation;
the representations of a combination are element-wise summed into a
fixed-size combination representation; a head MLP of size 32-64 produces
the predicted forward+backward latency.  The sum pooling makes the model
permutation-invariant and size-agnostic — it can score any number of
tables, which is what makes it "once-for-all".

A batch of samples is a list of feature matrices (one per combination);
they are concatenated row-wise with a segment-id vector so the shared MLP
runs over all tables of the batch at once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.kernels import chunked_infer_mlp, stable_segment_sum
from repro.nn.layers import Linear, Module, SegmentSum, Sequential

__all__ = ["ComputeCostModel"]


class ComputeCostModel(Module):
    """Shared-MLP + sum-pooling + head latency regressor.

    Args:
        num_features: width of each table's feature vector.
        table_hidden: hidden sizes of the shared table MLP
            (paper: ``(128, 32)``).
        head_hidden: hidden sizes of the head MLP (paper: ``(64,)`` on a
            32-wide input, i.e. "32-64" then a scalar output).
        rng: weight-initialization generator.
    """

    def __init__(
        self,
        num_features: int,
        table_hidden: Sequence[int] = (128, 32),
        head_hidden: Sequence[int] = (64,),
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if not table_hidden or not head_hidden:
            raise ValueError("hidden size tuples must be non-empty")
        rng = rng or np.random.default_rng(0)
        self.num_features = num_features
        self.table_mlp = Sequential.mlp(
            [num_features, *table_hidden], rng=rng, final_activation=True,
            name="table",
        )
        self.pool = SegmentSum()
        self.head_mlp = Sequential.mlp(
            [table_hidden[-1], *head_hidden, 1], rng=rng, name="head"
        )
        # Latencies span two orders of magnitude; training happens in
        # standardized target space (set by the pre-training pipeline via
        # :meth:`set_target_stats`) and ``predict_*`` map back to ms.
        self.target_mean = 0.0
        self.target_std = 1.0

    # ------------------------------------------------------------------
    # batch interface (used by the Trainer)
    # ------------------------------------------------------------------

    def forward_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Predict latencies for a batch of combinations.

        Args:
            inputs: per-sample feature matrices ``[T_i, F]`` (``T_i`` may
                vary; empty combinations are legal and predict the bias).

        Returns:
            1-D array of predicted latencies, one per combination.
        """
        if len(inputs) == 0:
            raise ValueError("batch must contain at least one combination")
        mats = [np.atleast_2d(np.asarray(m, dtype=np.float64)) for m in inputs]
        for i, m in enumerate(mats):
            if m.size and m.shape[1] != self.num_features:
                raise ValueError(
                    f"combination {i} has {m.shape[1]} features, expected "
                    f"{self.num_features}"
                )
        rows = np.concatenate(
            [m for m in mats if m.size] or [np.zeros((0, self.num_features))]
        )
        segments = np.concatenate(
            [
                np.full(m.shape[0], i, dtype=np.int64)
                for i, m in enumerate(mats)
                if m.size
            ]
            or [np.zeros(0, dtype=np.int64)]
        )
        table_repr = (
            self.table_mlp.forward(rows)
            if rows.size
            else np.zeros((0, self._repr_width()))
        )
        self._had_rows = rows.shape[0] > 0
        pooled = self.pool.forward(table_repr, segments, len(mats))
        return self.head_mlp.forward(pooled)[:, 0]

    def backward_batch(self, grad: np.ndarray) -> None:
        """Backprop the per-sample latency gradient of the last batch."""
        grad = np.asarray(grad, dtype=np.float64)[:, None]
        grad_pooled = self.head_mlp.backward(grad)
        grad_rows = self.pool.backward(grad_pooled)
        if self._had_rows:
            self.table_mlp.backward(grad_rows)

    def _repr_width(self) -> int:
        # Output width of the table MLP = input width of the head MLP.
        first_head = self.head_mlp.modules[0]
        assert isinstance(first_head, Linear)
        return first_head.in_features

    # ------------------------------------------------------------------
    # target standardization
    # ------------------------------------------------------------------

    def set_target_stats(self, mean: float, std: float) -> None:
        """Record the affine transform from raw outputs to milliseconds.

        ``forward_batch`` stays in standardized space (that is what the
        trainer optimizes); ``predict_*`` return
        ``mean + std * raw_output``.
        """
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.target_mean = float(mean)
        self.target_std = float(std)

    # ------------------------------------------------------------------
    # convenience prediction (real milliseconds)
    # ------------------------------------------------------------------

    def predict_one(self, features_matrix: np.ndarray) -> float:
        """Latency (ms) of a single combination given its feature matrix."""
        return float(self.predict_many([features_matrix])[0])

    def predict_many(self, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Latencies (ms) for many combinations.

        Routed through :meth:`predict_rows` (the chunk-stable inference
        kernel), so a combination's prediction is bitwise identical
        however it is batched — one call per set, one call per search
        step, or one call per beam frontier all agree.
        """
        if len(matrices) == 0:
            raise ValueError("batch must contain at least one combination")
        mats = [np.atleast_2d(np.asarray(m, dtype=np.float64)) for m in matrices]
        for i, m in enumerate(mats):
            if m.size and m.shape[1] != self.num_features:
                raise ValueError(
                    f"combination {i} has {m.shape[1]} features, expected "
                    f"{self.num_features}"
                )
        rows = np.concatenate(
            [m for m in mats if m.size] or [np.zeros((0, self.num_features))]
        )
        segments = np.concatenate(
            [
                np.full(m.shape[0], i, dtype=np.int64)
                for i, m in enumerate(mats)
                if m.size
            ]
            or [np.zeros(0, dtype=np.int64)]
        )
        return self.predict_rows(rows, segments, len(mats))

    def predict_rows(
        self,
        rows: np.ndarray,
        segments: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Latencies (ms) from pre-concatenated per-table feature rows.

        The search's hot path already holds cached feature rows; this
        entry point skips per-combination stacking, validation and
        segment-id rebuild.  It is the *single* inference kernel: all
        ``predict_*`` entry points route here, and every affine runs at
        the fixed chunk shape (:mod:`repro.costmodel.kernels`), so a
        set's predicted cost is bitwise independent of how many other
        sets share the call — the property that lets the batched search
        merge a whole grid pass / beam frontier into one forward pass
        while staying bit-identical to the per-candidate reference.

        Within a set, row order is also free: pooling runs through
        :func:`~repro.costmodel.kernels.stable_segment_sum`, which sums
        in a canonical content order, so any permutation of a set's rows
        predicts the bitwise-same cost.

        Inference-only: no layer state is recorded, so it cannot be
        followed by ``backward_batch`` (the training path keeps using
        :meth:`forward_batch`).

        Args:
            rows: ``[total_tables, F]`` feature rows, float64.
            segments: combination id per row, ``[total_tables]``.
            num_segments: number of combinations predicted.
        """
        if rows.size:
            if rows.shape[1] != self.num_features:
                raise ValueError(
                    f"rows have {rows.shape[1]} features, expected "
                    f"{self.num_features}"
                )
            table_repr = chunked_infer_mlp(self.table_mlp, rows)
        else:
            table_repr = np.zeros((0, self._repr_width()))
        pooled = stable_segment_sum(table_repr, segments, num_segments)
        raw = chunked_infer_mlp(self.head_mlp, pooled)[:, 0]
        return self.target_mean + self.target_std * raw
