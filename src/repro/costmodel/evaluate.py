"""Cost-model accuracy metrics (Section 4.2 / Figure 8).

The paper evaluates the cost models with test MSE (Table 2) and with a
scatter of simulated-vs-real costs over random sharding plans whose rank
agreement is summarized by Kendall's tau (Figure 8 left, tau = 0.97).
Rank agreement is the metric that matters for search: the searcher only
needs the simulator to *order* plans correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["mse", "kendall_tau", "ScatterEval", "scatter_eval"]


def mse(predictions: Sequence[float], targets: Sequence[float]) -> float:
    """Mean-squared error."""
    p = np.asarray(predictions, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("need at least one sample")
    return float(np.mean((p - t) ** 2))


def kendall_tau(predictions: Sequence[float], targets: Sequence[float]) -> float:
    """Kendall's rank-correlation tau between predictions and targets."""
    p = np.asarray(predictions, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size < 2:
        raise ValueError("need at least two samples for rank correlation")
    tau = stats.kendalltau(p, t).statistic
    return float(tau)


@dataclass(frozen=True)
class ScatterEval:
    """Paired simulated/real costs plus summary statistics."""

    simulated: tuple[float, ...]
    real: tuple[float, ...]
    tau: float
    mse: float

    @property
    def mean_absolute_error(self) -> float:
        s = np.asarray(self.simulated)
        r = np.asarray(self.real)
        return float(np.mean(np.abs(s - r)))


def scatter_eval(
    simulated: Sequence[float], real: Sequence[float]
) -> ScatterEval:
    """Bundle a simulated-vs-real comparison (Figure 8 left)."""
    return ScatterEval(
        simulated=tuple(float(x) for x in simulated),
        real=tuple(float(x) for x in real),
        tau=kendall_tau(simulated, real),
        mse=mse(simulated, real),
    )
