"""Fixed-shape chunked inference kernels for the cost models.

**Why chunking exists.**  The batched scoring path merges an entire grid
pass / beam frontier into one ``predict_rows`` call, while the frozen
reference (:mod:`repro.core.reference`) predicts the same device sets in
many small calls.  Bit-identical plans therefore require per-row model
outputs that do not depend on *how rows are batched* — and BLAS matmul
does not guarantee that: ``x @ W`` selects different micro-kernels for
different ``M``, so the same row can produce different low bits inside a
1-row call than inside a 10k-row call (measured on this hardware for
every layer width the models use).

**The fix.**  Every inference-side affine runs at one fixed shape: the
input is processed in chunks of exactly :data:`CHUNK_ROWS` rows, the last
chunk zero-padded up to that shape, and the padding rows sliced away.
With the GEMM shape pinned, a row's output depends only on that row's
data — verified empirically to be bitwise independent of batch
composition, ordering and size.  Training (``forward_batch``) keeps the
unchunked layer forwards: gradients never flow through this module, so
pre-trained weights are unaffected.

The cost is padding waste on tiny batches (a 1-row query computes 128
rows), which is microseconds per call and is what buys exact
reference-vs-batched equivalence for free everywhere else.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CHUNK_ROWS",
    "chunked_affine",
    "chunked_infer_mlp",
    "stable_segment_sum",
]

#: Fixed GEMM row count for all inference-side affines.
CHUNK_ROWS = 128


def chunked_affine(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """``x @ weight + bias`` with a batch-composition-independent result.

    Args:
        x: ``[M, F]`` float64 input rows.
        weight: ``[F, H]`` weights.
        bias: optional ``[H]`` bias, added per row.

    Returns:
        ``[M, H]`` output; row ``i`` is bitwise equal to the same row
        computed in any other call, whatever the surrounding rows.
    """
    m = x.shape[0]
    h = weight.shape[1]
    out = np.empty((m, h), dtype=np.float64)
    pad = None
    for start in range(0, m, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, m)
        n = stop - start
        if n == CHUNK_ROWS:
            chunk = x[start:stop] @ weight
        else:
            if pad is None:
                pad = np.zeros((CHUNK_ROWS, x.shape[1]), dtype=np.float64)
            pad[:n] = x[start:stop]
            chunk = (pad @ weight)[:n]
        if bias is not None:
            chunk = chunk + bias
        out[start:stop] = chunk
    return out


def stable_segment_sum(
    rows: np.ndarray, segments: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment row sum whose result is *permutation-invariant*.

    Float addition is not associative, so a plain sequential segment sum
    (``np.add.at``) depends on the order rows arrive in — which would
    force every caller of the cost models to reproduce one blessed
    intra-set row order, and would let the batched search's different
    *prediction order* poison the cost cache with last-ulp-different
    values for the same table multiset.  Instead, rows are first brought
    into a canonical order — sorted by segment, then by the raw bit
    pattern of their contents — and summed sequentially in that order.
    Bit-pattern sorting (not float comparison) makes the order total:
    ``-0.0``/``0.0`` and any otherwise-tied rows order deterministically,
    so any permutation of the same rows yields the bitwise-same sums.

    Args:
        rows: ``[N, F]`` float64 rows.
        segments: segment id per row, ``[N]``.
        num_segments: number of output rows.

    Returns:
        ``[num_segments, F]`` per-segment sums (zeros for empty segments).
    """
    out = np.zeros((num_segments, rows.shape[1]), dtype=np.float64)
    if rows.shape[0] == 0:
        return out
    bits = np.ascontiguousarray(rows, dtype=np.float64).view(np.uint64)
    # lexsort's last key is primary: segment first, then columns 0..F-1.
    order = np.lexsort((*bits.T[::-1], segments))
    np.add.at(out, segments[order], rows[order])
    return out


def chunked_infer_mlp(mlp, x: np.ndarray) -> np.ndarray:
    """Stateless MLP forward built on :func:`chunked_affine`.

    Applies the operations of ``mlp.forward`` — affine per ``Linear``,
    ``np.where(x > 0, x, 0.0)`` per ``ReLU`` — without recording
    activations, with every affine at the fixed chunk shape.
    """
    from repro.nn.layers import Linear, ReLU

    if x.shape[0] == 0:
        # Walk the widths only; zero rows in, zero rows out.
        width = x.shape[1]
        for module in mlp.modules:
            if isinstance(module, Linear):
                width = module.weight.data.shape[1]
        return np.zeros((0, width), dtype=np.float64)
    for module in mlp.modules:
        if isinstance(module, Linear):
            x = chunked_affine(x, module.weight.data, module.bias.data)
        elif isinstance(module, ReLU):
            x = np.where(x > 0, x, 0.0)
        else:  # pragma: no cover - inference MLPs are Linear/ReLU only
            x = module.forward(x)
    return x
