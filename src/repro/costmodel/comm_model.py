"""The communication cost models (Figure 5, right).

One MLP per direction (forward embeddings / backward gradients) predicts
the per-device all-to-all latencies from the per-device *starting
timestamps* and *transfer data sizes* (Section 3.2).  The input is the
concatenation ``[starts_normalized | sizes_normalized]`` of length ``2D``
and the output has one latency per device, so a trained model is specific
to a device count — matching the paper, which trains separate models for
the 4-GPU, 8-GPU and 128-GPU settings (Table 2).

The architecture is the paper's 128-64-32-16 MLP with a final linear
projection to ``D`` outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.kernels import chunked_infer_mlp
from repro.nn.layers import Module, Sequential

__all__ = ["CommCostModel", "comm_features"]

#: Start timestamps are divided by this before entering the MLP.
_START_SCALE_MS = 10.0
#: Transfer sizes are divided by this (bytes) before entering the MLP.
_SIZE_SCALE_BYTES = 1.0e8


def comm_features(
    device_dims: Sequence[int],
    start_times_ms: Sequence[float],
    batch_size: int,
) -> np.ndarray:
    """Feature vector for one collective: ``[starts | sizes]``.

    The transferred data size of device ``d`` is ``batch * device_dim_d *
    4`` bytes (Section 2.2); both halves are scaled to O(1).
    """
    dims = np.asarray(device_dims, dtype=np.float64)
    starts = np.asarray(start_times_ms, dtype=np.float64)
    if dims.shape != starts.shape or dims.ndim != 1:
        raise ValueError(
            f"device_dims {dims.shape} and start_times_ms {starts.shape} must "
            "be equal-length 1-D sequences"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    sizes = dims * batch_size * 4.0
    return np.concatenate([starts / _START_SCALE_MS, sizes / _SIZE_SCALE_BYTES])


class CommCostModel(Module):
    """Per-device all-to-all latency regressor for a fixed device count.

    Args:
        num_devices: ``D``; inputs are ``2D`` wide, outputs ``D`` wide.
        hidden: MLP hidden sizes (paper: 128-64-32-16).
        rng: weight-initialization generator.
    """

    def __init__(
        self,
        num_devices: int,
        hidden: Sequence[int] = (128, 64, 32, 16),
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if not hidden:
            raise ValueError("hidden must be non-empty")
        self.num_devices = num_devices
        self.mlp = Sequential.mlp(
            [2 * num_devices, *hidden, num_devices],
            rng=rng or np.random.default_rng(0),
            name="comm",
        )
        # Training happens in standardized target space; ``predict``
        # maps raw outputs back to milliseconds.
        self.target_mean = 0.0
        self.target_std = 1.0

    def set_target_stats(self, mean: float, std: float) -> None:
        """Record the affine transform from raw outputs to milliseconds."""
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.target_mean = float(mean)
        self.target_std = float(std)

    # ------------------------------------------------------------------
    # batch interface (used by the Trainer)
    # ------------------------------------------------------------------

    def forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Predict per-device latencies ``[N, D]`` from features ``[N, 2D]``."""
        x = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if x.shape[1] != 2 * self.num_devices:
            raise ValueError(
                f"expected {2 * self.num_devices} features, got {x.shape[1]}"
            )
        return self.mlp.forward(x)

    def backward_batch(self, grad: np.ndarray) -> None:
        self.mlp.backward(np.asarray(grad, dtype=np.float64))

    # ------------------------------------------------------------------
    # convenience prediction
    # ------------------------------------------------------------------

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Per-device latencies ``[N, D]`` (ms) for stacked feature rows.

        Inference-side entry point for the batched plan finalization:
        one call predicts the collectives of every placement in a grid
        pass / beam frontier.  Runs on the chunk-stable kernel
        (:mod:`repro.costmodel.kernels`), so row ``i`` is bitwise equal
        to a lone :meth:`predict` call with the same features.
        """
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if x.shape[1] != 2 * self.num_devices:
            raise ValueError(
                f"expected {2 * self.num_devices} features, got {x.shape[1]}"
            )
        raw = chunked_infer_mlp(self.mlp, x)
        return self.target_mean + self.target_std * raw

    def predict(
        self,
        device_dims: Sequence[int],
        start_times_ms: Sequence[float],
        batch_size: int,
    ) -> np.ndarray:
        """Per-device predicted latencies (ms) for one collective."""
        if len(device_dims) != self.num_devices:
            raise ValueError(
                f"model is for {self.num_devices} devices, got {len(device_dims)}"
            )
        feats = comm_features(device_dims, start_times_ms, batch_size)
        return self.predict_batch(feats[None, :])[0]
