"""Cost-model drift monitoring (Section 3.2, deployment notes).

In production, index distributions shift over time, degrading the cost
models.  The paper: "One could also periodically calculate the prediction
errors of the cost model by sampling a batch of table indices and trigger
re-training or fine-tuning when the error exceeds a certain threshold."
This module implements that monitor: it samples fresh table combinations,
measures the (current) hardware, compares against the model's predictions
and recommends re-training when the rolling error exceeds a threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.config import rng_from_seed
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.pool import TablePool
from repro.hardware.cluster import SimulatedCluster

__all__ = ["DriftReport", "DriftMonitor"]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift probe.

    Attributes:
        probe_mse: MSE of the probe batch.
        rolling_mse: mean MSE over the monitor's window.
        needs_retraining: rolling MSE exceeded the threshold.
        timestamp: when the probe ran, in the caller's time base
            (simulated hours, a trace timestamp, POSIX seconds — the
            monitor does not interpret it).  ``None`` when not recorded.
        step_index: ordinal of the probe within the caller's sequence
            (trace step, policy tick, ...).  ``None`` when not recorded.
    """

    probe_mse: float
    rolling_mse: float
    needs_retraining: bool
    timestamp: float | None = None
    step_index: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Versioned plain-JSON view (service API workload deltas,
        simulation reports)."""
        from repro.api.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "probe_mse": float(self.probe_mse),
            "rolling_mse": float(self.rolling_mse),
            "needs_retraining": bool(self.needs_retraining),
            "timestamp": (
                None if self.timestamp is None else float(self.timestamp)
            ),
            "step_index": (
                None if self.step_index is None else int(self.step_index)
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriftReport":
        """Inverse of :meth:`to_dict`.

        Payloads written before the schema was versioned (no
        ``schema_version`` key) are accepted; versioned payloads must
        match the current schema.
        """
        if "schema_version" in data:
            from repro.api.schema import check_version

            check_version(data, "DriftReport")
        timestamp = data.get("timestamp")
        step_index = data.get("step_index")
        return cls(
            probe_mse=float(data["probe_mse"]),
            rolling_mse=float(data["rolling_mse"]),
            needs_retraining=bool(data["needs_retraining"]),
            timestamp=None if timestamp is None else float(timestamp),
            step_index=None if step_index is None else int(step_index),
        )


class DriftMonitor:
    """Periodic prediction-error probe with a rolling window.

    Args:
        models: the deployed cost-model bundle.
        cluster: the *current* hardware/workload to probe against (pass a
            cluster with a different noise seed or spec to simulate
            drift).
        pool: tables to sample probe combinations from.
        threshold_mse: rolling-MSE level that triggers re-training.  The
            paper's Table 2 test MSEs are ~0.2, so a few times that is a
            reasonable default.
        window: number of probes in the rolling window.
    """

    def __init__(
        self,
        models: PretrainedCostModels,
        cluster: SimulatedCluster,
        pool: TablePool,
        threshold_mse: float = 1.0,
        window: int = 8,
    ) -> None:
        if threshold_mse <= 0:
            raise ValueError(f"threshold_mse must be > 0, got {threshold_mse}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if models.batch_size != cluster.batch_size:
            raise ValueError(
                f"model batch size {models.batch_size} != cluster batch size "
                f"{cluster.batch_size}"
            )
        self.models = models
        self.cluster = cluster
        self.pool = pool
        self.threshold_mse = threshold_mse
        self._history: deque[float] = deque(maxlen=window)

    def probe(
        self,
        num_samples: int = 16,
        seed: int | np.random.Generator = 0,
        max_tables: int = 15,
        timestamp: float | None = None,
        step_index: int | None = None,
    ) -> DriftReport:
        """Sample combinations, measure, compare, and report.

        Args:
            num_samples: probe batch size.
            seed: sampling seed.
            max_tables: upper bound of tables per probe combination.
            timestamp: stamped onto the report verbatim (caller's time
                base; e.g. simulated hours or a trace timestamp).
            step_index: stamped onto the report verbatim (caller's probe
                ordinal).
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        rng = rng_from_seed(seed)
        combos = self.pool.sample_combinations(
            num_samples, rng, min_tables=1, max_tables=max_tables
        )
        feats = [self.models.featurizer.features_matrix(c) for c in combos]
        predictions = self.models.compute.predict_many(feats)
        measured = np.array(
            [self.cluster.measure_compute(c) for c in combos]
        )
        probe_mse = float(np.mean((predictions - measured) ** 2))
        self._history.append(probe_mse)
        rolling = float(np.mean(self._history))
        return DriftReport(
            probe_mse=probe_mse,
            rolling_mse=rolling,
            needs_retraining=rolling > self.threshold_mse,
            timestamp=timestamp,
            step_index=step_index,
        )

    def reset(self) -> None:
        """Clear the rolling window (call after re-training)."""
        self._history.clear()
