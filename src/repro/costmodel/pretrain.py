"""End-to-end cost-model pre-training (Figure 6, top + middle rows).

``pretrain_cost_models`` runs the full pipeline the paper describes:
augment the table pool, generate random combinations and placements,
micro-benchmark them on the (simulated) cluster, and train the three
neural cost models — computation, forward communication and backward
communication — keeping each model's best-validation weights.

The result is a :class:`PretrainedCostModels` bundle: the universal
simulator the online search queries.  Bundles serialize to a directory of
``.npz`` files plus a metadata file for the production version-control
story of Section 3.2.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import (
    CollectionConfig,
    TrainConfig,
    spawn_rngs,
)
from repro.costmodel.collect import collect_comm_data, collect_compute_data
from repro.costmodel.comm_model import CommCostModel
from repro.costmodel.compute_model import ComputeCostModel
from repro.costmodel.features import TableFeaturizer
from repro.data.pool import TablePool
from repro.hardware.cluster import SimulatedCluster
from repro.nn.data import ArrayDataset, train_valid_test_split
from repro.nn.serialize import load_params, save_params
from repro.nn.train import Trainer, TrainResult

__all__ = [
    "CostModelReport",
    "PretrainedCostModels",
    "fit_standardized",
    "pretrain_cost_models",
]


def fit_standardized(
    model,
    data: ArrayDataset,
    trainer: Trainer,
    train_frac: float,
    valid_frac: float,
    split_rng: np.random.Generator,
    fit_seed: int,
) -> TrainResult:
    """Split, standardize targets, fit, and rescale metrics to ms².

    Latency targets span two orders of magnitude; training in
    standardized space converges far faster at the paper's fixed learning
    rate.  The model stores the affine transform so its ``predict_*``
    methods stay in milliseconds, and the returned losses/MSEs are
    rescaled back to ms² so reports (Table 2) are in physical units.
    """
    tr, va, te = train_valid_test_split(data, train_frac, valid_frac, split_rng)
    mean = float(np.mean(tr.targets))
    std = float(np.std(tr.targets))
    if std <= 0:
        std = 1.0
    model.set_target_stats(mean, std)

    def standardized(ds: ArrayDataset) -> ArrayDataset:
        return ArrayDataset(
            inputs=ds.inputs,
            targets=(np.asarray(ds.targets, dtype=np.float64) - mean) / std,
        )

    result = trainer.fit(
        model, standardized(tr), standardized(va), standardized(te), seed=fit_seed
    )
    scale = std * std
    result.test_mse *= scale
    result.best_valid_mse *= scale
    result.train_losses = [loss * scale for loss in result.train_losses]
    result.valid_losses = [loss * scale for loss in result.valid_losses]
    return result


@dataclass
class CostModelReport:
    """Training outcome of the three cost models (paper Table 2 column)."""

    compute: TrainResult
    forward_comm: TrainResult
    backward_comm: TrainResult

    def test_mse_rows(self) -> dict[str, float]:
        """The Table 2 rows: test MSE per model."""
        return {
            "Computation": self.compute.test_mse,
            "Forward Communication": self.forward_comm.test_mse,
            "Backward Communication": self.backward_comm.test_mse,
        }


@dataclass
class PretrainedCostModels:
    """The pre-trained sharding simulator bundle.

    Attributes:
        compute: computation cost model (any device's table set).
        forward_comm / backward_comm: per-direction collective models,
            specific to ``num_devices``.
        featurizer: the table featurizer the compute model was trained
            with (its batch size is part of the model contract).
        num_devices: device count of the comm models.
        batch_size: deployment batch size.
    """

    compute: ComputeCostModel
    forward_comm: CommCostModel
    backward_comm: CommCostModel
    featurizer: TableFeaturizer
    num_devices: int
    batch_size: int

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    _META_FILE = "metadata.json"

    def save(self, directory: str | os.PathLike) -> None:
        """Write the bundle to ``directory`` (created if missing)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_params(self.compute, directory / "compute.npz")
        save_params(self.forward_comm, directory / "forward_comm.npz")
        save_params(self.backward_comm, directory / "backward_comm.npz")
        meta = {
            "num_devices": self.num_devices,
            "batch_size": self.batch_size,
            "num_features": self.featurizer.num_features,
            "target_stats": {
                "compute": [self.compute.target_mean, self.compute.target_std],
                "forward_comm": [
                    self.forward_comm.target_mean,
                    self.forward_comm.target_std,
                ],
                "backward_comm": [
                    self.backward_comm.target_mean,
                    self.backward_comm.target_std,
                ],
            },
        }
        (directory / self._META_FILE).write_text(json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "PretrainedCostModels":
        """Load a bundle saved by :meth:`save`."""
        directory = Path(directory)
        meta_path = directory / cls._META_FILE
        if not meta_path.exists():
            raise FileNotFoundError(f"no cost-model bundle at {directory}")
        meta = json.loads(meta_path.read_text())
        featurizer = TableFeaturizer(batch_size=int(meta["batch_size"]))
        if featurizer.num_features != int(meta["num_features"]):
            raise ValueError(
                "feature layout mismatch: bundle was saved with "
                f"{meta['num_features']} features, current code has "
                f"{featurizer.num_features}"
            )
        compute = ComputeCostModel(num_features=featurizer.num_features)
        fwd = CommCostModel(num_devices=int(meta["num_devices"]))
        bwd = CommCostModel(num_devices=int(meta["num_devices"]))
        load_params(compute, directory / "compute.npz")
        load_params(fwd, directory / "forward_comm.npz")
        load_params(bwd, directory / "backward_comm.npz")
        stats = meta.get("target_stats", {})
        for name, model in (
            ("compute", compute),
            ("forward_comm", fwd),
            ("backward_comm", bwd),
        ):
            if name in stats:
                model.set_target_stats(*stats[name])
        return cls(
            compute=compute,
            forward_comm=fwd,
            backward_comm=bwd,
            featurizer=featurizer,
            num_devices=int(meta["num_devices"]),
            batch_size=int(meta["batch_size"]),
        )


def pretrain_cost_models(
    cluster: SimulatedCluster,
    pool: TablePool,
    collection: CollectionConfig | None = None,
    train: TrainConfig | None = None,
    seed: int = 0,
) -> tuple[PretrainedCostModels, CostModelReport]:
    """Collect micro-benchmark data and train all three cost models.

    Args:
        cluster: the (simulated) hardware to benchmark on.
        pool: table pool; its augmentation grid is taken from
            ``collection.augment_dims``.
        collection: data-collection sizes (paper: 100K samples each).
        train: training hyperparameters (paper: Adam 1e-3, 1000 epochs,
            batch 512, 80/10/10 split).
        seed: master seed; collection, initialization and training derive
            independent streams from it.

    Returns:
        ``(bundle, report)`` — the pre-trained simulator and the
        train/valid/test outcome per model.
    """
    collection = collection or CollectionConfig()
    train_cfg = train or TrainConfig()
    (
        rng_collect_compute,
        rng_collect_comm,
        rng_init,
        rng_split,
        rng_fit,
    ) = spawn_rngs(seed, 5)

    featurizer = TableFeaturizer(batch_size=cluster.batch_size)
    trainer = Trainer(train_cfg)

    # --- computation cost model ---------------------------------------
    compute_data = collect_compute_data(
        cluster, pool, featurizer, collection, rng_collect_compute
    )
    compute_model = ComputeCostModel(
        num_features=featurizer.num_features, rng=rng_init
    )
    compute_result = fit_standardized(
        compute_model,
        compute_data,
        trainer,
        train_cfg.train_frac,
        train_cfg.valid_frac,
        rng_split,
        int(rng_fit.integers(2**31)),
    )

    # --- communication cost models ------------------------------------
    fwd_data, bwd_data = collect_comm_data(
        cluster, pool, collection, rng_collect_comm
    )
    fwd_model = CommCostModel(num_devices=cluster.num_devices, rng=rng_init)
    fwd_result = fit_standardized(
        fwd_model,
        fwd_data,
        trainer,
        train_cfg.train_frac,
        train_cfg.valid_frac,
        rng_split,
        int(rng_fit.integers(2**31)),
    )

    bwd_model = CommCostModel(num_devices=cluster.num_devices, rng=rng_init)
    bwd_result = fit_standardized(
        bwd_model,
        bwd_data,
        trainer,
        train_cfg.train_frac,
        train_cfg.valid_frac,
        rng_split,
        int(rng_fit.integers(2**31)),
    )

    bundle = PretrainedCostModels(
        compute=compute_model,
        forward_comm=fwd_model,
        backward_comm=bwd_model,
        featurizer=featurizer,
        num_devices=cluster.num_devices,
        batch_size=cluster.batch_size,
    )
    report = CostModelReport(
        compute=compute_result,
        forward_comm=fwd_result,
        backward_comm=bwd_result,
    )
    return bundle, report
