"""Micro-benchmark data collection (Section 3.1 + Figure 6, middle row).

Runs the paper's input generators against the simulated cluster to
produce cost-model training data:

- **computation**: random table combinations (Algorithm 4) from the
  augmented pool (Algorithm 3), measured with the fused-kernel
  micro-benchmark;
- **communication**: random table placements (Algorithm 5) plus random
  per-device starting timestamps in ``[0, 20]`` ms, measured with the
  all-to-all micro-benchmark, separately for forward and backward.

The returned :class:`~repro.nn.data.ArrayDataset` objects carry
*featurized* inputs, so they feed directly into the trainers.
"""

from __future__ import annotations


import numpy as np

from repro.config import CollectionConfig, rng_from_seed
from repro.costmodel.comm_model import comm_features
from repro.costmodel.features import TableFeaturizer
from repro.data.pool import TablePool
from repro.hardware.cluster import SimulatedCluster
from repro.nn.data import ArrayDataset

__all__ = ["collect_compute_data", "collect_comm_data"]


def collect_compute_data(
    cluster: SimulatedCluster,
    pool: TablePool,
    featurizer: TableFeaturizer,
    config: CollectionConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> ArrayDataset:
    """Collect (table combination → fused-kernel latency) samples.

    Returns a dataset whose inputs are per-sample feature matrices
    ``[T_i, F]`` and whose targets are measured latencies in ms.
    """
    config = config or CollectionConfig()
    rng = rng_from_seed(seed)
    combinations = pool.sample_combinations(
        config.num_compute_samples,
        rng,
        min_tables=config.min_tables,
        max_tables=config.max_tables,
    )
    inputs = [featurizer.features_matrix(tables) for tables in combinations]
    targets = np.array(
        [cluster.measure_compute(tables) for tables in combinations]
    )
    return ArrayDataset(inputs=inputs, targets=targets)


def collect_comm_data(
    cluster: SimulatedCluster,
    pool: TablePool,
    config: CollectionConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Collect (placement + start skew → all-to-all latencies) samples.

    Placements come from Algorithm 5 with the table-count range scaled to
    the cluster's device count; each device's starting timestamp is drawn
    uniformly from ``[0, max_start_ms]`` (Section 3.1, point 2).

    Returns:
        ``(forward_dataset, backward_dataset)`` whose inputs are feature
        rows ``[N, 2D]`` and targets per-device latencies ``[N, D]``.
    """
    config = (config or CollectionConfig()).for_devices(cluster.num_devices)
    rng = rng_from_seed(seed)
    features: list[np.ndarray] = []
    fwd_targets: list[np.ndarray] = []
    bwd_targets: list[np.ndarray] = []
    for _ in range(config.num_comm_samples):
        placement = pool.sample_placement(
            rng,
            cluster.num_devices,
            min_tables=config.min_placement_tables,
            max_tables=config.max_placement_tables,
            memory_bytes=cluster.config.memory_bytes,
        )
        dims = placement.device_dims
        starts = rng.uniform(0.0, config.max_start_ms, size=cluster.num_devices)
        # Collective cost depends only on the *relative* start skew (the
        # last arrival gates the data flow), so anchor the earliest start
        # at zero.  The search queries the model with zero-anchored skews
        # too, keeping queries inside the training support.
        starts -= starts.min()
        features.append(comm_features(dims, starts, cluster.batch_size))
        fwd = cluster.measure_comm(dims, start_times_ms=starts, backward=False)
        bwd = cluster.measure_comm(dims, start_times_ms=starts, backward=True)
        fwd_targets.append(np.array(fwd.costs_ms))
        bwd_targets.append(np.array(bwd.costs_ms))
    x = np.stack(features)
    return (
        ArrayDataset(inputs=x, targets=np.stack(fwd_targets)),
        ArrayDataset(inputs=x, targets=np.stack(bwd_targets)),
    )
