"""All-to-all communication cost (ground truth).

In DLRM model-parallel training every device holds a slice of the tables,
computes pooled embeddings for the *global* batch, and exchanges slices
with every peer through an all-to-all collective — once forward
(embeddings) and once backward (gradients), per iteration (Figure 1).

Cost structure (Section 2.2):

- Device ``d`` sends ``batch * device_dim_d * 4`` bytes per peer slice;
  total egress is proportional to its *device dimension* (sum of its
  tables' dimensions).
- The collective is synchronous: no data flows until every participant
  has arrived, so a device arriving early *waits* for the last starter.
  The paper injects random starting timestamps when collecting training
  data precisely to cover this skew (Section 3.1).
- Completion is dominated by the slowest participant's message volume:
  we blend ``straggler_weight`` of the max device dimension with the
  remainder of the device's own dimension.

The *measured* cost on device ``d`` is ``completion_d - start_d`` — what a
timer around the collective call would report — which makes **Observation
3** (max measured cost tracks max device dimension) structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.utils import deterministic_normal

__all__ = ["AllToAllModel", "CommMeasurement"]


@dataclass(frozen=True)
class CommMeasurement:
    """Per-device timings of one all-to-all collective.

    Attributes:
        costs_ms: measured latency per device (completion − own start).
        completion_ms: absolute completion timestamp per device.
    """

    costs_ms: tuple[float, ...]
    completion_ms: tuple[float, ...]

    @property
    def max_cost_ms(self) -> float:
        """The bottleneck cost (the paper's evaluation metric)."""
        return max(self.costs_ms)


class AllToAllModel:
    """Ground-truth communication model for a ``D``-device collective.

    Args:
        spec: device/link calibration constants.
        noise_seed: folded into deterministic measurement noise.
    """

    def __init__(self, spec: DeviceSpec | None = None, noise_seed: int = 0) -> None:
        self.spec = spec or DeviceSpec()
        self.noise_seed = noise_seed

    def _transfer_ms(
        self, device_dims: np.ndarray, batch_size: int, backward: bool
    ) -> np.ndarray:
        """Wire time per device once all participants have arrived."""
        spec = self.spec
        num_devices = len(device_dims)
        if num_devices == 1:
            return np.zeros(1)
        # Each device exchanges (D-1)/D of the global batch's slice bytes.
        peer_fraction = (num_devices - 1) / num_devices
        bytes_per_dim = batch_size * 4.0 * peer_fraction
        max_dim = float(device_dims.max())
        blended = (
            spec.straggler_weight * max_dim
            + (1.0 - spec.straggler_weight) * device_dims.astype(np.float64)
        )
        wire = blended * bytes_per_dim / spec.comm_bandwidth_bytes_per_ms
        wire += spec.comm_latency_ms * (num_devices - 1)
        if backward:
            wire *= spec.backward_comm_factor
        return wire

    def measure(
        self,
        device_dims: Sequence[int],
        batch_size: int,
        start_times_ms: Sequence[float] | None = None,
        backward: bool = False,
        noisy: bool = True,
    ) -> CommMeasurement:
        """Measure one collective.

        Args:
            device_dims: per-device sum of table dimensions.
            batch_size: per-device mini-batch size.
            start_times_ms: per-device timestamps at which each device
                reaches the collective; ``None`` means simultaneous.
            backward: gradient all-to-all (slightly slower).
            noisy: include deterministic measurement noise.

        Returns:
            Per-device measured costs and absolute completion times.
        """
        dims = np.asarray(device_dims, dtype=np.int64)
        if dims.ndim != 1 or len(dims) < 1:
            raise ValueError("device_dims must be a non-empty 1-D sequence")
        if np.any(dims < 0):
            raise ValueError("device dimensions must be >= 0")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if start_times_ms is None:
            starts = np.zeros(len(dims))
        else:
            starts = np.asarray(start_times_ms, dtype=np.float64)
            if starts.shape != dims.shape:
                raise ValueError(
                    f"start_times_ms length {len(starts)} != devices {len(dims)}"
                )
            if np.any(starts < 0):
                raise ValueError("start times must be >= 0")

        # Synchronous collective: data flows once the last device arrives.
        barrier = float(starts.max())
        wire = self._transfer_ms(dims, batch_size, backward)
        completion = barrier + wire
        costs = completion - starts

        if noisy and self.spec.noise_fraction > 0 and len(dims) > 1:
            tag = "bwd" if backward else "fwd"
            key_dims = tuple(int(d) for d in dims)
            key_starts = tuple(round(float(s), 3) for s in starts)
            for d in range(len(dims)):
                z = deterministic_normal(
                    "comm", tag, self.noise_seed, batch_size, key_dims, key_starts, d
                )
                costs[d] *= 1.0 + self.spec.noise_fraction * z
            completion = starts + costs

        return CommMeasurement(
            costs_ms=tuple(float(c) for c in costs),
            completion_ms=tuple(float(c) for c in completion),
        )
