"""Device calibration constants for the simulated GPU.

Defaults model an RTX 2080 Ti-class device (the paper's testbed): ~11 GB
of device memory, a ~5.5 MB L2 cache, ~616 GB/s DRAM bandwidth (much lower
effective bandwidth for random gathers), and PCIe-class inter-GPU links.
The absolute values only set the latency *scale*; the reproduction targets
the qualitative shape of the paper's results, not its exact milliseconds
(Appendix I: "the cost is highly dependent on the GPUs used").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Calibration constants of one simulated GPU and its links.

    Computation-side attributes (used by
    :class:`~repro.hardware.kernel.EmbeddingKernelModel`):

    Attributes:
        cache_bytes: effective on-chip cache for embedding rows.  Tables
            whose per-batch unique working set fits here are cheap to
            re-read; large cold tables pay DRAM gather cost.
        gather_bandwidth_bytes_per_ms: effective DRAM bandwidth for random
            row gathers (far below peak streaming bandwidth).
        cache_bandwidth_bytes_per_ms: effective bandwidth for rows resident
            in cache.
        index_cost_ms: index-processing time per lookup index (hashing,
            offsets, address generation).  Independent of the embedding
            dimension — the root cause of Observation 1.
        kernel_launch_ms: fixed cost of launching the fused kernel.
        table_overhead_ms: fixed per-table setup cost inside the fused
            kernel (argument marshalling, pointer chasing).
        dim_half_sat: dimension at which gather efficiency reaches 50%;
            small dimensions under-utilize memory transactions, making
            per-byte cost higher (sub-linear dimension scaling).
        fusion_max_speedup: asymptotic speedup of the fused multi-table
            kernel over running tables back-to-back (Observation 2).
        fusion_tau: number of tables at which fusion speedup saturates
            (e-folding scale).
        backward_memory_factor: backward pass gather/scatter traffic
            relative to forward (gradient scatter re-reads and writes).
        backward_index_factor: backward index-processing relative to
            forward (atomic collision handling).

    Communication-side attributes (used by
    :class:`~repro.hardware.comm.AllToAllModel`):

    Attributes:
        comm_bandwidth_bytes_per_ms: aggregate all-to-all egress bandwidth
            per device.
        comm_latency_ms: per-peer latency term of the collective.
        backward_comm_factor: backward all-to-all slowdown versus forward.
        straggler_weight: how strongly the slowest participant's message
            size dominates collective completion (1.0 = completely).

    Other:

    Attributes:
        memory_bytes: physical device memory (the benchmark tasks impose a
            tighter 4 GB *embedding* budget on top of this).
        dense_forward_ms / dense_backward_ms: latency of the data-parallel
            dense part of the model, used only by the trace simulator for
            end-to-end iteration time and throughput (Table 4).
        noise_fraction: relative std-dev of residual measurement noise
            after the warm-up + median protocol.
    """

    name: str = "sim-2080ti"
    # computation
    cache_bytes: int = 6 * 1024**2
    gather_bandwidth_bytes_per_ms: float = 1.0e8  # 100 GB/s random gather
    cache_bandwidth_bytes_per_ms: float = 1.8e9  # ~1.8 TB/s on-chip
    index_cost_ms: float = 1.1e-6
    kernel_launch_ms: float = 0.06
    table_overhead_ms: float = 0.05
    dim_half_sat: float = 18.0
    fusion_max_speedup: float = 1.9
    fusion_tau: float = 4.0
    backward_memory_factor: float = 1.35
    backward_index_factor: float = 1.6
    # communication
    comm_bandwidth_bytes_per_ms: float = 6.0e6  # ~6 GB/s effective egress
    comm_latency_ms: float = 0.25
    backward_comm_factor: float = 1.15
    straggler_weight: float = 0.75
    # other
    memory_bytes: int = 11 * 1024**3
    dense_forward_ms: float = 6.0
    dense_backward_ms: float = 9.0
    noise_fraction: float = 0.01

    def __post_init__(self) -> None:
        positive = (
            "cache_bytes",
            "gather_bandwidth_bytes_per_ms",
            "cache_bandwidth_bytes_per_ms",
            "index_cost_ms",
            "dim_half_sat",
            "fusion_tau",
            "comm_bandwidth_bytes_per_ms",
            "memory_bytes",
        )
        for attr in positive:
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be > 0, got {getattr(self, attr)}")
        non_negative = (
            "kernel_launch_ms",
            "table_overhead_ms",
            "comm_latency_ms",
            "dense_forward_ms",
            "dense_backward_ms",
            "noise_fraction",
        )
        for attr in non_negative:
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0, got {getattr(self, attr)}")
        if self.fusion_max_speedup < 1.0:
            raise ValueError(
                f"fusion_max_speedup must be >= 1.0, got {self.fusion_max_speedup}"
            )
        if not 0.0 <= self.straggler_weight <= 1.0:
            raise ValueError(
                f"straggler_weight must be in [0, 1], got {self.straggler_weight}"
            )
        if self.backward_memory_factor < 1.0 or self.backward_index_factor < 1.0:
            raise ValueError("backward factors must be >= 1.0")
        if self.backward_comm_factor < 1.0:
            raise ValueError(
                f"backward_comm_factor must be >= 1.0, got {self.backward_comm_factor}"
            )
