"""Per-iteration execution traces with straggler accumulation.

Reproduces the timeline mechanics of the paper's Figure 1 (right): each
training iteration interleaves embedding forward computation, a forward
all-to-all, the dense (data-parallel) forward/backward, a backward
all-to-all and the embedding backward computation.  Because the
all-to-alls are synchronous, a device whose embedding computation runs
long delays *everyone*, and its own next iteration starts later —
imbalance accumulates into idle time on the fast devices, which is exactly
why balanced sharding matters (Section 2).

The trace simulator is also the source of end-to-end iteration time and
training throughput for the production experiment (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.table import TableConfig
from repro.hardware.comm import AllToAllModel
from repro.hardware.device import DeviceSpec
from repro.hardware.kernel import EmbeddingKernelModel

__all__ = ["TraceEvent", "IterationTrace", "TraceSimulator"]

#: Event kinds in execution order within an iteration.
EVENT_KINDS = ("fwd_comp", "fwd_comm", "dense", "bwd_comm", "bwd_comp")


@dataclass(frozen=True)
class TraceEvent:
    """One interval on one device's timeline."""

    device: int
    kind: str
    start_ms: float
    end_ms: float
    iteration: int

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"event ends before it starts: {self.start_ms}..{self.end_ms}"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class IterationTrace:
    """All events plus summary costs of one iteration.

    Attributes:
        events: per-device intervals.
        embedding_costs_ms: per-device embedding cost — computation plus
            *measured* (waiting-inclusive) communication, the quantity the
            paper's evaluation timer reports.
        compute_costs_ms / fwd_comm_costs_ms / bwd_comm_costs_ms: the
            per-device breakdown.
        iteration_ms: wall-clock duration of the iteration.
    """

    events: tuple[TraceEvent, ...]
    embedding_costs_ms: tuple[float, ...]
    compute_costs_ms: tuple[float, ...]
    fwd_comm_costs_ms: tuple[float, ...]
    bwd_comm_costs_ms: tuple[float, ...]
    iteration_ms: float

    @property
    def max_embedding_cost_ms(self) -> float:
        """The bottleneck device's embedding cost (evaluation metric)."""
        return max(self.embedding_costs_ms)

    def device_events(self, device: int) -> list[TraceEvent]:
        return [e for e in self.events if e.device == device]

    def idle_ms(self, device: int) -> float:
        """Time ``device`` spends waiting inside collectives this
        iteration — the straggler effect made visible."""
        waits = 0.0
        for e in self.events:
            if e.device == device and e.kind in ("fwd_comm", "bwd_comm"):
                waits += e.duration_ms
        # Waiting is the part of comm beyond the pure wire time of the
        # least-loaded participant; we report the full comm interval here
        # and leave decomposition to callers that have the comm model.
        return waits


class TraceSimulator:
    """Event-driven simulation of synchronous DLRM training iterations.

    Args:
        spec: device calibration.
        batch_size: per-device mini-batch size.
        noise_seed: measurement-noise seed shared by the kernel and comm
            models.
        comm: optional collective-model override (e.g. a hierarchical
            topology model); defaults to the flat ``AllToAllModel``.
    """

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        batch_size: int = 65536,
        noise_seed: int = 0,
        comm: AllToAllModel | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.spec = spec or DeviceSpec()
        self.batch_size = batch_size
        self.kernel = EmbeddingKernelModel(self.spec, noise_seed)
        self.comm = comm if comm is not None else AllToAllModel(self.spec, noise_seed)

    def simulate(
        self,
        per_device_tables: Sequence[Sequence[TableConfig]],
        num_iterations: int = 3,
    ) -> list[IterationTrace]:
        """Simulate ``num_iterations`` synchronous training iterations.

        The first iteration starts with all devices aligned at t=0; skew
        develops (and reaches steady state) from the imbalance of the plan
        itself, so use the *last* iteration as the steady-state
        measurement.
        """
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        num_devices = len(per_device_tables)
        if num_devices < 1:
            raise ValueError("need at least one device")

        fwd_ms = np.array(
            [
                self.kernel.forward_ms(list(tabs), self.batch_size)
                for tabs in per_device_tables
            ]
        )
        bwd_ms = np.array(
            [
                self.kernel.backward_ms(list(tabs), self.batch_size)
                for tabs in per_device_tables
            ]
        )
        device_dims = [sum(t.dim for t in tabs) for tabs in per_device_tables]
        dense_ms = self.spec.dense_forward_ms + self.spec.dense_backward_ms

        ready = np.zeros(num_devices)
        traces: list[IterationTrace] = []
        for it in range(num_iterations):
            events: list[TraceEvent] = []
            iter_start = float(ready.max()) if it > 0 else 0.0

            # --- embedding forward computation ------------------------
            fwd_end = ready + fwd_ms
            for d in range(num_devices):
                events.append(
                    TraceEvent(d, "fwd_comp", float(ready[d]), float(fwd_end[d]), it)
                )

            # --- forward all-to-all (synchronous) ----------------------
            fwd_meas = self.comm.measure(
                device_dims, self.batch_size, start_times_ms=fwd_end.tolist()
            )
            fwd_done = np.array(fwd_meas.completion_ms)
            for d in range(num_devices):
                events.append(
                    TraceEvent(d, "fwd_comm", float(fwd_end[d]), float(fwd_done[d]), it)
                )

            # --- dense forward + backward (data-parallel) --------------
            dense_end = fwd_done + dense_ms
            for d in range(num_devices):
                events.append(
                    TraceEvent(d, "dense", float(fwd_done[d]), float(dense_end[d]), it)
                )

            # --- backward all-to-all -----------------------------------
            bwd_meas = self.comm.measure(
                device_dims,
                self.batch_size,
                start_times_ms=dense_end.tolist(),
                backward=True,
            )
            bwd_done = np.array(bwd_meas.completion_ms)
            for d in range(num_devices):
                events.append(
                    TraceEvent(
                        d, "bwd_comm", float(dense_end[d]), float(bwd_done[d]), it
                    )
                )

            # --- embedding backward computation ------------------------
            new_ready = bwd_done + bwd_ms
            for d in range(num_devices):
                events.append(
                    TraceEvent(
                        d, "bwd_comp", float(bwd_done[d]), float(new_ready[d]), it
                    )
                )

            embedding_costs = (
                fwd_ms
                + bwd_ms
                + np.array(fwd_meas.costs_ms)
                + np.array(bwd_meas.costs_ms)
            )
            traces.append(
                IterationTrace(
                    events=tuple(events),
                    embedding_costs_ms=tuple(float(c) for c in embedding_costs),
                    compute_costs_ms=tuple(float(c) for c in fwd_ms + bwd_ms),
                    fwd_comm_costs_ms=tuple(float(c) for c in fwd_meas.costs_ms),
                    bwd_comm_costs_ms=tuple(float(c) for c in bwd_meas.costs_ms),
                    iteration_ms=float(new_ready.max()) - iter_start,
                )
            )
            ready = new_ready
        return traces

    def steady_state(
        self,
        per_device_tables: Sequence[Sequence[TableConfig]],
        warmup_iterations: int = 2,
    ) -> IterationTrace:
        """The steady-state iteration (after skew has accumulated)."""
        return self.simulate(per_device_tables, warmup_iterations + 1)[-1]

    def throughput_samples_per_s(
        self,
        per_device_tables: Sequence[Sequence[TableConfig]],
        warmup_iterations: int = 2,
    ) -> float:
        """End-to-end training throughput (global samples per second)."""
        trace = self.steady_state(per_device_tables, warmup_iterations)
        num_devices = len(per_device_tables)
        return num_devices * self.batch_size / trace.iteration_ms * 1000.0
