"""Calibration presets for simulated device classes.

The paper's testbed is homogeneous (eight RTX 2080 Ti GPUs), but its
future-work list (Section 6) names *CPU sharding and mixed CPU-GPU
sharding* as the next target.  The mixed-cluster extension in
:mod:`repro.hardware.hetero` and :mod:`repro.extensions.mixed` needs
device classes with distinct cost behaviour; this module provides them.

Each preset is an honest qualitative model of its class, expressed in the
same :class:`~repro.hardware.device.DeviceSpec` vocabulary the
:class:`~repro.hardware.kernel.EmbeddingKernelModel` consumes:

- ``gpu_2080ti`` — the default spec (the paper's device), re-exported here
  for discoverability.
- ``gpu_a100`` — a datacenter-class GPU: ~3x the gather bandwidth, a much
  larger L2, 40 GB of memory, NVLink-class egress.
- ``cpu_host`` — a host CPU with DRAM-resident tables: two orders of
  magnitude more memory than a GPU but far lower random-gather bandwidth,
  higher per-index cost (no massively-parallel gather units), essentially
  no multi-table fusion benefit (the "fused" CPU loop is just a loop), and
  PCIe-class egress into the collective.

The class of a spec is recoverable from :func:`device_class`, which keys
on the preset's ``name`` prefix; the mixed-cluster sharder uses it to pick
the matching cost model.
"""

from __future__ import annotations

from dataclasses import replace

from repro.hardware.device import DeviceSpec

__all__ = [
    "DEVICE_PRESETS",
    "cpu_host",
    "device_class",
    "gpu_2080ti",
    "gpu_a100",
]


def gpu_2080ti() -> DeviceSpec:
    """The paper's testbed device — identical to ``DeviceSpec()``."""
    return DeviceSpec(name="gpu-2080ti")


def gpu_a100() -> DeviceSpec:
    """A datacenter-class GPU (A100-like): faster at everything.

    Relative to the 2080 Ti baseline: ~3x random-gather bandwidth, 40 MB
    of L2 (bigger working sets stay cheap), 40 GB memory, and NVLink-class
    egress bandwidth into the all-to-all.
    """
    return replace(
        DeviceSpec(),
        name="gpu-a100",
        cache_bytes=40 * 1024**2,
        gather_bandwidth_bytes_per_ms=3.0e8,
        cache_bandwidth_bytes_per_ms=5.0e9,
        index_cost_ms=6.0e-7,
        kernel_launch_ms=0.05,
        table_overhead_ms=0.035,
        comm_bandwidth_bytes_per_ms=4.5e7,
        comm_latency_ms=0.1,
        memory_bytes=40 * 1024**3,
        dense_forward_ms=2.5,
        dense_backward_ms=4.0,
    )


def cpu_host() -> DeviceSpec:
    """A host-CPU device holding tables in DRAM.

    Qualitative properties that matter to sharding:

    - **huge memory** (256 GB DRAM) — the reason to offload at all;
    - **slow lookups** — random gathers run at DRAM-latency-bound rates
      (~8 GB/s effective) and index processing costs ~20x a GPU's;
    - **no fusion** — ``fusion_max_speedup`` barely above 1: a CPU
      "fused" embedding op is a sequential loop over tables;
    - **weak caching** — last-level cache is larger than a GPU L2 but
      the gap between cache and DRAM bandwidth is much smaller, so skew
      helps less;
    - **PCIe egress** — the CPU participates in the collective over the
      host-device interconnect.
    """
    return replace(
        DeviceSpec(),
        name="cpu-host",
        cache_bytes=32 * 1024**2,
        gather_bandwidth_bytes_per_ms=8.0e6,
        cache_bandwidth_bytes_per_ms=1.0e8,
        index_cost_ms=2.2e-5,
        kernel_launch_ms=0.005,
        table_overhead_ms=0.02,
        fusion_max_speedup=1.05,
        fusion_tau=2.0,
        comm_bandwidth_bytes_per_ms=3.0e6,
        comm_latency_ms=0.5,
        memory_bytes=256 * 1024**3,
        dense_forward_ms=0.0,
        dense_backward_ms=0.0,
    )


#: Name → factory for every preset, for CLI/config lookup.
DEVICE_PRESETS = {
    "gpu-2080ti": gpu_2080ti,
    "gpu-a100": gpu_a100,
    "cpu-host": cpu_host,
}


def device_class(spec: DeviceSpec) -> str:
    """Coarse class of a spec: ``"cpu"`` or ``"gpu"``.

    Keyed on the spec's name prefix; custom specs default to ``"gpu"``
    (the common case) unless named ``cpu-*``.
    """
    return "cpu" if spec.name.startswith("cpu") else "gpu"
