"""Embedding memory accounting and out-of-memory detection.

The benchmark tasks impose a per-device *embedding* memory budget (4 GB in
the paper's Section 4).  A table's footprint is its weight matrix plus the
optimizer state: DLRMs train embeddings with row-wise AdaGrad, which keeps
one fp32 accumulator per row (Mudigere et al., 2022), i.e.
``hash_size * 4`` bytes — equal to ``weights / dim``.

Sharding a table column-wise halves the weight bytes of each shard but
duplicates the row-wise optimizer state on both shards, a real (small)
memory cost of column sharding that the plan-legality checks account for.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.table import TableConfig

__all__ = ["MemoryModel", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """A sharding plan exceeds some device's embedding memory budget.

    Mirrors the paper's "-" entries in Table 1: an algorithm whose plan
    triggers this on any task "cannot scale" to the setting.
    """


class MemoryModel:
    """Per-device embedding memory accounting.

    Args:
        memory_bytes: the per-device embedding budget.
        optimizer_rowwise_bytes: optimizer state bytes per table row
            (4 for row-wise AdaGrad's fp32 accumulator).
    """

    def __init__(self, memory_bytes: int, optimizer_rowwise_bytes: int = 4) -> None:
        if memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0, got {memory_bytes}")
        if optimizer_rowwise_bytes < 0:
            raise ValueError(
                f"optimizer_rowwise_bytes must be >= 0, got {optimizer_rowwise_bytes}"
            )
        self.memory_bytes = memory_bytes
        self.optimizer_rowwise_bytes = optimizer_rowwise_bytes

    def table_bytes(self, table: TableConfig) -> int:
        """Footprint of one table: weights + row-wise optimizer state."""
        return table.size_bytes + table.hash_size * self.optimizer_rowwise_bytes

    def device_bytes(self, tables: Iterable[TableConfig]) -> int:
        """Total footprint of a device's table set."""
        return sum(self.table_bytes(t) for t in tables)

    def fits(self, tables: Iterable[TableConfig]) -> bool:
        """Whether a device's table set fits the budget."""
        return self.device_bytes(tables) <= self.memory_bytes

    def remaining_bytes(self, tables: Iterable[TableConfig]) -> int:
        """Free budget on a device holding ``tables`` (may be negative)."""
        return self.memory_bytes - self.device_bytes(tables)

    def check_placement(
        self, per_device: Sequence[Sequence[TableConfig]]
    ) -> None:
        """Raise :class:`OutOfMemoryError` if any device over-commits."""
        for d, tables in enumerate(per_device):
            used = self.device_bytes(tables)
            if used > self.memory_bytes:
                raise OutOfMemoryError(
                    f"device {d} needs {used} B for {len(list(tables))} tables "
                    f"but the budget is {self.memory_bytes} B"
                )

    def placement_fits(self, per_device: Sequence[Sequence[TableConfig]]) -> bool:
        """Non-raising variant of :meth:`check_placement`."""
        return all(self.fits(tables) for tables in per_device)
