"""Fused embedding-kernel computation cost (ground truth).

Models the latency of an FBGEMM-style fused multi-table embedding lookup
(forward + backward) on one device.  The cost equation is built from the
mechanics the paper identifies in Section 2.1 and is calibrated so the two
computation-side observations hold *structurally* (not by curve fitting):

Per table ``t`` with batch ``B``:

- index processing: ``idx_t = B * pooling_t * index_cost`` — independent
  of dimension.
- memory traffic: every lookup reads a ``dim``-float row.  The expected
  unique working set (``resident_t = unique_rows * dim * 4``) competes for
  the cache: the miss fraction ``resident / (resident + cache)`` of
  traffic pays slow random-gather DRAM bandwidth, the rest hits cache
  bandwidth.  Small dimensions under-utilize memory transactions, dividing
  bandwidth by ``dim / (dim + dim_half_sat)``.

Fused multi-table execution of tables ``S``:

- ``cost(S) = launch + overhead * |S| + (sum_t base_t) / speedup(S)``
  where ``speedup(S)`` rises from 1 (single table) towards
  ``fusion_max_speedup`` with the table count
  (``s(T) = s_max - (s_max - 1) * exp(-(T - 1) / tau)``), *scaled by the
  load balance of the combination*: a fused kernel whose per-table works
  are skewed under-utilizes its thread blocks, so
  ``speedup(S) = 1 + (s(T) - 1) * (0.55 + 0.45 * mean(w) / max(w))``.
  The balance term is what makes the fused cost depend on the
  *composition* of the combination, not just on the sum of works and the
  count.

Why the observations follow:

- **Observation 1** (half-dim shards cost more than half): splitting a
  table leaves ``idx_t`` and the per-table overhead un-halved on *each*
  shard, and the shard's smaller ``dim`` has worse transaction efficiency.
  This holds for every table on the supported dimension grid (dims up to
  128, any storage width — verified exhaustively over the hash-size /
  pooling / skew space).  It is NOT guaranteed for hypothetical dim-256
  parents, which the pipeline never produces (``DIMENSION_GRID`` and
  task ``max_dim`` stop at 128): there the transaction-efficiency
  penalty has saturated while halving the working set still shifts
  traffic from gather to cache bandwidth, so a shard can undercut half
  the parent by up to ~9% (widest rows, working set near ``cache_bytes``).
- **Observation 2** (multi-table cost is non-linear in the sum of
  single-table costs): single-table runs pay ``launch`` per table and get
  ``speedup(1) = 1``, while the fused run pays one launch and
  ``speedup(T) > 1`` — so the fused cost is sub-additive, with the gap
  depending non-linearly on how many and which tables are combined.

Measured costs include deterministic pseudo-noise (see
:mod:`repro.utils`) emulating the residual variance after the paper's
warm-up + median-of-100 protocol.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.data.table import TableConfig, table_set_key
from repro.hardware.device import DeviceSpec
from repro.utils import deterministic_normal

__all__ = ["EmbeddingKernelModel"]


class EmbeddingKernelModel:
    """Ground-truth computation-cost model for one simulated device.

    Args:
        spec: device calibration constants.
        noise_seed: seed folded into the deterministic measurement noise;
            two models with different seeds simulate two different
            hardware instances.
    """

    def __init__(self, spec: DeviceSpec | None = None, noise_seed: int = 0) -> None:
        self.spec = spec or DeviceSpec()
        self.noise_seed = noise_seed

    # ------------------------------------------------------------------
    # per-table building blocks (noise-free)
    # ------------------------------------------------------------------

    def _dim_efficiency(self, dim: int) -> float:
        """Memory-transaction efficiency in (0, 1); 1 at large dims."""
        return dim / (dim + self.spec.dim_half_sat)

    def _table_forward_base_ms(self, table: TableConfig, batch_size: int) -> float:
        """Noise-free forward work of one table inside the fused kernel,
        excluding launch and per-table overhead."""
        spec = self.spec
        num_indices = table.indices_per_batch(batch_size)
        idx_ms = num_indices * spec.index_cost_ms

        row_bytes = table.dim * table.bytes_per_element
        total_bytes = num_indices * row_bytes
        resident = table.expected_unique_rows(batch_size) * row_bytes
        miss_frac = resident / (resident + spec.cache_bytes)
        eff = self._dim_efficiency(table.dim)
        mem_ms = (
            total_bytes * miss_frac / spec.gather_bandwidth_bytes_per_ms
            + total_bytes * (1.0 - miss_frac) / spec.cache_bandwidth_bytes_per_ms
        ) / eff
        return idx_ms + mem_ms

    def _table_backward_base_ms(self, table: TableConfig, batch_size: int) -> float:
        """Noise-free backward work (gradient scatter) of one table."""
        spec = self.spec
        num_indices = table.indices_per_batch(batch_size)
        idx_ms = num_indices * spec.index_cost_ms * spec.backward_index_factor

        row_bytes = table.dim * table.bytes_per_element
        total_bytes = num_indices * row_bytes
        resident = table.expected_unique_rows(batch_size) * row_bytes
        miss_frac = resident / (resident + spec.cache_bytes)
        eff = self._dim_efficiency(table.dim)
        mem_ms = (
            spec.backward_memory_factor
            * (
                total_bytes * miss_frac / spec.gather_bandwidth_bytes_per_ms
                + total_bytes * (1.0 - miss_frac) / spec.cache_bandwidth_bytes_per_ms
            )
            / eff
        )
        return idx_ms + mem_ms

    def fusion_speedup(self, num_tables: int, balance: float = 1.0) -> float:
        """Fused-kernel speedup over back-to-back execution.

        Args:
            num_tables: how many tables the kernel fuses.
            balance: ``mean(work) / max(work)`` of the combination in
                (0, 1]; skewed combinations under-utilize thread blocks
                and realize less of the count-driven speedup.
        """
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if not 0 < balance <= 1.0 + 1e-9:
            raise ValueError(f"balance must be in (0, 1], got {balance}")
        s_max = self.spec.fusion_max_speedup
        by_count = s_max - (s_max - 1.0) * math.exp(
            -(num_tables - 1) / self.spec.fusion_tau
        )
        return 1.0 + (by_count - 1.0) * (0.55 + 0.45 * balance)

    # ------------------------------------------------------------------
    # fused multi-table costs
    # ------------------------------------------------------------------

    def forward_ms(
        self, tables: Sequence[TableConfig], batch_size: int, noisy: bool = True
    ) -> float:
        """Forward latency of the fused kernel over ``tables``."""
        return self._fused_ms(tables, batch_size, self._table_forward_base_ms, "fwd", noisy)

    def backward_ms(
        self, tables: Sequence[TableConfig], batch_size: int, noisy: bool = True
    ) -> float:
        """Backward latency of the fused kernel over ``tables``."""
        return self._fused_ms(
            tables, batch_size, self._table_backward_base_ms, "bwd", noisy
        )

    def total_ms(
        self, tables: Sequence[TableConfig], batch_size: int, noisy: bool = True
    ) -> float:
        """Forward + backward latency — the paper's "computation cost"."""
        return self.forward_ms(tables, batch_size, noisy) + self.backward_ms(
            tables, batch_size, noisy
        )

    def _fused_ms(self, tables, batch_size, base_fn, tag, noisy) -> float:
        if len(tables) == 0:
            return 0.0
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        spec = self.spec
        works = [base_fn(t, batch_size) for t in tables]
        total_work = sum(works)
        balance = (sum(works) / len(works)) / max(works) if max(works) > 0 else 1.0
        cost = (
            spec.kernel_launch_ms
            + spec.table_overhead_ms * len(tables)
            + total_work / self.fusion_speedup(len(tables), balance)
        )
        if noisy and spec.noise_fraction > 0:
            z = deterministic_normal(
                "kernel", tag, self.noise_seed, batch_size, table_set_key(tables)
            )
            cost *= 1.0 + spec.noise_fraction * z
        return max(cost, 1e-6)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def single_table_ms(
        self, table: TableConfig, batch_size: int, noisy: bool = True
    ) -> float:
        """Cost of running one table alone (its own kernel launch)."""
        return self.total_ms([table], batch_size, noisy=noisy)

    def sum_of_single_table_ms(
        self, tables: Iterable[TableConfig], batch_size: int, noisy: bool = True
    ) -> float:
        """Sum of isolated single-table costs (Figure 3 right, x-axis)."""
        return sum(self.single_table_ms(t, batch_size, noisy=noisy) for t in tables)
