"""Simulated multi-GPU hardware substrate (ground truth for all costs).

The paper measures embedding computation and communication latencies on a
server with eight RTX 2080 Ti GPUs running FBGEMM fused embedding kernels
and NCCL all-to-all collectives.  That hardware is not available here, so
this package provides a deterministic analytical simulator, calibrated so
that the paper's three motivating observations hold (see
:mod:`repro.hardware.kernel` and :mod:`repro.hardware.comm` for the cost
equations and DESIGN.md for the substitution rationale):

- **Observation 1** — column-halving a table yields shards that each cost
  more than half the parent (fixed per-table work + sub-linear dimension
  efficiency).
- **Observation 2** — fused multi-table cost is a non-linear, sub-additive
  function of single-table costs (kernel-fusion speedup grows with the
  number of tables).
- **Observation 3** — the max all-to-all communication cost across devices
  is driven by the max device dimension (plus start-time skew).

The sharding algorithms interact with hardware only through measured
latencies, so any ground truth with this qualitative structure exercises
exactly the code paths the paper exercises.

Public API:

- :class:`~repro.hardware.device.DeviceSpec` — calibration constants.
- :class:`~repro.hardware.kernel.EmbeddingKernelModel` — fused-kernel cost.
- :class:`~repro.hardware.comm.AllToAllModel` — collective cost.
- :class:`~repro.hardware.memory.MemoryModel` — memory accounting / OOM.
- :class:`~repro.hardware.cluster.SimulatedCluster` — the facade the rest
  of the repository talks to.
- :class:`~repro.hardware.trace.TraceSimulator` — per-iteration timelines,
  straggler accumulation, end-to-end throughput.
- :class:`~repro.hardware.hetero.HeterogeneousCluster` — mixed CPU-GPU
  clusters (Section 6 future work), with per-device calibrations from
  :mod:`repro.hardware.presets`.
"""

from repro.hardware.device import DeviceSpec
from repro.hardware.kernel import EmbeddingKernelModel
from repro.hardware.comm import AllToAllModel, CommMeasurement
from repro.hardware.memory import MemoryModel, OutOfMemoryError
from repro.hardware.cluster import PlanExecution, SimulatedCluster
from repro.hardware.trace import IterationTrace, TraceEvent, TraceSimulator
from repro.hardware.hetero import HeteroAllToAllModel, HeterogeneousCluster
from repro.hardware.topology import HierarchicalAllToAllModel, TopologySpec
from repro.hardware.presets import (
    DEVICE_PRESETS,
    cpu_host,
    device_class,
    gpu_2080ti,
    gpu_a100,
)

__all__ = [
    "DeviceSpec",
    "EmbeddingKernelModel",
    "AllToAllModel",
    "CommMeasurement",
    "MemoryModel",
    "OutOfMemoryError",
    "PlanExecution",
    "SimulatedCluster",
    "IterationTrace",
    "TraceEvent",
    "TraceSimulator",
    "HeteroAllToAllModel",
    "HeterogeneousCluster",
    "HierarchicalAllToAllModel",
    "TopologySpec",
    "DEVICE_PRESETS",
    "cpu_host",
    "device_class",
    "gpu_2080ti",
    "gpu_a100",
]
