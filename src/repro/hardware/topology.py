"""Hierarchical network topology for the all-to-all collective.

The paper's benchmark testbed is a single 8-GPU server, but its
production deployment (Section 4.5) runs on *"a state-of-the-art hardware
platform with RDMA network fabrics"* (Mudigere et al., 2022) — 128 GPUs
spread across multi-GPU nodes, where intra-node links (NVLink-class) are
an order of magnitude faster than the inter-node fabric.  The flat
:class:`~repro.hardware.comm.AllToAllModel` cannot represent that; this
module adds a two-level model so the production-scale experiments can be
run on a realistic fabric.

Cost structure of a hierarchical all-to-all from device ``d``:

- ``d``'s egress volume splits by peer location: a fraction
  ``(G-1)/(D-1)`` of its per-peer slices stay inside its ``G``-device
  node, the rest crosses the fabric;
- intra- and inter-node transfers proceed in parallel (separate links),
  so the wire time is the *max* of the two drain times, each at its own
  bandwidth, plus per-level latency terms;
- the synchronous barrier and straggler-domination structure are
  unchanged from the flat model: nothing flows until the last participant
  arrives, and completion is blended towards the slowest sender.

A key property the tests verify: **Observation 3 survives the topology
change** — the max measured cost still tracks the max device dimension —
which is why NeuroShard's dimension-based communication balancing remains
sound on hierarchical fabrics, and why the paper could deploy the same
search on the 128-GPU RDMA cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.comm import CommMeasurement
from repro.hardware.device import DeviceSpec
from repro.utils import deterministic_normal

__all__ = ["TopologySpec", "HierarchicalAllToAllModel"]


@dataclass(frozen=True)
class TopologySpec:
    """Calibration of a two-level (node / fabric) interconnect.

    Attributes:
        node_size: devices per node (``G``); NVLink-island size.
        intra_bandwidth_bytes_per_ms: per-device egress bandwidth for
            peers in the same node (NVLink-class).
        inter_bandwidth_bytes_per_ms: per-device egress bandwidth into
            the cross-node fabric (RDMA-class; typically ~10x slower).
        intra_latency_ms / inter_latency_ms: per-peer latency terms at
            each level.
    """

    node_size: int = 8
    intra_bandwidth_bytes_per_ms: float = 6.0e7  # ~60 GB/s NVLink-class
    inter_bandwidth_bytes_per_ms: float = 6.0e6  # ~6 GB/s RDMA-class
    intra_latency_ms: float = 0.02
    inter_latency_ms: float = 0.3

    def __post_init__(self) -> None:
        if self.node_size < 1:
            raise ValueError(f"node_size must be >= 1, got {self.node_size}")
        if self.intra_bandwidth_bytes_per_ms <= 0:
            raise ValueError("intra_bandwidth_bytes_per_ms must be > 0")
        if self.inter_bandwidth_bytes_per_ms <= 0:
            raise ValueError("inter_bandwidth_bytes_per_ms must be > 0")
        if self.intra_latency_ms < 0 or self.inter_latency_ms < 0:
            raise ValueError("latencies must be >= 0")


class HierarchicalAllToAllModel:
    """Two-level all-to-all: NVLink islands over an RDMA fabric.

    Drop-in replacement for
    :class:`~repro.hardware.comm.AllToAllModel` (same ``measure``
    signature), usable wherever a comm model is injected — e.g.
    :class:`~repro.hardware.cluster.SimulatedCluster` for production-scale
    topology studies.

    Args:
        spec: device calibration (supplies ``straggler_weight``,
            ``backward_comm_factor`` and ``noise_fraction``).
        topology: interconnect calibration.
        noise_seed: folded into deterministic measurement noise.
    """

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        topology: TopologySpec | None = None,
        noise_seed: int = 0,
    ) -> None:
        self.spec = spec or DeviceSpec()
        self.topology = topology or TopologySpec()
        self.noise_seed = noise_seed

    def node_of(self, device: int) -> int:
        """Node index of a device (devices are grouped contiguously)."""
        if device < 0:
            raise ValueError(f"device must be >= 0, got {device}")
        return device // self.topology.node_size

    def _transfer_ms(
        self, device_dims: np.ndarray, batch_size: int, backward: bool
    ) -> np.ndarray:
        topo = self.topology
        num_devices = len(device_dims)
        if num_devices == 1:
            return np.zeros(1)
        bytes_per_dim_per_peer = batch_size * 4.0 / num_devices

        nodes = np.arange(num_devices) // topo.node_size
        # Peers per level for each device (its own node may be ragged).
        node_sizes = np.bincount(nodes)
        intra_peers = node_sizes[nodes] - 1
        inter_peers = (num_devices - 1) - intra_peers

        dims = device_dims.astype(np.float64)
        intra_vol = dims * bytes_per_dim_per_peer * intra_peers
        inter_vol = dims * bytes_per_dim_per_peer * inter_peers
        intra_ms = (
            intra_vol / topo.intra_bandwidth_bytes_per_ms
            + topo.intra_latency_ms * np.maximum(intra_peers, 0)
        )
        inter_ms = (
            inter_vol / topo.inter_bandwidth_bytes_per_ms
            + topo.inter_latency_ms * np.maximum(inter_peers, 0)
        )
        # The two levels use disjoint links and overlap.
        drain = np.maximum(intra_ms, inter_ms)

        # Straggler blending, as in the flat model: the synchronous
        # collective's completion leans towards the slowest sender.
        w = self.spec.straggler_weight
        wire = w * float(drain.max()) + (1.0 - w) * drain
        if backward:
            wire *= self.spec.backward_comm_factor
        return wire

    def measure(
        self,
        device_dims: Sequence[int],
        batch_size: int,
        start_times_ms: Sequence[float] | None = None,
        backward: bool = False,
        noisy: bool = True,
    ) -> CommMeasurement:
        """Measure one hierarchical collective.

        Semantics mirror ``AllToAllModel.measure``: a synchronous barrier
        at the latest start, per-device wire times, measured cost =
        completion − own start, deterministic noise.
        """
        dims = np.asarray(device_dims, dtype=np.int64)
        if dims.ndim != 1 or len(dims) < 1:
            raise ValueError("device_dims must be a non-empty 1-D sequence")
        if np.any(dims < 0):
            raise ValueError("device dimensions must be >= 0")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if start_times_ms is None:
            starts = np.zeros(len(dims))
        else:
            starts = np.asarray(start_times_ms, dtype=np.float64)
            if starts.shape != dims.shape:
                raise ValueError(
                    f"start_times_ms length {len(starts)} != devices {len(dims)}"
                )
            if np.any(starts < 0):
                raise ValueError("start times must be >= 0")

        barrier = float(starts.max())
        wire = self._transfer_ms(dims, batch_size, backward)
        completion = barrier + wire
        costs = completion - starts

        if noisy and self.spec.noise_fraction > 0 and len(dims) > 1:
            tag = "tbwd" if backward else "tfwd"
            key_dims = tuple(int(d) for d in dims)
            key_starts = tuple(round(float(s), 3) for s in starts)
            for d in range(len(dims)):
                z = deterministic_normal(
                    "topo", tag, self.noise_seed, batch_size, key_dims,
                    key_starts, d,
                )
                costs[d] *= 1.0 + self.spec.noise_fraction * z
            completion = starts + costs

        return CommMeasurement(
            costs_ms=tuple(float(c) for c in costs),
            completion_ms=tuple(float(c) for c in completion),
        )
