"""Heterogeneous (mixed CPU-GPU) cluster simulation — paper future work.

Section 6 of the paper: *"we plan to investigate CPU sharding or mixed
CPU-GPU sharding scenarios."*  This module provides the substrate for
that scenario: a cluster whose devices have *different*
:class:`~repro.hardware.device.DeviceSpec` calibrations (e.g. a few GPUs
plus a host CPU with huge-but-slow memory), with the same three roles the
homogeneous :class:`~repro.hardware.cluster.SimulatedCluster` plays —
micro-benchmarking, plan evaluation, and memory feasibility.

Differences from the homogeneous cluster:

- **computation** is device-specific: the same table set costs a
  different amount on a CPU than on a GPU, so ``measure_compute`` takes a
  device index and there is one kernel model per device;
- **communication** is link-specific: each participant drains its
  all-to-all volume at its own egress bandwidth, and the synchronous
  collective completes when the *slowest* participant finishes — a CPU
  behind PCIe drags every GPU's measured cost up
  (:class:`HeteroAllToAllModel`);
- **memory** is per-device: the CPU typically has a far larger embedding
  budget than the GPUs, which is the entire point of offloading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.table import TableConfig
from repro.hardware.cluster import PlanExecution
from repro.hardware.device import DeviceSpec
from repro.hardware.kernel import EmbeddingKernelModel
from repro.hardware.memory import MemoryModel, OutOfMemoryError
from repro.hardware.presets import device_class
from repro.utils import deterministic_normal

__all__ = ["HeteroAllToAllModel", "HeterogeneousCluster"]


class HeteroAllToAllModel:
    """All-to-all collective over devices with unequal egress links.

    The homogeneous :class:`~repro.hardware.comm.AllToAllModel` assumes
    every participant drains its volume at the same bandwidth.  Here each
    device ``d`` has its own ``comm_bandwidth_bytes_per_ms`` and latency;
    the synchronous barrier and straggler-domination structure are
    unchanged (Section 2.2), but the straggler is now determined by the
    per-device *drain time* ``dim_d / bandwidth_d`` rather than by the
    dimension alone — a small CPU shard behind a slow link can still be
    the bottleneck.

    Args:
        specs: one calibration per participating device.
        noise_seed: folded into deterministic measurement noise.
    """

    def __init__(self, specs: Sequence[DeviceSpec], noise_seed: int = 0) -> None:
        if len(specs) < 1:
            raise ValueError("need at least one device spec")
        self.specs = tuple(specs)
        self.noise_seed = noise_seed

    def _transfer_ms(
        self, device_dims: np.ndarray, batch_size: int, backward: bool
    ) -> np.ndarray:
        num_devices = len(device_dims)
        if num_devices == 1:
            return np.zeros(1)
        peer_fraction = (num_devices - 1) / num_devices
        bytes_per_dim = batch_size * 4.0 * peer_fraction
        bandwidths = np.array(
            [s.comm_bandwidth_bytes_per_ms for s in self.specs], dtype=np.float64
        )
        latencies = np.array([s.comm_latency_ms for s in self.specs])
        drain = device_dims.astype(np.float64) * bytes_per_dim / bandwidths
        max_drain = float(drain.max())
        weights = np.array([s.straggler_weight for s in self.specs])
        wire = weights * max_drain + (1.0 - weights) * drain
        wire += latencies * (num_devices - 1)
        if backward:
            factors = np.array([s.backward_comm_factor for s in self.specs])
            wire *= factors
        return wire

    def measure(
        self,
        device_dims: Sequence[int],
        batch_size: int,
        start_times_ms: Sequence[float] | None = None,
        backward: bool = False,
        noisy: bool = True,
    ):
        """Measure one collective; mirrors ``AllToAllModel.measure``."""
        from repro.hardware.comm import CommMeasurement

        dims = np.asarray(device_dims, dtype=np.int64)
        if dims.shape != (len(self.specs),):
            raise ValueError(
                f"device_dims has {dims.size} entries, cluster has "
                f"{len(self.specs)} devices"
            )
        if np.any(dims < 0):
            raise ValueError("device dimensions must be >= 0")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if start_times_ms is None:
            starts = np.zeros(len(dims))
        else:
            starts = np.asarray(start_times_ms, dtype=np.float64)
            if starts.shape != dims.shape:
                raise ValueError(
                    f"start_times_ms length {len(starts)} != devices {len(dims)}"
                )
            if np.any(starts < 0):
                raise ValueError("start times must be >= 0")

        barrier = float(starts.max())
        wire = self._transfer_ms(dims, batch_size, backward)
        completion = barrier + wire
        costs = completion - starts

        if noisy and len(dims) > 1:
            tag = "hbwd" if backward else "hfwd"
            key_dims = tuple(int(d) for d in dims)
            key_starts = tuple(round(float(s), 3) for s in starts)
            for d in range(len(dims)):
                frac = self.specs[d].noise_fraction
                if frac <= 0:
                    continue
                z = deterministic_normal(
                    "hcomm", tag, self.noise_seed, batch_size, key_dims, key_starts, d
                )
                costs[d] *= 1.0 + frac * z
            completion = starts + costs

        return CommMeasurement(
            costs_ms=tuple(float(c) for c in costs),
            completion_ms=tuple(float(c) for c in completion),
        )


@dataclass(frozen=True)
class _DeviceSlot:
    """One device of the heterogeneous cluster."""

    spec: DeviceSpec
    kernel: EmbeddingKernelModel
    memory: MemoryModel

    @property
    def klass(self) -> str:
        return device_class(self.spec)


class HeterogeneousCluster:
    """A multi-device training cluster with per-device calibrations.

    Args:
        specs: device calibrations in device order (e.g.
            ``[gpu_2080ti()] * 4 + [cpu_host()]``).
        memory_bytes: per-device *embedding* memory budgets.  ``None``
            uses each spec's physical ``memory_bytes`` (appropriate for
            the mixed scenario where the CPU budget is the offload
            headroom); a scalar applies one budget to every device.
        batch_size: per-iteration mini-batch size.
        noise_seed: measurement-noise seed.
    """

    def __init__(
        self,
        specs: Sequence[DeviceSpec],
        memory_bytes: Sequence[int] | int | None = None,
        batch_size: int = 65536,
        noise_seed: int = 0,
    ) -> None:
        if len(specs) < 1:
            raise ValueError("need at least one device")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if memory_bytes is None:
            budgets = [s.memory_bytes for s in specs]
        elif isinstance(memory_bytes, int):
            budgets = [memory_bytes] * len(specs)
        else:
            budgets = list(memory_bytes)
            if len(budgets) != len(specs):
                raise ValueError(
                    f"{len(budgets)} memory budgets for {len(specs)} devices"
                )
        self.batch_size = batch_size
        self.noise_seed = noise_seed
        self.devices = tuple(
            _DeviceSlot(
                spec=spec,
                kernel=EmbeddingKernelModel(spec, noise_seed),
                memory=MemoryModel(budget),
            )
            for spec, budget in zip(specs, budgets)
        )
        self.comm = HeteroAllToAllModel([s for s in specs], noise_seed)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def specs(self) -> tuple[DeviceSpec, ...]:
        return tuple(slot.spec for slot in self.devices)

    @property
    def device_classes(self) -> tuple[str, ...]:
        """Coarse class per device (``"gpu"`` / ``"cpu"``)."""
        return tuple(slot.klass for slot in self.devices)

    @property
    def memory_budgets(self) -> tuple[int, ...]:
        return tuple(slot.memory.memory_bytes for slot in self.devices)

    # ------------------------------------------------------------------
    # micro-benchmarks
    # ------------------------------------------------------------------

    def measure_compute(
        self, device: int, tables: Sequence[TableConfig], noisy: bool = True
    ) -> float:
        """Fused forward+backward latency of ``tables`` on ``device``."""
        self._check_device(device)
        return self.devices[device].kernel.total_ms(
            list(tables), self.batch_size, noisy=noisy
        )

    def measure_comm(
        self,
        device_dims: Sequence[int],
        start_times_ms: Sequence[float] | None = None,
        backward: bool = False,
        noisy: bool = True,
    ):
        """All-to-all latency across the heterogeneous links."""
        return self.comm.measure(
            device_dims,
            self.batch_size,
            start_times_ms=start_times_ms,
            backward=backward,
            noisy=noisy,
        )

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def device_fits(self, device: int, tables: Sequence[TableConfig]) -> bool:
        """Whether ``tables`` fit ``device``'s embedding budget."""
        self._check_device(device)
        return self.devices[device].memory.fits(tables)

    def plan_fits(self, per_device: Sequence[Sequence[TableConfig]]) -> bool:
        """Whether every device of the placement fits its own budget."""
        self._check_placement_shape(per_device)
        return all(
            slot.memory.fits(tables)
            for slot, tables in zip(self.devices, per_device)
        )

    def check_placement(self, per_device: Sequence[Sequence[TableConfig]]) -> None:
        """Raise :class:`OutOfMemoryError` on any over-committed device."""
        self._check_placement_shape(per_device)
        for d, (slot, tables) in enumerate(zip(self.devices, per_device)):
            used = slot.memory.device_bytes(tables)
            if used > slot.memory.memory_bytes:
                raise OutOfMemoryError(
                    f"device {d} ({slot.spec.name}) needs {used} B but its "
                    f"budget is {slot.memory.memory_bytes} B"
                )

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    def evaluate_plan(
        self,
        per_device: Sequence[Sequence[TableConfig]],
        warmup_iterations: int = 2,
    ) -> PlanExecution:
        """Execute a placement; same timeline mechanics as the
        homogeneous :class:`~repro.hardware.trace.TraceSimulator`, with
        per-device compute times and the heterogeneous collective.

        Raises:
            OutOfMemoryError: if any device over-commits its own budget.
        """
        self.check_placement(per_device)
        num_devices = self.num_devices
        fwd_ms = np.array(
            [
                slot.kernel.forward_ms(list(tabs), self.batch_size)
                for slot, tabs in zip(self.devices, per_device)
            ]
        )
        bwd_ms = np.array(
            [
                slot.kernel.backward_ms(list(tabs), self.batch_size)
                for slot, tabs in zip(self.devices, per_device)
            ]
        )
        device_dims = [sum(t.dim for t in tabs) for tabs in per_device]
        # The dense (data-parallel) part runs only on devices that have
        # one (CPUs in the mixed scenario hold embeddings only).
        dense_ms = np.array(
            [s.dense_forward_ms + s.dense_backward_ms for s in self.specs]
        )

        ready = np.zeros(num_devices)
        iter_start = 0.0
        fwd_meas = bwd_meas = None
        for it in range(warmup_iterations + 1):
            iter_start = float(ready.max()) if it > 0 else 0.0
            fwd_end = ready + fwd_ms
            fwd_meas = self.measure_comm(device_dims, start_times_ms=fwd_end.tolist())
            dense_end = np.array(fwd_meas.completion_ms) + dense_ms
            bwd_meas = self.measure_comm(
                device_dims, start_times_ms=dense_end.tolist(), backward=True
            )
            ready = np.array(bwd_meas.completion_ms) + bwd_ms

        iteration_ms = float(ready.max()) - iter_start
        global_batch = num_devices * self.batch_size
        return PlanExecution(
            compute_costs_ms=tuple(float(c) for c in fwd_ms + bwd_ms),
            fwd_comm_costs_ms=tuple(float(c) for c in fwd_meas.costs_ms),
            bwd_comm_costs_ms=tuple(float(c) for c in bwd_meas.costs_ms),
            iteration_ms=iteration_ms,
            throughput_samples_per_s=global_batch / iteration_ms * 1000.0,
        )

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(
                f"device index {device} out of range [0, {self.num_devices})"
            )

    def _check_placement_shape(
        self, per_device: Sequence[Sequence[TableConfig]]
    ) -> None:
        if len(per_device) != self.num_devices:
            raise ValueError(
                f"placement has {len(per_device)} devices, cluster has "
                f"{self.num_devices}"
            )
