"""The simulated cluster facade: what the rest of the repo calls "GPUs".

Everything outside :mod:`repro.hardware` interacts with hardware through
this class, which mirrors the roles the real testbed plays in the paper:

- **micro-benchmarking** for cost-model training data
  (:meth:`SimulatedCluster.measure_compute`,
  :meth:`SimulatedCluster.measure_comm` — the PARAM-benchmark stand-in),
- **plan evaluation** (:meth:`SimulatedCluster.evaluate_plan` — "run the
  embedding operations on GPUs ... and use a timer", Section 4), and
- **memory feasibility** (:meth:`SimulatedCluster.plan_fits`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import ClusterConfig
from repro.data.table import TableConfig
from repro.hardware.comm import AllToAllModel, CommMeasurement
from repro.hardware.device import DeviceSpec
from repro.hardware.kernel import EmbeddingKernelModel
from repro.hardware.memory import MemoryModel
from repro.hardware.trace import IterationTrace, TraceSimulator

__all__ = ["PlanExecution", "SimulatedCluster"]


@dataclass(frozen=True)
class PlanExecution:
    """Result of executing a sharding plan on the simulated cluster.

    Attributes:
        compute_costs_ms: per-device embedding forward+backward time.
        fwd_comm_costs_ms / bwd_comm_costs_ms: per-device measured
            all-to-all latencies (waiting included), steady state.
        iteration_ms: wall-clock duration of a steady-state iteration.
        throughput_samples_per_s: end-to-end training throughput.
    """

    compute_costs_ms: tuple[float, ...]
    fwd_comm_costs_ms: tuple[float, ...]
    bwd_comm_costs_ms: tuple[float, ...]
    iteration_ms: float
    throughput_samples_per_s: float

    @property
    def device_costs_ms(self) -> tuple[float, ...]:
        """Per-device embedding cost: compute + fwd comm + bwd comm."""
        return tuple(
            c + f + b
            for c, f, b in zip(
                self.compute_costs_ms,
                self.fwd_comm_costs_ms,
                self.bwd_comm_costs_ms,
            )
        )

    @property
    def max_cost_ms(self) -> float:
        """The bottleneck device's embedding cost — Table 1's metric."""
        return max(self.device_costs_ms)

    @property
    def num_devices(self) -> int:
        return len(self.compute_costs_ms)


class SimulatedCluster:
    """A homogeneous multi-GPU training cluster (simulated).

    Args:
        config: device count, memory budget, batch size.
        spec: per-device calibration constants.
        noise_seed: measurement-noise seed (a different seed simulates a
            different physical machine).
        comm: optional collective-model override; anything with
            ``AllToAllModel``'s ``measure`` signature, e.g. a
            :class:`~repro.hardware.topology.HierarchicalAllToAllModel`
            for NVLink-island / RDMA-fabric production topologies.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        spec: DeviceSpec | None = None,
        noise_seed: int = 0,
        comm: AllToAllModel | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.spec = spec or DeviceSpec()
        self.noise_seed = noise_seed
        self.kernel = EmbeddingKernelModel(self.spec, noise_seed)
        self.comm = comm if comm is not None else AllToAllModel(self.spec, noise_seed)
        self.memory = MemoryModel(self.config.memory_bytes)
        self.tracer = TraceSimulator(
            self.spec, self.config.batch_size, noise_seed, comm=self.comm
        )

    @property
    def num_devices(self) -> int:
        return self.config.num_devices

    @property
    def batch_size(self) -> int:
        return self.config.batch_size

    # ------------------------------------------------------------------
    # micro-benchmarks (training-data collection)
    # ------------------------------------------------------------------

    def measure_compute(
        self, tables: Sequence[TableConfig], noisy: bool = True
    ) -> float:
        """Fused-kernel forward+backward latency of one table combination.

        The warm-up + median-of-repeats protocol of Appendix A is folded
        into the deterministic noise model (the median's residual variance
        is what ``noise_fraction`` represents).
        """
        return self.kernel.total_ms(list(tables), self.config.batch_size, noisy=noisy)

    def measure_comm(
        self,
        device_dims: Sequence[int],
        start_times_ms: Sequence[float] | None = None,
        backward: bool = False,
        noisy: bool = True,
    ) -> CommMeasurement:
        """All-to-all latency for given device dimensions and start skew."""
        return self.comm.measure(
            device_dims,
            self.config.batch_size,
            start_times_ms=start_times_ms,
            backward=backward,
            noisy=noisy,
        )

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def plan_fits(self, per_device: Sequence[Sequence[TableConfig]]) -> bool:
        """Whether every device of the placement fits the memory budget."""
        if len(per_device) != self.num_devices:
            raise ValueError(
                f"placement has {len(per_device)} devices, cluster has "
                f"{self.num_devices}"
            )
        return self.memory.placement_fits(per_device)

    # ------------------------------------------------------------------
    # plan execution (ground-truth evaluation)
    # ------------------------------------------------------------------

    def evaluate_plan(
        self,
        per_device: Sequence[Sequence[TableConfig]],
        warmup_iterations: int = 2,
    ) -> PlanExecution:
        """Execute a placement and measure steady-state per-device costs.

        Raises:
            OutOfMemoryError: if any device's table set exceeds the
                embedding memory budget (the paper's "-" outcome).
        """
        if len(per_device) != self.num_devices:
            raise ValueError(
                f"placement has {len(per_device)} devices, cluster has "
                f"{self.num_devices}"
            )
        self.memory.check_placement(per_device)
        trace: IterationTrace = self.tracer.steady_state(
            per_device, warmup_iterations=warmup_iterations
        )
        throughput = (
            self.num_devices * self.config.batch_size / trace.iteration_ms * 1000.0
        )
        return PlanExecution(
            compute_costs_ms=trace.compute_costs_ms,
            fwd_comm_costs_ms=trace.fwd_comm_costs_ms,
            bwd_comm_costs_ms=trace.bwd_comm_costs_ms,
            iteration_ms=trace.iteration_ms,
            throughput_samples_per_s=throughput,
        )
