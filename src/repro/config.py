"""Global configuration objects for the NeuroShard reproduction.

Every experiment in the paper is parameterized by a handful of knobs: the
number of GPUs, per-GPU memory budget, the table-dimension grid, the search
hyperparameters (N, K, L, M from Section 3.3) and the data-collection sizes
(Section 4, "Implementation details").  This module centralizes those knobs
in frozen dataclasses so an experiment is fully described by a config value
plus a seed.

All randomness in the repository flows through explicit
``numpy.random.Generator`` objects derived from integer seeds; no module
touches the global NumPy random state.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace
from typing import Any, Tuple

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "DIMENSION_GRID",
    "SearchConfig",
    "CollectionConfig",
    "TrainConfig",
    "ClusterConfig",
    "TaskConfig",
    "ExperimentConfig",
    "rng_from_seed",
    "spawn_rngs",
]

#: Seed used by every example / benchmark unless overridden.
DEFAULT_SEED = 2023

#: The table-dimension grid used throughout the paper: augmentation
#: dimensions, task dimension sampling and column-wise sharding all draw
#: from {4, 8, 16, 32, 64, 128} (Section 4, "Implementation details").
DIMENSION_GRID: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)


def rng_from_seed(seed: int | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator and returns it unchanged so that call
    sites can be agnostic about whether they received a seed or a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one integer seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams are
    statistically independent and stable across platforms.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


@dataclass(frozen=True)
class SearchConfig:
    """Hyperparameters of the online search (Section 3.3).

    Attributes:
        top_n: ``N`` — number of top-costly and top-largest candidate tables
            considered per beam-search expansion.
        beam_width: ``K`` — number of column-wise plans kept per iteration.
        max_steps: ``L`` — number of column-wise sharding steps (outer loop).
        grid_points: ``M`` — number of max-device-dimension values tried by
            the greedy grid search (inner loop).
        grid_end_factor: ``Me = grid_end_factor * Ms`` where ``Ms`` is the
            average device dimension.  The paper fixes this to 1.5.
        use_beam_search: disable to reproduce the "w/o beam search"
            ablation row of Table 3 (column-wise sharding skipped).
        use_grid_search: disable to reproduce "w/o greedy grid search"
            (the max-dimension constraint is dropped; pure greedy).
        use_cache: disable to reproduce "w/o caching".
        use_batch_scoring: score whole grid passes / beam frontiers as
            one batched NumPy forward pass (bit-identical results);
            disable to fall back to per-candidate sequential scoring
            (the "w/o batch scoring" ablation, also the route for cost
            models whose featurizer lacks the feature bank).
    """

    top_n: int = 10
    beam_width: int = 3
    max_steps: int = 10
    grid_points: int = 11
    grid_end_factor: float = 1.5
    use_beam_search: bool = True
    use_grid_search: bool = True
    use_cache: bool = True
    use_batch_scoring: bool = True

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {self.top_n}")
        if self.beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {self.max_steps}")
        if self.grid_points < 1:
            raise ValueError(f"grid_points must be >= 1, got {self.grid_points}")
        if self.grid_end_factor < 1.0:
            raise ValueError(
                f"grid_end_factor must be >= 1.0, got {self.grid_end_factor}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the knobs (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchConfig":
        """Build a validated config from a plain mapping.

        Unlike ``SearchConfig(**data)`` this rejects unknown keys with a
        readable error instead of a ``TypeError``; range checks run in
        ``__post_init__`` either way, so an out-of-range knob arriving
        from JSON fails as loudly as one passed to the constructor.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SearchConfig knobs {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))

    @classmethod
    def coerce(cls, value: "SearchConfig | Mapping[str, Any]") -> "SearchConfig":
        """Normalize a ``search`` argument to a validated ``SearchConfig``.

        Every surface that accepts search knobs as data — engine options,
        HTTP request payloads, stored profiles, CLI-built dicts — funnels
        through here, so a mapping is always re-validated by the
        constructor instead of riding along as an unchecked dict.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(
            "search must be a SearchConfig or a mapping of knobs, got "
            f"{type(value).__name__}"
        )

    def with_ablation(self, name: str) -> "SearchConfig":
        """Return a copy with one mechanism disabled (Table 3 rows)."""
        if name == "beam_search":
            return replace(self, use_beam_search=False)
        if name == "grid_search":
            return replace(self, use_grid_search=False)
        if name == "caching":
            return replace(self, use_cache=False)
        if name == "batch_scoring":
            return replace(self, use_batch_scoring=False)
        raise ValueError(
            f"unknown ablation {name!r}; expected one of "
            "'beam_search', 'grid_search', 'caching', 'batch_scoring'"
        )


@dataclass(frozen=True)
class CollectionConfig:
    """Micro-benchmark data-collection parameters (Sections 3.1 and 4).

    The paper collects 100K samples per cost model; the default here is much
    smaller so tests and examples run in seconds.  Figure 8 shows ~100
    samples already yield near-optimal sharding, which our benchmarks
    confirm.

    Attributes:
        num_compute_samples: table combinations benchmarked for the
            computation cost model.
        num_comm_samples: table placements benchmarked for the
            communication cost models.
        min_tables: minimum tables per combination (paper: 1).
        max_tables: maximum tables per combination (paper: 15).
        min_placement_tables / max_placement_tables: table-count range for
            placement generation (paper: 10-60 for 4 GPUs, 20-120 for 8).
        max_start_ms: communication starting timestamps are sampled
            uniformly in [0, max_start_ms] (paper: 20 ms).
        augment_dims: augmentation dimension grid (Algorithm 3).
    """

    num_compute_samples: int = 2000
    num_comm_samples: int = 2000
    min_tables: int = 1
    max_tables: int = 15
    min_placement_tables: int = 10
    max_placement_tables: int = 60
    max_start_ms: float = 20.0
    augment_dims: Tuple[int, ...] = DIMENSION_GRID

    def __post_init__(self) -> None:
        if not 1 <= self.min_tables <= self.max_tables:
            raise ValueError(
                "need 1 <= min_tables <= max_tables, got "
                f"{self.min_tables}..{self.max_tables}"
            )
        if not 1 <= self.min_placement_tables <= self.max_placement_tables:
            raise ValueError(
                "need 1 <= min_placement_tables <= max_placement_tables, got "
                f"{self.min_placement_tables}..{self.max_placement_tables}"
            )
        if self.max_start_ms < 0:
            raise ValueError(f"max_start_ms must be >= 0, got {self.max_start_ms}")
        if len(self.augment_dims) == 0:
            raise ValueError("augment_dims must not be empty")
        for d in self.augment_dims:
            if d < 4 or d % 4 != 0:
                raise ValueError(
                    f"augment dimension {d} invalid: FBGEMM requires dims "
                    "divisible by 4 (Section 3.3)"
                )

    def for_devices(self, num_devices: int) -> "CollectionConfig":
        """Scale the placement table-count range with the device count.

        The paper uses 10-60 tables for 4 GPUs and 20-120 for 8 GPUs, i.e.
        the range scales linearly with ``num_devices / 4``.
        """
        scale = num_devices / 4.0
        return replace(
            self,
            min_placement_tables=max(1, int(round(10 * scale))),
            max_placement_tables=max(1, int(round(60 * scale))),
        )


@dataclass(frozen=True)
class TrainConfig:
    """Cost-model training hyperparameters (Appendix F).

    Paper values: batch size 512, Adam lr 1e-3, 1000 epochs, 80/10/10
    train/valid/test split, keep the best-validation checkpoint.  Defaults
    are reduced for fast iteration; benchmarks override where fidelity
    matters.
    """

    batch_size: int = 256
    learning_rate: float = 1e-3
    epochs: int = 60
    train_frac: float = 0.8
    valid_frac: float = 0.1
    weight_decay: float = 0.0
    cosine_decay: bool = True
    log_every: int = 0  # 0 disables epoch logging

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if not 0 < self.train_frac < 1 or not 0 < self.valid_frac < 1:
            raise ValueError("train_frac and valid_frac must be in (0, 1)")
        if self.train_frac + self.valid_frac >= 1:
            raise ValueError(
                "train_frac + valid_frac must leave room for a test split, got "
                f"{self.train_frac} + {self.valid_frac}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Simulated training cluster shape.

    Attributes:
        num_devices: number of GPUs tables are sharded onto.
        memory_bytes: per-device memory budget for embedding tables.  The
            benchmark tasks use 4 GB (Section 4, "Datasets").
        batch_size: per-iteration mini-batch size; determines all-to-all
            message sizes (Section 2.2).
    """

    num_devices: int = 4
    memory_bytes: int = 4 * 1024**3
    batch_size: int = 65536

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0, got {self.memory_bytes}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


@dataclass(frozen=True)
class TaskConfig:
    """Sharding-task sampling parameters (paper Table 5).

    A task draws ``num_tables`` uniformly from
    [min_tables, max_tables] out of the table pool, then assigns each table
    a dimension drawn uniformly from ``dim_choices``.
    """

    num_devices: int = 4
    max_dim: int = 128
    min_tables: int = 10
    max_tables: int = 60
    memory_bytes: int = 4 * 1024**3

    def __post_init__(self) -> None:
        if self.max_dim not in DIMENSION_GRID:
            raise ValueError(
                f"max_dim {self.max_dim} not in dimension grid {DIMENSION_GRID}"
            )
        if not 1 <= self.min_tables <= self.max_tables:
            raise ValueError(
                "need 1 <= min_tables <= max_tables, got "
                f"{self.min_tables}..{self.max_tables}"
            )

    @property
    def dim_choices(self) -> Tuple[int, ...]:
        """Dimensions a task samples from: {4, 8, ..., max_dim}.

        Mirrors the paper's {4, 8, ..., 2^j} with 2^j = max_dim, except that
        (as in the paper's Table 5) the grid skips 32 when max_dim is 64 or
        128 — i.e. the published rows are "4, 8, 16, 64" and
        "4, 8, 16, 64, 128".  We reproduce the published rows exactly.
        """
        if self.max_dim in (64, 128):
            return tuple(d for d in DIMENSION_GRID if d <= self.max_dim and d != 32)
        return tuple(d for d in DIMENSION_GRID if d <= self.max_dim)

    @classmethod
    def paper_grid(cls) -> list["TaskConfig"]:
        """The 12 task settings of paper Table 5 (4 & 8 GPUs × 6 dims)."""
        grid = []
        for num_devices in (4, 8):
            lo, hi = (10, 60) if num_devices == 4 else (20, 120)
            for max_dim in DIMENSION_GRID:
                grid.append(
                    cls(
                        num_devices=num_devices,
                        max_dim=max_dim,
                        min_tables=lo,
                        max_tables=hi,
                    )
                )
        return grid

    def cluster(self, batch_size: int = 65536) -> ClusterConfig:
        """Cluster config matching this task's device count and memory."""
        return ClusterConfig(
            num_devices=self.num_devices,
            memory_bytes=self.memory_bytes,
            batch_size=batch_size,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of everything an end-to-end experiment needs."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    collection: CollectionConfig = field(default_factory=CollectionConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    seed: int = DEFAULT_SEED
