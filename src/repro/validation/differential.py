"""Cross-strategy differential validation: one contract, every algorithm.

Eighteen strategies answer the same :class:`~repro.api.schema
.ShardingRequest`; the registry guarantees they share a wire format, but
nothing guarantees they share *semantics* — a baseline could return an
assignment that silently overflows a device, an extension could emit a
column plan its own table list cannot apply.  :func:`differential_matrix`
closes that gap: it runs every strategy over a seeded task matrix and
holds each answer to the :class:`~repro.validation.invariants
.PlanValidator` invariants, so "registered" comes to mean
"validator-clean on the shared contract", not just "importable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.api.schema import ShardingRequest
from repro.validation.invariants import PlanValidator

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.api.engine import ShardingEngine
    from repro.data.tasks import ShardingTask

__all__ = ["DifferentialCell", "DifferentialReport", "differential_matrix"]


@dataclass(frozen=True)
class DifferentialCell:
    """One (strategy, task) outcome of the differential matrix.

    Attributes:
        strategy: registry strategy name.
        task_id: the task answered.
        feasible: the strategy produced a plan.
        error: the strategy's error message, when it raised.
        codes: validator violation codes of the produced plan.
    """

    strategy: str
    task_id: int
    feasible: bool
    error: str | None = None
    codes: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Feasible, error-free, and validator-clean."""
        return self.feasible and self.error is None and not self.codes

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the cell."""
        return {
            "strategy": self.strategy,
            "task_id": self.task_id,
            "feasible": self.feasible,
            "error": self.error,
            "codes": list(self.codes),
        }


@dataclass(frozen=True)
class DifferentialReport:
    """All cells of one differential run.

    Attributes:
        cells: one per (strategy, task) pair, strategy-major order.
    """

    cells: tuple[DifferentialCell, ...]

    @property
    def clean(self) -> bool:
        """Whether every strategy answered every task validator-clean."""
        return all(cell.clean for cell in self.cells)

    @property
    def failures(self) -> tuple[DifferentialCell, ...]:
        """The cells that are not clean."""
        return tuple(cell for cell in self.cells if not cell.clean)

    def summary(self) -> dict[str, Any]:
        """Aggregate counts for logs and CI output."""
        strategies = sorted({c.strategy for c in self.cells})
        return {
            "strategies": len(strategies),
            "tasks": len({c.task_id for c in self.cells}),
            "cells": len(self.cells),
            "clean": sum(1 for c in self.cells if c.clean),
            "failing_strategies": sorted(
                {c.strategy for c in self.failures}
            ),
        }

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view: summary plus every cell."""
        return {
            "summary": self.summary(),
            "cells": [c.to_dict() for c in self.cells],
        }


def differential_matrix(
    engine: "ShardingEngine",
    tasks: Sequence["ShardingTask"],
    strategies: Sequence[str] | None = None,
    options: Mapping[str, Mapping[str, Any]] | None = None,
    validator: PlanValidator | None = None,
) -> DifferentialReport:
    """Run every strategy over every task and validate every plan.

    Args:
        engine: the serving engine (its bundle scores and, for the core
            strategies, drives the searches).
        tasks: the seeded task matrix; choose budgets generous enough
            that *every* strategy — including the random baseline — can
            place every task, so an infeasible cell is a genuine defect.
        strategies: registry names to sweep (default: everything the
            engine can serve).
        options: per-strategy request options, e.g. a pre-fitted policy
            for ``guided`` (``{"guided": {"policy": policy}}``).
        validator: the invariant checker (a default-configured
            :class:`~repro.validation.invariants.PlanValidator` when
            omitted).

    Returns:
        A :class:`DifferentialReport`; ``report.clean`` is the
        all-strategies-pass acceptance gate.
    """
    validator = validator or PlanValidator()
    names = list(strategies if strategies is not None else engine.available())
    options = dict(options or {})
    cells: list[DifferentialCell] = []
    for name in names:
        for task in tasks:
            response = engine.shard(
                ShardingRequest(
                    task,
                    strategy=name,
                    options=dict(options.get(name) or {}),
                    request_id=f"differential-{name}-{task.task_id}",
                )
            )
            codes: tuple[str, ...] = ()
            if response.feasible and response.plan is not None:
                codes = validator.validate_response(response, task).error_codes
            cells.append(
                DifferentialCell(
                    strategy=response.strategy,
                    task_id=task.task_id,
                    feasible=response.feasible,
                    error=response.error,
                    codes=codes,
                )
            )
    return DifferentialReport(tuple(cells))
