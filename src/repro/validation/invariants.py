"""Structural invariants and lifecycle conservation laws of sharding plans.

The service layer mutates long-lived state — applied plans, append-only
record histories, incremental reshards — and this module is the
*independent checking layer* over all of it: :class:`PlanValidator`
re-derives every invariant from first principles (the plan, the table
list, the memory model) rather than trusting the code that produced the
result.  Verifiability-first systems work argues production ML
infrastructure needs exactly this separation: the component that checks
a result must not share the code path that computed it.

Three families of invariants:

**Structural** (one plan, one table list):

- ``plan/device-count`` — the plan targets the deployment's device count;
- ``plan/column-plan`` — the split sequence is legal over the base tables
  (every step indexes an existing table, no split below the minimum
  dimension);
- ``plan/coverage`` — the assignment covers the column-sharded table list
  exactly (no shard unassigned, no phantom assignment);
- ``plan/device-range`` — every assignment entry names a real device;
- ``plan/memory`` — per-device footprint (weights + row-wise optimizer
  state) fits the budget.

**Record coherence** (one :class:`~repro.api.service.PlanRecord`):

- ``record/version`` — versions are 1-based;
- ``record/plan-presence`` — feasible records carry a plan, infeasible
  records do not.

**Conservation laws** (lifecycle transitions):

- ``diff/conservation`` — a :class:`~repro.api.diff.PlanDiff` between two
  plans accounts for every shard exactly once as kept, moved, created or
  removed, and the byte totals balance
  (``old - removed + created == new``);
- ``diff/duplicate-move`` — no shard is moved twice, and every move
  references a shard the old plan actually had;
- ``diff/mismatch`` — a recorded diff matches a fresh recomputation from
  the two plans it claims to relate;
- ``transition/delta`` — a reshard record's workload delta deserializes;
- ``transition/stats-unknown-table`` — stats updates reference tables the
  old workload actually served;
- ``transition/stats-zero-move`` — a pure ``update_stats`` reshard that
  holds the placement moves zero bytes (the update rewrites statistics in
  place; only voluntary rebalancing may move state);
- ``rollback/byte-identity`` — a restored plan record is byte-identical
  to its stored serialization (rollback replays history, never rewrites
  it);
- ``state/applied-version`` — the applied stack references only stored,
  feasible records.

Every check runs is recorded in :attr:`ValidationReport.checks`; every
violation is a :class:`ValidationError` with a stable ``code`` from the
list above, so tests (and operators) can assert the *exact* failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.api.diff import PlanDiff
from repro.api.reshard import WorkloadDelta, apply_stats_updates
from repro.api.schema import SCHEMA_VERSION, check_version
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (service imports us)
    from repro.api.schema import ShardingResponse
    from repro.api.service import PlanRecord
    from repro.data.tasks import ShardingTask

__all__ = [
    "PlanValidationError",
    "PlanValidator",
    "ValidationError",
    "ValidationReport",
]


@dataclass(frozen=True)
class ValidationError:
    """One invariant violation.

    Attributes:
        code: stable machine-readable identifier (``"plan/memory"``,
            ``"diff/conservation"``, ...) — the contract negative tests
            assert against.
        message: human-readable diagnosis.
        context: JSON-safe details (device id, byte counts, ...).
    """

    code: str
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the violation."""
        return {
            "code": self.code,
            "message": self.message,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ValidationError":
        """Inverse of :meth:`to_dict`."""
        return cls(
            code=str(data["code"]),
            message=str(data.get("message", "")),
            context=dict(data.get("context", {})),
        )


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation pass.

    Attributes:
        subject: what was validated (``"prod/v3"``, ``"history:prod"``).
        checks: codes of the invariant checks that actually ran (a check
            that could not run — e.g. a memory check on an infeasible
            record without a plan — is absent, not silently passed).
        errors: the violations found (empty = all checks passed).
        code_fingerprint: provenance stamp — the fingerprint of the
            source tree that ran the checks (see
            :func:`repro.provenance.chain.stamp_fingerprint`); empty for
            unstamped reports.
        validated_digest: provenance stamp — the canonical digest of the
            record content the checks ran against (see
            :func:`repro.provenance.chain.record_digest`); empty for
            unstamped reports.
    """

    subject: str
    checks: tuple[str, ...] = ()
    errors: tuple[ValidationError, ...] = ()
    code_fingerprint: str = ""
    validated_digest: str = ""

    @property
    def ok(self) -> bool:
        """Whether every executed check passed."""
        return not self.errors

    @property
    def error_codes(self) -> tuple[str, ...]:
        """The violation codes, in discovery order."""
        return tuple(e.code for e in self.errors)

    def merged(self, other: "ValidationReport") -> "ValidationReport":
        """This report plus another's checks and errors (same subject)."""
        return replace(
            self,
            checks=self.checks + other.checks,
            errors=self.errors + other.errors,
        )

    def raise_if_failed(self) -> None:
        """Raise :class:`PlanValidationError` when any check failed."""
        if not self.ok:
            raise PlanValidationError(self)

    def stamped(self, fingerprint: str, digest: str) -> "ValidationReport":
        """This report carrying provenance stamps.

        ``fingerprint`` names the source tree that ran the checks,
        ``digest`` the canonical record content they ran against — the
        offline auditor re-derives both and flags disagreement.
        """
        return replace(
            self, code_fingerprint=fingerprint, validated_digest=digest
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary.

        The provenance stamps are emitted only when present, so reports
        written before the stamps existed serialize byte-identically to
        how they always did.
        """
        payload = {
            "schema_version": SCHEMA_VERSION,
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks),
            "errors": [e.to_dict() for e in self.errors],
        }
        if self.code_fingerprint:
            payload["code_fingerprint"] = self.code_fingerprint
        if self.validated_digest:
            payload["validated_digest"] = self.validated_digest
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ValidationReport":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        check_version(data, "validation report")
        return cls(
            subject=str(data.get("subject", "")),
            checks=tuple(str(c) for c in data.get("checks", ())),
            errors=tuple(
                ValidationError.from_dict(e) for e in data.get("errors", ())
            ),
            code_fingerprint=str(data.get("code_fingerprint", "")),
            validated_digest=str(data.get("validated_digest", "")),
        )


class PlanValidationError(ValueError):
    """A plan or lifecycle transition violated an invariant.

    Raised by :class:`~repro.api.service.ShardingService` (with
    ``validate=True``) before an invalid plan can go live; carries the
    full :attr:`report`.
    """

    def __init__(self, report: ValidationReport) -> None:
        self.report = report
        detail = "; ".join(
            f"{e.code}: {e.message}" for e in report.errors
        )
        super().__init__(
            f"validation of {report.subject!r} failed "
            f"({len(report.errors)} violation(s)): {detail}"
        )


class _Collector:
    """Accumulates executed checks and violations for one report."""

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self.checks: list[str] = []
        self.errors: list[ValidationError] = []

    def ran(self, code: str) -> None:
        self.checks.append(code)

    def fail(self, code: str, message: str, **context: Any) -> None:
        self.errors.append(ValidationError(code, message, dict(context)))

    def report(self) -> ValidationReport:
        return ValidationReport(
            subject=self.subject,
            checks=tuple(self.checks),
            errors=tuple(self.errors),
        )


def _shard_entries(
    plan: ShardingPlan, base_tables: Sequence[TableConfig]
) -> list[tuple[str, int, int, int]]:
    """``(uid, occurrence, device, size_bytes)`` per shard of a plan."""
    return plan.shard_identities(base_tables)


class PlanValidator:
    """Re-derive and check every plan/lifecycle invariant independently.

    Stateless and thread-safe; one instance can serve a whole
    :class:`~repro.api.service.ShardingService`.

    Args:
        optimizer_rowwise_bytes: optimizer state bytes per table row used
            by the memory-feasibility check (must match the deployment's
            :class:`~repro.hardware.memory.MemoryModel` contract; 4 =
            row-wise AdaGrad's fp32 accumulator, the search's default).
    """

    #: Every invariant code this validator can emit.
    ALL_CODES = (
        "plan/device-count",
        "plan/column-plan",
        "plan/coverage",
        "plan/device-range",
        "plan/memory",
        "record/version",
        "record/plan-presence",
        "diff/conservation",
        "diff/duplicate-move",
        "diff/mismatch",
        "transition/delta",
        "transition/stats-unknown-table",
        "transition/stats-zero-move",
        "rollback/byte-identity",
        "state/applied-version",
    )

    def __init__(self, optimizer_rowwise_bytes: int = 4) -> None:
        self.optimizer_rowwise_bytes = optimizer_rowwise_bytes

    # ------------------------------------------------------------------
    # structural invariants
    # ------------------------------------------------------------------

    def validate_plan(
        self,
        plan: ShardingPlan,
        base_tables: Sequence[TableConfig],
        *,
        num_devices: int,
        memory_bytes: int,
        subject: str = "plan",
    ) -> ValidationReport:
        """Structural invariants of one plan over its base table list."""
        out = _Collector(subject)
        self._check_plan(out, plan, base_tables, num_devices, memory_bytes)
        return out.report()

    def _check_plan(
        self,
        out: _Collector,
        plan: ShardingPlan,
        base_tables: Sequence[TableConfig],
        num_devices: int,
        memory_bytes: int,
    ) -> None:
        out.ran("plan/device-count")
        if plan.num_devices != num_devices:
            out.fail(
                "plan/device-count",
                f"plan targets {plan.num_devices} devices, deployment has "
                f"{num_devices}",
                plan_devices=plan.num_devices,
                expected_devices=num_devices,
            )

        out.ran("plan/column-plan")
        try:
            sharded = apply_column_plan(base_tables, plan.column_plan)
        except (IndexError, ValueError) as exc:
            out.fail("plan/column-plan", str(exc))
            return  # nothing downstream is well-defined

        out.ran("plan/coverage")
        if len(sharded) != len(plan.assignment):
            out.fail(
                "plan/coverage",
                f"column plan produces {len(sharded)} shards but the "
                f"assignment covers {len(plan.assignment)}",
                num_shards=len(sharded),
                num_assigned=len(plan.assignment),
            )
            return  # alignment-dependent checks are meaningless

        out.ran("plan/device-range")
        bad = [d for d in plan.assignment if not 0 <= d < plan.num_devices]
        if bad:
            out.fail(
                "plan/device-range",
                f"assignment targets devices {sorted(set(bad))}, valid "
                f"range is 0..{plan.num_devices - 1}",
                devices=sorted(set(bad)),
            )
            return

        out.ran("plan/memory")
        memory = MemoryModel(
            memory_bytes, optimizer_rowwise_bytes=self.optimizer_rowwise_bytes
        )
        used = [0] * plan.num_devices
        for table, device in zip(sharded, plan.assignment):
            used[device] += memory.table_bytes(table)
        for device, device_used in enumerate(used):
            if device_used > memory_bytes:
                out.fail(
                    "plan/memory",
                    f"device {device} needs {device_used} B, budget is "
                    f"{memory_bytes} B",
                    device=device,
                    used_bytes=device_used,
                    memory_bytes=memory_bytes,
                )

    # ------------------------------------------------------------------
    # record coherence
    # ------------------------------------------------------------------

    def validate_record(
        self,
        record: "PlanRecord",
        subject: str | None = None,
        memory_bytes: int | None = None,
    ) -> ValidationReport:
        """Record coherence plus structural invariants of its plan.

        Args:
            record: the plan record under audit.
            subject: report label.
            memory_bytes: the per-device budget the plan must fit *now*.
                Defaults to the record's creation-time snapshot; gates
                that put a plan live (apply/rollback) must pass the
                deployment's current budget instead — capacity lost to a
                later ``reshard(memory_bytes=...)`` makes an old plan's
                own snapshot a stale contract.
        """
        out = _Collector(subject or f"record:v{record.version}")

        out.ran("record/version")
        if record.version < 1:
            out.fail(
                "record/version",
                f"record versions are 1-based, got {record.version}",
                version=record.version,
            )

        out.ran("record/plan-presence")
        if record.feasible and record.plan is None:
            out.fail(
                "record/plan-presence",
                "record claims feasibility but carries no plan",
            )
        elif not record.feasible and record.plan is not None:
            out.fail(
                "record/plan-presence",
                "record claims infeasibility but carries a plan",
            )

        if record.feasible and record.plan is not None:
            self._check_plan(
                out,
                record.plan,
                record.base_tables,
                record.num_devices,
                record.memory_bytes if memory_bytes is None else memory_bytes,
            )
        return out.report()

    def validate_response(
        self, response: "ShardingResponse", task: "ShardingTask"
    ) -> ValidationReport:
        """Structural invariants of an engine response's plan for a task."""
        out = _Collector(f"response:{response.strategy}")
        out.ran("record/plan-presence")
        if response.feasible and response.plan is None:
            out.fail(
                "record/plan-presence",
                "response claims feasibility but carries no plan",
            )
        if response.feasible and response.plan is not None:
            self._check_plan(
                out,
                response.plan,
                response.plan_tables(task),
                task.num_devices,
                task.memory_bytes,
            )
        return out.report()

    # ------------------------------------------------------------------
    # conservation laws
    # ------------------------------------------------------------------

    def validate_diff(
        self,
        diff: PlanDiff,
        old_plan: ShardingPlan,
        old_tables: Sequence[TableConfig],
        new_plan: ShardingPlan,
        new_tables: Sequence[TableConfig],
        subject: str = "diff",
    ) -> ValidationReport:
        """Conservation accounting of a diff against the plans it relates.

        Every old shard must be accounted exactly once as kept, moved or
        removed; every new shard as kept, moved or created; the byte
        totals must balance.  The accounting is recomputed from the two
        plans' shard identities — not from the diff algorithm — so a
        corrupted or stale diff cannot vouch for itself.
        """
        out = _Collector(subject)
        self._check_diff(out, diff, old_plan, old_tables, new_plan, new_tables)
        return out.report()

    def _check_diff(
        self,
        out: _Collector,
        diff: PlanDiff,
        old_plan: ShardingPlan,
        old_tables: Sequence[TableConfig],
        new_plan: ShardingPlan,
        new_tables: Sequence[TableConfig],
    ) -> None:
        try:
            old_entries = _shard_entries(old_plan, old_tables)
            new_entries = _shard_entries(new_plan, new_tables)
        except (IndexError, ValueError):
            return  # structural checks report this; accounting undefined

        out.ran("diff/conservation")
        old_bytes = sum(size for _, _, _, size in old_entries)
        new_bytes = sum(size for _, _, _, size in new_entries)
        kept_old = len(old_entries) - len(diff.removed)
        kept_new = len(new_entries) - len(diff.created)
        if kept_old != kept_new:
            out.fail(
                "diff/conservation",
                f"diff keeps {kept_old} of {len(old_entries)} old shards "
                f"but {kept_new} of {len(new_entries)} new shards",
                old_shards=len(old_entries),
                new_shards=len(new_entries),
                removed=len(diff.removed),
                created=len(diff.created),
            )
        if old_bytes - diff.removed_bytes + diff.created_bytes != new_bytes:
            out.fail(
                "diff/conservation",
                f"byte totals do not balance: {old_bytes} - "
                f"{diff.removed_bytes} (removed) + {diff.created_bytes} "
                f"(created) != {new_bytes}",
                old_bytes=old_bytes,
                new_bytes=new_bytes,
                removed_bytes=diff.removed_bytes,
                created_bytes=diff.created_bytes,
            )

        out.ran("diff/duplicate-move")
        old_keys = {(uid, occ) for uid, occ, _, _ in old_entries}
        seen: set[tuple[str, int]] = set()
        for move in diff.moves:
            key = (move.uid, move.occurrence)
            if key in seen:
                out.fail(
                    "diff/duplicate-move",
                    f"shard {move.uid} occurrence {move.occurrence} is "
                    "moved more than once",
                    uid=move.uid,
                    occurrence=move.occurrence,
                )
            seen.add(key)
            if key not in old_keys:
                out.fail(
                    "diff/duplicate-move",
                    f"move references shard {move.uid} occurrence "
                    f"{move.occurrence} which the old plan does not have",
                    uid=move.uid,
                    occurrence=move.occurrence,
                )

    def validate_transition(
        self, old: "PlanRecord", new: "PlanRecord"
    ) -> ValidationReport:
        """Conservation laws of one applied-plan transition.

        ``old`` is the record that was live when ``new`` goes live.  The
        recorded diff is held to account only when ``new`` declares the
        base it was diffed against (``metadata["base_version"]``) and it
        matches ``old`` — applying an arbitrary historical version is
        legal and carries no diff contract against the interim plan.
        """
        out = _Collector(f"transition:v{old.version}->v{new.version}")
        if old.plan is None or new.plan is None:
            return out.report()

        base_version = new.metadata.get("base_version")
        try:
            anchored = (
                base_version is not None and int(base_version) == old.version
            )
        except (TypeError, ValueError):
            # Corrupted anchor metadata is a finding, not a crash — the
            # validator must survive exactly the data it exists to audit.
            out.ran("transition/delta")
            out.fail(
                "transition/delta",
                f"metadata base_version {base_version!r} is not an integer",
            )
            anchored = False

        delta: WorkloadDelta | None = None
        delta_data = new.metadata.get("delta")
        if anchored and delta_data is not None:
            out.ran("transition/delta")
            try:
                delta = WorkloadDelta.from_dict(delta_data)
            except (ValueError, KeyError, TypeError) as exc:
                out.fail(
                    "transition/delta",
                    f"recorded workload delta does not deserialize: {exc}",
                )

        old_base = old.base_tables
        if delta is not None and delta.update_stats:
            out.ran("transition/stats-unknown-table")
            try:
                old_base = apply_stats_updates(old_base, delta.update_stats)
            except ValueError as exc:
                out.fail("transition/stats-unknown-table", str(exc))
                return out.report()

        recomputed = PlanDiff.between(
            old.plan, old_base, new.plan, new.base_tables
        )
        # The production diff algorithm must satisfy conservation on
        # every transition, anchored or not.
        self._check_diff(
            out, recomputed, old.plan, old_base, new.plan, new.base_tables
        )

        if anchored and new.diff is not None:
            self._check_diff(
                out, new.diff, old.plan, old_base, new.plan, new.base_tables
            )
            out.ran("diff/mismatch")
            recorded = new.diff
            mismatches = {
                name: (got, want)
                for name, got, want in (
                    ("moves", len(recorded.moves), len(recomputed.moves)),
                    ("created", len(recorded.created), len(recomputed.created)),
                    ("removed", len(recorded.removed), len(recomputed.removed)),
                    ("moved_bytes", recorded.moved_bytes, recomputed.moved_bytes),
                    (
                        "created_bytes",
                        recorded.created_bytes,
                        recomputed.created_bytes,
                    ),
                    (
                        "removed_bytes",
                        recorded.removed_bytes,
                        recomputed.removed_bytes,
                    ),
                )
                if got != want
            }
            if mismatches:
                out.fail(
                    "diff/mismatch",
                    "recorded diff disagrees with recomputation: "
                    + ", ".join(
                        f"{k} {got} != {want}"
                        for k, (got, want) in mismatches.items()
                    ),
                    **{k: list(v) for k, v in mismatches.items()},
                )

        if (
            anchored
            and delta is not None
            and delta.update_stats
            and not delta.add_tables
            and not delta.remove_table_ids
            and new.diff is not None
        ):
            out.ran("transition/stats-zero-move")
            # Occurrence included: uid-equal shards swapping devices is
            # a genuine placement change (two real moves), not a hold.
            old_placement = sorted(
                (uid, occurrence, device)
                for uid, occurrence, device, _ in _shard_entries(
                    old.plan, old_base
                )
            )
            new_placement = sorted(
                (uid, occurrence, device)
                for uid, occurrence, device, _ in _shard_entries(
                    new.plan, new.base_tables
                )
            )
            if old_placement == new_placement and new.diff.num_changes:
                out.fail(
                    "transition/stats-zero-move",
                    "pure stats update holds the placement but the "
                    f"recorded diff claims {new.diff.num_changes} change(s) "
                    f"({new.diff.moved_bytes} moved bytes) — a statistics "
                    "rewrite must move zero bytes",
                    num_changes=new.diff.num_changes,
                    moved_bytes=new.diff.moved_bytes,
                )
        return out.report()

    def validate_rollback(
        self,
        record: "PlanRecord",
        stored: Mapping[str, Any] | None = None,
    ) -> ValidationReport:
        """Byte-identity of a restored record (rollback replays history).

        Checks that the record's serialization round-trips to an equal
        record and — when its stored form is supplied — that memory and
        disk agree byte-for-byte.
        """
        out = _Collector(f"rollback:v{record.version}")
        out.ran("rollback/byte-identity")
        payload = record.to_dict()
        from repro.api.service import PlanRecord as _PlanRecord

        # Identity is checked at the serialized level: the wire format
        # is the contract (non-finite costs legitimately collapse to
        # ``None`` there, so object-level comparison would be too
        # strict for nan-scored plans).
        try:
            reloaded = _PlanRecord.from_dict(payload).to_dict()
        except (ValueError, KeyError, TypeError) as exc:
            reloaded = {"unreadable": str(exc)}
        if reloaded != payload:
            out.fail(
                "rollback/byte-identity",
                f"record v{record.version} does not survive its own "
                "serialization round-trip",
                version=record.version,
            )
        if stored is not None:
            normalized = dict(stored)
            # Records written before the validation layer existed lack
            # the (optional, None-defaulted) 'validation' key; records
            # written before the provenance chain lack 'provenance'.
            # Absence is not rewriting.
            normalized.setdefault("validation", None)
            normalized.setdefault("provenance", None)
            if normalized != payload:
                out.fail(
                    "rollback/byte-identity",
                    f"record v{record.version} differs from its stored "
                    "serialization — history was rewritten",
                    version=record.version,
                )
        return out.report()

    # ------------------------------------------------------------------
    # whole-deployment validation
    # ------------------------------------------------------------------

    def validate_history(
        self,
        records: Sequence["PlanRecord"],
        applied_stack: Sequence[int],
        stored: Mapping[int, Mapping[str, Any]] | None = None,
        subject: str = "history",
        memory_bytes: int | None = None,
    ) -> ValidationReport:
        """Every record, every applied transition, the stack, the store.

        Args:
            records: a deployment's plan records (any order).
            applied_stack: the apply/rollback stack (oldest first).
            stored: raw stored serializations by version, when the
                deployment is store-backed — each in-memory record must
                match its stored form byte-for-byte.
            subject: report label.
            memory_bytes: the deployment's *current* per-device budget.
                When given, the applied (top-of-stack) record — the plan
                serving traffic — is held to it instead of its own
                creation-time snapshot; historical records keep theirs.
        """
        out = _Collector(subject)
        by_version = {r.version: r for r in records}
        applied_version = applied_stack[-1] if applied_stack else None

        report = out.report()
        for record in sorted(records, key=lambda r: r.version):
            report = report.merged(
                self.validate_record(
                    record,
                    memory_bytes=(
                        memory_bytes
                        if record.version == applied_version
                        else None
                    ),
                )
            )
            if stored is not None:
                # A version the store cannot produce compares against {}
                # — "missing" is itself a byte-identity violation.
                report = report.merged(
                    self.validate_rollback(record, stored.get(record.version, {}))
                )

        out = _Collector(subject)
        out.ran("state/applied-version")
        for version in applied_stack:
            record = by_version.get(version)
            if record is None:
                out.fail(
                    "state/applied-version",
                    f"applied stack references missing record v{version}",
                    version=version,
                )
            elif not record.feasible or record.plan is None:
                out.fail(
                    "state/applied-version",
                    f"applied stack references infeasible record v{version}",
                    version=version,
                )
        report = report.merged(out.report())

        for prev, nxt in zip(applied_stack, applied_stack[1:]):
            old, new = by_version.get(prev), by_version.get(nxt)
            if old is None or new is None:
                continue  # state/applied-version already reported
            report = report.merged(self.validate_transition(old, new))
        return report
