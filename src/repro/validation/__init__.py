"""Independent verification of plans, lifecycle transitions and storage.

The :mod:`repro.api` service layer *produces* results — plans, diffs,
reshards, rollbacks; this package *checks* them, from first principles,
in code that shares nothing with the producers:

- :class:`~repro.validation.invariants.PlanValidator` — structural plan
  invariants (coverage, legality, memory) and lifecycle conservation
  laws (diff accounting, zero-byte stats updates, byte-identical
  rollback).  Wired into :class:`~repro.api.service.ShardingService`
  behind its ``validate=True`` flag and exposed as ``repro validate``
  in the CLI.
- :func:`~repro.validation.differential.differential_matrix` — every
  registered strategy must answer a seeded task matrix validator-clean.
- :class:`~repro.validation.faults.FaultyFS` — named crash points and
  torn writes for :class:`~repro.api.store.PlanStore`, proving the
  store's crash-consistency contract under test.
"""

from repro.validation.differential import (
    DifferentialCell,
    DifferentialReport,
    differential_matrix,
)
from repro.validation.faults import CrashPoint, FaultyFS
from repro.validation.invariants import (
    PlanValidationError,
    PlanValidator,
    ValidationError,
    ValidationReport,
)

__all__ = [
    "CrashPoint",
    "DifferentialCell",
    "DifferentialReport",
    "FaultyFS",
    "PlanValidationError",
    "PlanValidator",
    "ValidationError",
    "ValidationReport",
    "differential_matrix",
]
