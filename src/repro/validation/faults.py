"""Fault injection for the plan store: named crash points, torn writes.

:class:`~repro.api.store.PlanStore` persists every record and state
change through a pluggable filesystem shim (two operations: write a
file, atomically rename it into place).  :class:`FaultyFS` implements
that shim but fails on demand at **named write points**, so tests can
prove the crash-consistency contract instead of assuming it:

    >>> fs = FaultyFS()
    >>> store = PlanStore(tmp_path, fs=fs)
    >>> fs.arm("state#rename")          # next applied-stack persist dies
    >>> service.apply("prod")           # raises CrashPoint mid-write
    >>> ShardingService.open(...)       # recovers the pre-crash state

Point names are ``"<kind>#<phase>"`` where ``kind`` is the logical write
site (``meta`` — deployment metadata, ``state`` — the applied-version
stack, ``record`` — one immutable plan record) and ``phase`` is the
atomic-write step (``write`` — the temp file, ``rename`` — the
``os.replace`` into place).  :data:`repro.api.store.PlanStore
.WRITE_POINTS` enumerates them all, so a chaos suite can sweep every
point mechanically.

Failure modes per point:

- ``"crash"`` — the operation does nothing and raises
  :class:`CrashPoint`: a process death *before* the step.  With atomic
  writes this can never corrupt the destination file.
- ``"torn"`` — half the payload lands on the destination, then
  :class:`CrashPoint`: models the legacy non-atomic ``write_text`` (or
  plain disk corruption).  At the ``rename`` phase the *final* file is
  torn, which is exactly the corrupted-tail case
  :meth:`~repro.api.service.ShardingService.open` must recover from.

Faults are one-shot: an armed point fires once and disarms, so recovery
paths run against a healthy filesystem — like a real crash-and-restart.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["CrashPoint", "FaultyFS"]

_MODES = ("crash", "torn")


class CrashPoint(RuntimeError):
    """An injected failure at a named :class:`~repro.api.store.PlanStore`
    write point (the simulated process death)."""


class FaultyFS:
    """Plan-store filesystem shim with one-shot injected write failures.

    Attributes:
        writes: point names of every *completed* operation, in order.
        crashes: point names of every injected failure, in order.
    """

    def __init__(self) -> None:
        self._armed: dict[str, str] = {}
        self.writes: list[str] = []
        self.crashes: list[str] = []

    def arm(self, point: str, mode: str = "crash") -> None:
        """Make the next operation at ``point`` fail with ``mode``."""
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if "#" not in point:
            raise ValueError(
                f"point must be '<kind>#<phase>' (see PlanStore"
                f".WRITE_POINTS), got {point!r}"
            )
        self._armed[point] = mode

    @property
    def armed(self) -> dict[str, str]:
        """Currently armed (not yet fired) faults, point -> mode."""
        return dict(self._armed)

    def _trip(self, point: str, destination: Path, payload: str | None) -> None:
        """Fire (and disarm) the fault armed at ``point``, if any."""
        mode = self._armed.pop(point, None)
        if mode is None:
            return
        self.crashes.append(point)
        if mode == "torn" and payload is not None:
            destination.parent.mkdir(parents=True, exist_ok=True)
            destination.write_text(payload[: max(1, len(payload) // 2)])
        raise CrashPoint(f"injected {mode} at {point}")

    # ------------------------------------------------------------------
    # the PlanStore filesystem interface
    # ------------------------------------------------------------------

    def write_text(self, path: Path, text: str, point: str = "") -> None:
        """Write ``text`` to ``path`` unless a fault is armed at ``point``."""
        self._trip(point, Path(path), text)
        Path(path).write_text(text)
        self.writes.append(point)

    def replace(self, src: Path, dst: Path, point: str = "") -> None:
        """Atomically rename ``src`` onto ``dst`` unless a fault is armed.

        A ``"torn"`` fault here corrupts the *destination* with half the
        temp file's contents — the legacy non-atomic write's failure
        shape, driving the corrupted-tail recovery path.
        """
        src, dst = Path(src), Path(dst)
        payload = src.read_text() if src.exists() else None
        self._trip(point, dst, payload)
        os.replace(src, dst)
        self.writes.append(point)

    def link(self, src: Path, dst: Path, point: str = "") -> None:
        """Exclusively commit ``src`` to ``dst`` unless a fault is armed.

        The immutable-record commit path: same fault semantics as
        :meth:`replace` (``"torn"`` corrupts the destination), but the
        underlying operation refuses to overwrite an existing ``dst``.
        """
        src, dst = Path(src), Path(dst)
        payload = src.read_text() if src.exists() else None
        self._trip(point, dst, payload)
        os.link(src, dst)
        self.writes.append(point)
