"""NeuroShard reproduction: "Pre-train, and Search" embedding-table
sharding with pre-trained neural cost models (Zha et al., MLSys 2023).

Quickstart — pre-train once, then serve any strategy through the
:mod:`repro.api` engine::

    from repro import (
        ClusterConfig, NeuroShard, SimulatedCluster, TablePool, TaskConfig,
        generate_tasks, synthesize_table_pool,
    )
    from repro.api import ShardingEngine, ShardingRequest

    pool = TablePool(synthesize_table_pool(seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    sharder, report = NeuroShard.pretrain(cluster, pool, seed=0)

    engine = ShardingEngine(cluster, sharder.models)
    tasks = generate_tasks(pool, TaskConfig(num_devices=4, max_dim=128),
                           count=8, seed=1)
    response = engine.shard(ShardingRequest(tasks[0]))       # beam search
    batch = engine.shard_batch(
        [ShardingRequest(t) for t in tasks], max_workers=4)  # concurrent
    roster = engine.compare(ShardingRequest(tasks[0]))       # vs baselines

    per_device = response.plan.per_device_tables(tasks[0].tables)
    print(cluster.evaluate_plan(per_device).max_cost_ms)

Package map — see README.md for the full inventory:

- :mod:`repro.data` — tables, synthetic pool, augmentation, tasks.
- :mod:`repro.hardware` — the simulated multi-GPU ground truth.
- :mod:`repro.nn` — from-scratch NumPy neural nets.
- :mod:`repro.costmodel` — featurization, cost models, pre-training.
- :mod:`repro.core` — plans, cache, the incremental beam + greedy grid
  search kernel (and its frozen pre-optimization reference), facade.
- :mod:`repro.perf` — search instrumentation (stage timers, counters).
- :mod:`repro.baselines` — random/greedy/RL/planner/MILP/SurCo comparators.
- :mod:`repro.api` — the service layer: strategy registry, versioned
  request/response schema, :class:`~repro.api.engine.ShardingEngine`,
  :class:`~repro.api.store.BundleStore`.
- :mod:`repro.evaluation` — the paper's evaluation protocol + plan
  analysis.
- :mod:`repro.extensions` — the paper's future-work list, implemented
  (row-wise, mixed CPU-GPU, imitation, offline RL, guided search).
"""

from repro.config import (
    DEFAULT_SEED,
    DIMENSION_GRID,
    ClusterConfig,
    CollectionConfig,
    ExperimentConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard, ShardingPlan, ShardingResult
from repro.costmodel import PretrainedCostModels, pretrain_cost_models
from repro.perf import SearchProfile
from repro.data import (
    ShardingTask,
    TableConfig,
    TablePool,
    generate_tasks,
    synthesize_table_pool,
)
from repro.hardware import (
    DeviceSpec,
    HeterogeneousCluster,
    SimulatedCluster,
    TopologySpec,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "DEFAULT_SEED",
    "DIMENSION_GRID",
    "ClusterConfig",
    "CollectionConfig",
    "ExperimentConfig",
    "SearchConfig",
    "TaskConfig",
    "TrainConfig",
    "NeuroShard",
    "ShardingPlan",
    "ShardingResult",
    "SearchProfile",
    "PretrainedCostModels",
    "pretrain_cost_models",
    "TableConfig",
    "TablePool",
    "ShardingTask",
    "generate_tasks",
    "synthesize_table_pool",
    "DeviceSpec",
    "SimulatedCluster",
    "HeterogeneousCluster",
    "TopologySpec",
]
