"""The scenario registry: one namespace for every workload scenario.

The strategy registry (:mod:`repro.api.registry`) made *algorithms*
pluggable; this registry does the same for *workloads*.  Every
production-inspired scenario — diurnal load swings, flash crowds, table
churn, capacity crunches — registers a *generator* under a short name.  A
generator builds a deterministic :class:`~repro.scenarios.trace
.WorkloadTrace` from a table pool plus scenario-specific keyword
arguments; the same ``(pool, seed, kwargs)`` always yields a
byte-identical trace.

Call :func:`make_trace` to build by name, or replay straight through the
lifecycle service with
:func:`repro.evaluation.production.replay_workload_trace`.

Registering a new scenario is one decorator::

    @register_scenario(
        "my_regime",
        description="what the workload does",
        tags=("load",),
    )
    def _make_my_regime(pool, *, num_devices=4, seed=0, **kwargs):
        return WorkloadTrace(...)

The built-in registrations live in :mod:`repro.scenarios.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.data.pool import TablePool
from repro.scenarios.trace import WorkloadTrace

__all__ = [
    "ScenarioInfo",
    "UnknownScenarioError",
    "available_scenarios",
    "iter_scenarios",
    "make_trace",
    "register_scenario",
    "scenario_info",
]

#: Generator signature: ``(pool, **kwargs) -> WorkloadTrace``.
ScenarioFactory = Callable[..., WorkloadTrace]


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the registry."""


@dataclass(frozen=True)
class ScenarioInfo:
    """Registry record of one workload scenario.

    Attributes:
        name: canonical registry name.
        factory: builds the trace from ``(pool, **kwargs)``.
        description: one-line summary for listings and docs.
        tags: free-form facets (``"load"``, ``"churn"``, ``"capacity"``,
            ...) for filtering.
        default_steps: step count the generator produces when the caller
            does not override ``steps=`` (shown in listings).
    """

    name: str
    factory: ScenarioFactory
    description: str
    tags: tuple[str, ...] = ()
    default_steps: int = 0

    def __post_init__(self) -> None:
        if not self.description:
            raise ValueError(f"scenario {self.name!r} needs a description")


_REGISTRY: dict[str, ScenarioInfo] = {}


def register_scenario(
    name: str,
    *,
    description: str,
    tags: tuple[str, ...] = (),
    default_steps: int = 0,
) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator registering a trace generator under ``name``.

    Raises:
        ValueError: on a duplicate name or an empty description.
    """

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        """Record ``factory`` in the registry."""
        if name in _REGISTRY:
            raise ValueError(f"scenario name {name!r} already registered")
        _REGISTRY[name] = ScenarioInfo(
            name=name,
            factory=factory,
            description=description,
            tags=tuple(tags),
            default_steps=default_steps,
        )
        return factory

    return decorator


def scenario_info(name: str) -> ScenarioInfo:
    """Look up a scenario record.

    Raises:
        UnknownScenarioError: when the name is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownScenarioError(
            f"unknown workload scenario {name!r}; available scenarios: {known}"
        ) from None


def available_scenarios(tag: str | None = None) -> list[str]:
    """Sorted scenario names, optionally filtered by tag."""
    return sorted(
        info.name
        for info in _REGISTRY.values()
        if tag is None or tag in info.tags
    )


def iter_scenarios() -> Iterator[ScenarioInfo]:
    """All registered scenarios in name order."""
    for name in available_scenarios():
        yield _REGISTRY[name]


def make_trace(name: str, pool: TablePool, **kwargs: Any) -> WorkloadTrace:
    """Build the workload trace registered under ``name``.

    Args:
        name: a registry name (see :func:`available_scenarios`).
        pool: the table pool the scenario samples its workload from.
        **kwargs: scenario knobs forwarded to the generator; all built-in
            scenarios accept ``num_devices``, ``memory_bytes``,
            ``num_tables``, ``steps`` and ``seed``.

    Raises:
        UnknownScenarioError: when ``name`` is not registered.
    """
    info = scenario_info(name)
    return info.factory(pool, **kwargs)
