"""The built-in scenario atlas: eight production workload regimes.

Every generator below is registered with
:func:`~repro.scenarios.registry.register_scenario` and builds a
deterministic, seeded :class:`~repro.scenarios.trace.WorkloadTrace` from
a table pool.  The regimes are the ones production sharding deployments
actually meet:

- ``diurnal`` — the daily load curve: traffic swings while the table set
  barely changes, so the question is how much a *fixed* plan's bottleneck
  cost breathes with load.
- ``flash_crowd`` — a hot-table event: a subset of tables' lookup rates
  spike 6x and decay; stats-only updates let the reshard rebalance
  without phantom migration.
- ``table_churn`` — model-iteration waves: every step onboards fresh
  tables and retires old ones.
- ``dim_migration`` — an embedding-dimension upgrade rolled out in
  batches; each batch re-materializes its tables (remove + add).
- ``skew_drift`` — access skew flattens week over week (cache behaviour
  degrades), ending in a drift-monitor trigger.
- ``multi_tenant`` — a second tenant onboards onto the same cluster,
  both tenants peak together, then the first tenant partially retires.
- ``device_degradation`` — per-device memory budget shrinks in stages
  (hardware faults / co-located growth) and later recovers.
- ``capacity_crunch`` — steady table growth pushes aggregate utilization
  toward the feasibility edge.

All generators share the same core knobs (``num_devices``,
``memory_bytes``, ``num_tables``, ``steps``, ``seed``) so the CLI and the
benchmarks can drive the whole atlas uniformly; scenario-specific knobs
keep their physical meaning (spike factor, wave size, ...).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.costmodel.drift import DriftReport
from repro.data.pool import TablePool
from repro.data.table import TableConfig
from repro.scenarios.registry import register_scenario
from repro.scenarios.trace import (
    TraceStep,
    WorkloadTrace,
    rebuild_delta,
    stats_update_delta,
)
from repro.api.reshard import WorkloadDelta

__all__ = ["DEFAULT_MEMORY_BYTES"]

#: Per-device memory budget the atlas defaults to (the tier-1 tests' 2 GiB).
DEFAULT_MEMORY_BYTES = 2 * 1024**3


# ----------------------------------------------------------------------
# shared scaffolding
# ----------------------------------------------------------------------


def _base_workload(
    pool: TablePool,
    rng: np.random.Generator,
    num_tables: int,
    num_devices: int,
    memory_bytes: int,
    dims: Sequence[int] = (16, 32, 64),
    utilization: float = 0.45,
) -> list[TableConfig]:
    """Sample an initial workload under a target aggregate utilization.

    Tables are sampled from the pool, re-dimensioned from ``dims``, then
    the largest are dropped until total bytes fit ``utilization`` of the
    aggregate cluster memory — the same solvability guard the production
    experiment uses.
    """
    tables = pool.sample_tables(num_tables, rng)
    drawn = rng.choice(list(dims), size=len(tables))
    tables = [t.with_dim(int(d)) for t, d in zip(tables, drawn)]
    tables.sort(key=lambda t: (t.size_bytes, t.table_id))
    budget = utilization * memory_bytes * num_devices
    while tables and sum(t.size_bytes for t in tables) > budget:
        tables.pop()
    if not tables:
        raise RuntimeError(
            f"memory budget too small for any scenario table "
            f"({memory_bytes} B x {num_devices} devices)"
        )
    return tables


def _fresh_tables(
    pool: TablePool,
    rng: np.random.Generator,
    count: int,
    next_id: int,
    dims: Sequence[int],
) -> tuple[TableConfig, ...]:
    """``count`` new tables with fresh ids (production-style onboarding)."""
    sampled = pool.sample_tables(count, rng)
    drawn = rng.choice(list(dims), size=len(sampled))
    return tuple(
        dataclasses.replace(t.with_dim(int(d)), table_id=next_id + i)
        for i, (t, d) in enumerate(zip(sampled, drawn))
    )


def _next_id(pool: TablePool) -> int:
    """First table id no pool (hence no workload) table uses."""
    return max(t.table_id for t in pool.tables) + 1


def _scaled_pooling(table: TableConfig, factor: float) -> TableConfig:
    """Copy of ``table`` with its lookup rate scaled by ``factor``."""
    return dataclasses.replace(
        table, pooling_factor=round(max(table.pooling_factor * factor, 0.01), 4)
    )


def _require_steps(steps: int, minimum: int, name: str) -> None:
    if steps < minimum:
        raise ValueError(
            f"scenario {name!r} needs at least {minimum} steps, got {steps}"
        )


# ----------------------------------------------------------------------
# the atlas
# ----------------------------------------------------------------------


@register_scenario(
    "diurnal",
    description="daily traffic curve over a near-static table set",
    tags=("load",),
    default_steps=8,
)
def _diurnal(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 24,
    steps: int = 8,
    seed: int = 0,
    peak_multiplier: float = 2.2,
    trough_multiplier: float = 0.4,
) -> WorkloadTrace:
    """Diurnal load swings: traffic follows a 24 h sine, tiny midday churn."""
    _require_steps(steps, 3, "diurnal")
    rng = np.random.default_rng(seed)
    base = _base_workload(pool, rng, num_tables, num_devices, memory_bytes)
    initial = tuple(base)
    next_id = _next_id(pool)
    mean = (peak_multiplier + trough_multiplier) / 2.0
    amp = (peak_multiplier - trough_multiplier) / 2.0
    trace_steps = []
    for i in range(steps):
        hour = 24.0 * (i + 1) / steps
        traffic = round(mean + amp * math.sin(2 * math.pi * hour / 24 - math.pi / 2), 3)
        delta = WorkloadDelta()
        label = f"{hour:04.1f}h"
        if i == steps // 2:
            # The one release of the day: two tables in, one out.
            added = _fresh_tables(pool, rng, 2, next_id, (16, 32))
            next_id += len(added)
            retired = min(t.table_id for t in base)
            base = [t for t in base if t.table_id != retired] + list(added)
            delta = WorkloadDelta(
                add_tables=added, remove_table_ids=(retired,)
            )
            label += " release"
        trace_steps.append(
            TraceStep(
                timestamp=hour,
                delta=delta,
                traffic_multiplier=traffic,
                label=label,
            )
        )
    return WorkloadTrace(
        name="diurnal",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=initial,
        steps=tuple(trace_steps),
        description="daily traffic curve over a near-static table set",
    )


@register_scenario(
    "flash_crowd",
    description="a hot-table event: lookup rates spike 6x and decay",
    tags=("load", "skew"),
    default_steps=6,
)
def _flash_crowd(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 24,
    steps: int = 6,
    seed: int = 0,
    spike_factor: float = 6.0,
    hot_fraction: float = 0.2,
) -> WorkloadTrace:
    """Flash crowd: a hot subset's pooling factors spike, then decay."""
    _require_steps(steps, 5, "flash_crowd")
    rng = np.random.default_rng(seed)
    base = _base_workload(pool, rng, num_tables, num_devices, memory_bytes)
    hot_count = max(1, int(round(hot_fraction * len(base))))
    hot_idx = sorted(
        int(i) for i in rng.choice(len(base), size=hot_count, replace=False)
    )
    hot = [base[i] for i in hot_idx]
    # Phase profile: pre-event, spike, peak hold, decay, recovery, then
    # flat 1.0 hours when the caller asks for a longer trace.
    phases = [
        ("pre-event", 1.0, 1.1),
        ("crowd hits", spike_factor, 1.8),
        ("peak hold", spike_factor, 2.4),
        ("decay", max(spike_factor / 3.0, 1.0), 1.4),
        ("recovered", 1.0, 1.0),
    ]
    trace_steps = []
    last_factor = 1.0  # the initial workload carries unscaled pooling
    for i in range(steps):
        label, factor, traffic = (
            phases[i] if i < len(phases) else ("steady", 1.0, 1.0)
        )
        if factor != last_factor:
            delta = stats_update_delta(
                _scaled_pooling(t, factor) for t in hot
            )
            last_factor = factor
        else:
            delta = WorkloadDelta()
        trace_steps.append(
            TraceStep(
                timestamp=float(i + 1),
                delta=delta,
                traffic_multiplier=traffic,
                label=label,
            )
        )
    return WorkloadTrace(
        name="flash_crowd",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="a hot-table event: lookup rates spike 6x and decay",
    )


@register_scenario(
    "table_churn",
    description="model-iteration waves: tables onboard and retire every step",
    tags=("churn",),
    default_steps=8,
)
def _table_churn(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 24,
    steps: int = 8,
    seed: int = 0,
    wave: int | None = None,
) -> WorkloadTrace:
    """Table churn: every step adds a wave of fresh tables, retires old ones."""
    _require_steps(steps, 1, "table_churn")
    rng = np.random.default_rng(seed)
    base = _base_workload(pool, rng, num_tables, num_devices, memory_bytes)
    wave = wave if wave is not None else max(2, len(base) // 8)
    current = list(base)
    next_id = _next_id(pool)
    trace_steps = []
    for i in range(steps):
        added = _fresh_tables(pool, rng, wave, next_id, (16, 32, 64))
        next_id += len(added)
        ids = sorted(t.table_id for t in current)
        removable = min(wave, max(len(ids) - 1, 0))
        retired = tuple(ids[:removable])  # oldest ids retire first
        current = [t for t in current if t.table_id not in set(retired)]
        current.extend(added)
        trace_steps.append(
            TraceStep(
                timestamp=float(i + 1),
                delta=WorkloadDelta(
                    add_tables=added, remove_table_ids=retired
                ),
                label=f"wave {i + 1}",
            )
        )
    return WorkloadTrace(
        name="table_churn",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="model-iteration waves: tables onboard and retire every step",
    )


@register_scenario(
    "dim_migration",
    description="an embedding-dimension upgrade rolled out in batches",
    tags=("churn", "capacity"),
    default_steps=6,
)
def _dim_migration(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 22,
    steps: int = 6,
    seed: int = 0,
    max_dim: int = 64,
) -> WorkloadTrace:
    """Dimension migration: batches of tables double their embedding dim."""
    _require_steps(steps, 2, "dim_migration")
    rng = np.random.default_rng(seed)
    # Start low-dimensional and headroomy: the rollout doubles sizes.
    base = _base_workload(
        pool, rng, num_tables, num_devices, memory_bytes,
        dims=(16, 32), utilization=0.35,
    )
    current = {t.table_id: t for t in base}
    order = sorted(current)  # deterministic rollout order
    batches = [order[i::steps] for i in range(steps)]
    trace_steps = []
    for i, batch in enumerate(batches):
        upgraded = tuple(
            current[tid].with_dim(min(current[tid].dim * 2, max_dim))
            for tid in batch
            if current[tid].dim < max_dim
        )
        for t in upgraded:
            current[t.table_id] = t
        delta = rebuild_delta(upgraded) if upgraded else WorkloadDelta()
        trace_steps.append(
            TraceStep(
                timestamp=float(i + 1),
                delta=delta,
                label=f"batch {i + 1} ({len(upgraded)} tables)",
            )
        )
    return WorkloadTrace(
        name="dim_migration",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="an embedding-dimension upgrade rolled out in batches",
    )


@register_scenario(
    "skew_drift",
    description="access skew flattens step over step until drift triggers",
    tags=("skew", "drift"),
    default_steps=6,
)
def _skew_drift(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 24,
    steps: int = 6,
    seed: int = 0,
    final_alpha_factor: float = 0.55,
) -> WorkloadTrace:
    """Skew drift: every table's Zipf exponent decays toward flat access."""
    _require_steps(steps, 2, "skew_drift")
    rng = np.random.default_rng(seed)
    base = _base_workload(pool, rng, num_tables, num_devices, memory_bytes)
    original = {t.table_id: t for t in base}
    trace_steps = []
    for i in range(steps):
        frac = (i + 1) / steps
        factor = 1.0 + (final_alpha_factor - 1.0) * frac
        updates = tuple(
            dataclasses.replace(
                t, zipf_alpha=round(t.zipf_alpha * factor, 6)
            )
            for t in original.values()
        )
        last = i == steps - 1
        # The drift monitor's rolling MSE crosses its threshold on the
        # final step (synthetic but deterministic evidence trail).
        drift = DriftReport(
            probe_mse=round(0.2 + 1.6 * frac, 4),
            rolling_mse=round(0.2 + 1.1 * frac, 4),
            needs_retraining=last,
            timestamp=float(i + 1),
            step_index=i,
        )
        trace_steps.append(
            TraceStep(
                timestamp=float(i + 1),
                delta=WorkloadDelta(update_stats=updates, drift=drift),
                label=f"alpha x{factor:.2f}" + (" [drift]" if last else ""),
            )
        )
    return WorkloadTrace(
        name="skew_drift",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="access skew flattens step over step until drift triggers",
    )


@register_scenario(
    "multi_tenant",
    description="a second tenant onboards, both peak, the first retires",
    tags=("churn", "load"),
    default_steps=8,
)
def _multi_tenant(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 20,
    steps: int = 8,
    seed: int = 0,
    tenant_b_tables: int | None = None,
) -> WorkloadTrace:
    """Multi-tenant contention: tenant B grows onto tenant A's cluster."""
    _require_steps(steps, 6, "multi_tenant")
    rng = np.random.default_rng(seed)
    base = _base_workload(
        pool, rng, num_tables, num_devices, memory_bytes, utilization=0.35
    )
    tenant_a_ids = sorted(t.table_id for t in base)
    b_total = tenant_b_tables if tenant_b_tables is not None else max(
        4, len(base) // 2
    )
    next_id = _next_id(pool)
    onboard_steps = 3
    waves = [
        b_total // onboard_steps + (1 if i < b_total % onboard_steps else 0)
        for i in range(onboard_steps)
    ]
    trace_steps = []
    retired_so_far = 0
    for i in range(steps):
        if i < onboard_steps:
            added = _fresh_tables(pool, rng, waves[i], next_id, (16, 32))
            next_id += len(added)
            trace_steps.append(
                TraceStep(
                    timestamp=float(i + 1),
                    delta=WorkloadDelta(add_tables=added),
                    traffic_multiplier=round(1.0 + 0.2 * (i + 1), 3),
                    label=f"tenant B wave {i + 1}",
                )
            )
        elif i < steps - 2:
            trace_steps.append(
                TraceStep(
                    timestamp=float(i + 1),
                    traffic_multiplier=1.8,
                    label="both tenants peak",
                )
            )
        else:
            # Tenant A winds down: retire a quarter of its tables per step.
            quota = max(1, len(tenant_a_ids) // 4)
            retire = tuple(
                tenant_a_ids[retired_so_far : retired_so_far + quota]
            )
            retired_so_far += len(retire)
            trace_steps.append(
                TraceStep(
                    timestamp=float(i + 1),
                    delta=WorkloadDelta(remove_table_ids=retire),
                    traffic_multiplier=1.2,
                    label=f"tenant A retires {len(retire)}",
                )
            )
    return WorkloadTrace(
        name="multi_tenant",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="a second tenant onboards, both peak, the first retires",
    )


@register_scenario(
    "device_degradation",
    description="per-device memory shrinks in stages, then recovers",
    tags=("capacity", "hardware"),
    default_steps=5,
)
def _device_degradation(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 24,
    steps: int = 5,
    seed: int = 0,
    worst_scale: float = 0.7,
) -> WorkloadTrace:
    """Device degradation: the memory budget steps down, holds, recovers."""
    _require_steps(steps, 4, "device_degradation")
    rng = np.random.default_rng(seed)
    base = _base_workload(
        pool, rng, num_tables, num_devices, memory_bytes, utilization=0.5
    )
    # Degrade over the first steps, hold, recover on the last step.
    degrade_steps = steps - 2
    scales = [
        round(1.0 + (worst_scale - 1.0) * (i + 1) / degrade_steps, 3)
        for i in range(degrade_steps)
    ]
    scales += [scales[-1], 1.0]
    labels = [f"degrade to {s:.0%}" for s in scales[:degrade_steps]]
    labels += ["holding", "capacity restored"]
    trace_steps = [
        TraceStep(
            timestamp=float(i + 1),
            memory_scale=scales[i],
            traffic_multiplier=1.0,
            label=labels[i],
        )
        for i in range(steps)
    ]
    return WorkloadTrace(
        name="device_degradation",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="per-device memory shrinks in stages, then recovers",
    )


@register_scenario(
    "capacity_crunch",
    description="steady growth pushes utilization toward the feasibility edge",
    tags=("capacity", "churn"),
    default_steps=6,
)
def _capacity_crunch(
    pool: TablePool,
    *,
    num_devices: int = 4,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    num_tables: int = 20,
    steps: int = 6,
    seed: int = 0,
    target_utilization: float = 0.88,
) -> WorkloadTrace:
    """Capacity crunch: each step adds big tables until memory nearly binds."""
    _require_steps(steps, 2, "capacity_crunch")
    rng = np.random.default_rng(seed)
    base = _base_workload(
        pool, rng, num_tables, num_devices, memory_bytes, utilization=0.5
    )
    aggregate = memory_bytes * num_devices
    used = sum(t.size_bytes for t in base)
    next_id = _next_id(pool)
    per_step_budget = (target_utilization * aggregate - used) / steps
    trace_steps = []
    for i in range(steps):
        added: list[TableConfig] = []
        step_bytes = 0
        # Draw large-dim candidates until the step's growth budget fills.
        for _ in range(16):
            candidate = _fresh_tables(pool, rng, 1, next_id, (64, 128))[0]
            if step_bytes + candidate.size_bytes > per_step_budget:
                continue
            next_id += 1
            added.append(candidate)
            step_bytes += candidate.size_bytes
        used += step_bytes
        trace_steps.append(
            TraceStep(
                timestamp=float(i + 1),
                delta=WorkloadDelta(add_tables=tuple(added)),
                label=(
                    f"+{step_bytes / 1e6:.0f} MB "
                    f"({used / aggregate:.0%} full)"
                ),
            )
        )
    return WorkloadTrace(
        name="capacity_crunch",
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        initial_tables=tuple(base),
        steps=tuple(trace_steps),
        description="steady growth pushes utilization toward the feasibility edge",
    )
