"""Scenario replay reports: what a trace did to the lifecycle service.

:func:`repro.evaluation.production.replay_workload_trace` turns a
:class:`~repro.scenarios.trace.WorkloadTrace` plus an engine into a
:class:`ScenarioReport` — one :class:`ScenarioStepMetrics` row per step
(the initial plan is row 0) recording the serving cost under that step's
traffic, the migration the applied plan paid, whether the budget bound
the choice, and the always-evaluated re-shard-from-scratch counterfactual.

Everything in a report is deterministic (costs come from the cost-model
simulator, never wall clocks), so same seed ⇒ byte-identical report JSON
— which is what the committed ``benchmarks/results/scenario_*.txt``
artifacts and the determinism tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api.schema import SCHEMA_VERSION, _check_version

__all__ = ["ScenarioReport", "ScenarioStepMetrics", "format_scenario_report"]


def _to_finite(value: float) -> float | None:
    """JSON-safe float: non-finite values become ``None``."""
    return float(value) if math.isfinite(value) else None


def _from_finite(value: float | None) -> float:
    return math.nan if value is None else float(value)


@dataclass(frozen=True)
class ScenarioStepMetrics:
    """One replayed step of a scenario (step 0 is the initial plan).

    Attributes:
        step: 0-based replay position (0 = initial plan + apply).
        timestamp: the trace step's timestamp (0.0 for step 0).
        label: the trace step's annotation.
        resharded: the step went through the reshard path (non-empty
            delta or a memory change) rather than re-scoring only.
        feasible: the step left the deployment with an applicable plan
            (an infeasible reshard keeps the previous plan serving).
        chosen: ``"plan"`` (step 0), ``"hold"`` (no reshard needed),
            ``"incremental"``, ``"full"``, or ``"none"`` (infeasible).
        num_tables: logical tables after the step (column shards of one
            table count once).
        num_shards: physical shards the applied plan places.
        traffic_multiplier: the step's load factor.
        memory_bytes: per-device budget in effect at the step.
        plan_cost_ms: the applied plan's simulated cost at planned
            (multiplier 1.0) load.
        serving_cost_ms: the applied plan's simulated cost under the
            step's traffic multiplier.
        moved_mb: megabytes of surviving shards this step moved.
        migration_ms: priced migration wall-clock of this step's change.
        within_budget: this step's migration respected the budget.
        budget_bound: the migration budget constrained this step — the
            applied candidate exceeded it (nothing fit) or the
            from-scratch candidate was priced out.
        scratch_cost_ms / scratch_moved_mb / scratch_migration_ms: the
            re-shard-from-scratch counterfactual evaluated from the same
            applied state (``nan``/0 when not evaluated).
        cumulative_moved_mb / cumulative_scratch_moved_mb: running totals
            of both migration columns.
    """

    step: int
    timestamp: float
    label: str
    resharded: bool
    feasible: bool
    chosen: str
    num_tables: int
    num_shards: int
    traffic_multiplier: float
    memory_bytes: int
    plan_cost_ms: float
    serving_cost_ms: float
    moved_mb: float
    migration_ms: float
    within_budget: bool
    budget_bound: bool
    scratch_cost_ms: float
    scratch_moved_mb: float
    scratch_migration_ms: float
    cumulative_moved_mb: float
    cumulative_scratch_moved_mb: float

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "step": int(self.step),
            "timestamp": float(self.timestamp),
            "label": self.label,
            "resharded": bool(self.resharded),
            "feasible": bool(self.feasible),
            "chosen": self.chosen,
            "num_tables": int(self.num_tables),
            "num_shards": int(self.num_shards),
            "traffic_multiplier": float(self.traffic_multiplier),
            "memory_bytes": int(self.memory_bytes),
            "plan_cost_ms": _to_finite(self.plan_cost_ms),
            "serving_cost_ms": _to_finite(self.serving_cost_ms),
            "moved_mb": float(self.moved_mb),
            "migration_ms": float(self.migration_ms),
            "within_budget": bool(self.within_budget),
            "budget_bound": bool(self.budget_bound),
            "scratch_cost_ms": _to_finite(self.scratch_cost_ms),
            "scratch_moved_mb": float(self.scratch_moved_mb),
            "scratch_migration_ms": _to_finite(self.scratch_migration_ms),
            "cumulative_moved_mb": float(self.cumulative_moved_mb),
            "cumulative_scratch_moved_mb": float(
                self.cumulative_scratch_moved_mb
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioStepMetrics":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "scenario step metrics")
        return cls(
            step=int(data["step"]),
            timestamp=float(data["timestamp"]),
            label=str(data.get("label", "")),
            resharded=bool(data["resharded"]),
            feasible=bool(data["feasible"]),
            chosen=str(data["chosen"]),
            num_tables=int(data["num_tables"]),
            num_shards=int(data["num_shards"]),
            traffic_multiplier=float(data["traffic_multiplier"]),
            memory_bytes=int(data["memory_bytes"]),
            plan_cost_ms=_from_finite(data.get("plan_cost_ms")),
            serving_cost_ms=_from_finite(data.get("serving_cost_ms")),
            moved_mb=float(data["moved_mb"]),
            migration_ms=float(data["migration_ms"]),
            within_budget=bool(data["within_budget"]),
            budget_bound=bool(data["budget_bound"]),
            scratch_cost_ms=_from_finite(data.get("scratch_cost_ms")),
            scratch_moved_mb=float(data.get("scratch_moved_mb", 0.0)),
            scratch_migration_ms=_from_finite(data.get("scratch_migration_ms")),
            cumulative_moved_mb=float(data["cumulative_moved_mb"]),
            cumulative_scratch_moved_mb=float(
                data["cumulative_scratch_moved_mb"]
            ),
        )


@dataclass(frozen=True)
class ScenarioReport:
    """Replay outcome of one workload trace through the lifecycle service.

    Attributes:
        scenario: registry name of the scenario (the trace's ``name``).
        seed: the trace generator's seed.
        num_devices: cluster size the replay ran on.
        memory_bytes: the trace's base per-device budget.
        strategy: full-search strategy used (``None`` = engine default).
        reshard_config: the :class:`~repro.api.reshard.ReshardConfig`
            knobs the replay ran under, as a plain dictionary.
        steps: per-step metrics, step 0 first.
    """

    scenario: str
    seed: int
    num_devices: int
    memory_bytes: int
    strategy: str | None
    reshard_config: Mapping[str, Any]
    steps: tuple[ScenarioStepMetrics, ...]

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Total rows, the initial plan included."""
        return len(self.steps)

    @property
    def num_reshard_steps(self) -> int:
        """Rows that went through the reshard path."""
        return sum(1 for s in self.steps if s.resharded)

    @property
    def infeasible_rate(self) -> float:
        """Fraction of reshard steps that found no applicable plan."""
        reshards = [s for s in self.steps if s.resharded]
        if not reshards:
            return 0.0
        return sum(1 for s in reshards if not s.feasible) / len(reshards)

    @property
    def budget_bound_rate(self) -> float:
        """Fraction of reshard steps where the migration budget bound."""
        reshards = [s for s in self.steps if s.resharded]
        if not reshards:
            return 0.0
        return sum(1 for s in reshards if s.budget_bound) / len(reshards)

    @property
    def total_moved_mb(self) -> float:
        """Megabytes of surviving shards the whole replay moved."""
        return self.steps[-1].cumulative_moved_mb if self.steps else 0.0

    @property
    def total_scratch_moved_mb(self) -> float:
        """The re-shard-from-scratch counterfactual's cumulative total."""
        return (
            self.steps[-1].cumulative_scratch_moved_mb if self.steps else 0.0
        )

    @property
    def mean_serving_cost_ms(self) -> float:
        """Mean per-step serving cost over steps with a finite cost."""
        costs = [
            s.serving_cost_ms
            for s in self.steps
            if math.isfinite(s.serving_cost_ms)
        ]
        return sum(costs) / len(costs) if costs else math.nan

    @property
    def peak_serving_cost_ms(self) -> float:
        """Worst per-step serving cost over the replay."""
        costs = [
            s.serving_cost_ms
            for s in self.steps
            if math.isfinite(s.serving_cost_ms)
        ]
        return max(costs) if costs else math.nan

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "seed": int(self.seed),
            "num_devices": int(self.num_devices),
            "memory_bytes": int(self.memory_bytes),
            "strategy": self.strategy,
            "reshard_config": dict(self.reshard_config),
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioReport":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "scenario report")
        return cls(
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),
            num_devices=int(data["num_devices"]),
            memory_bytes=int(data["memory_bytes"]),
            strategy=data.get("strategy"),
            reshard_config=dict(data.get("reshard_config", {})),
            steps=tuple(
                ScenarioStepMetrics.from_dict(s) for s in data.get("steps", ())
            ),
        )

    def summary(self) -> dict[str, Any]:
        """One-row aggregate view (CLI ``scenario compare``, benchmarks)."""
        return {
            "scenario": self.scenario,
            "steps": self.num_steps,
            "reshards": self.num_reshard_steps,
            "infeasible_rate": self.infeasible_rate,
            "budget_bound_rate": self.budget_bound_rate,
            "total_moved_mb": self.total_moved_mb,
            "total_scratch_moved_mb": self.total_scratch_moved_mb,
            "mean_serving_cost_ms": self.mean_serving_cost_ms,
            "peak_serving_cost_ms": self.peak_serving_cost_ms,
        }


def format_scenario_report(report: ScenarioReport) -> str:
    """Render a report as the paper-style text table the benchmarks commit."""
    from repro.evaluation.reporting import format_text_table

    rows = []
    for s in report.steps:
        rows.append(
            [
                s.step,
                s.label or "-",
                s.num_tables,
                f"{s.traffic_multiplier:.2f}x",
                s.chosen,
                f"{s.serving_cost_ms:.3f}" if math.isfinite(s.serving_cost_ms) else "-",
                f"{s.moved_mb:.1f}",
                f"{s.scratch_moved_mb:.1f}",
                "yes" if s.budget_bound else "no",
            ]
        )
    title = (
        f"scenario {report.scenario} (seed {report.seed}, "
        f"{report.num_devices} devices): cumulative moved "
        f"{report.total_moved_mb:.1f} MB vs {report.total_scratch_moved_mb:.1f} MB "
        f"from scratch, infeasible rate {report.infeasible_rate:.2f}"
    )
    return format_text_table(
        [
            "step",
            "label",
            "tables",
            "traffic",
            "chosen",
            "serve cost (ms)",
            "moved (MB)",
            "scratch (MB)",
            "budget-bound",
        ],
        rows,
        title=title,
    )
