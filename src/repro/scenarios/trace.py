"""Workload traces: the replayable unit of a production scenario.

A *scenario* (a diurnal load swing, a flash crowd, a table-onboarding
wave, ...) is not code that pokes at a service — it is **data**: a
:class:`WorkloadTrace` holding the initial workload plus a timestamped
sequence of :class:`TraceStep`\\ s, each carrying a
:class:`~repro.api.reshard.WorkloadDelta` (tables added / removed /
updated), a **traffic multiplier** (scales every table's lookup rate for
that step's cost evaluation) and a **memory scale** (models device
degradation / capacity loss as a fraction of the trace's base budget).

Because a trace is plain data with the same versioned JSON round-trip as
the rest of :mod:`repro.api.schema`, scenarios can be generated once,
committed, diffed, and replayed bit-identically through
:func:`repro.evaluation.production.replay_workload_trace` — the registry
in :mod:`repro.scenarios.catalog` is just a library of deterministic
trace generators.

Workload *updates* come in two physically distinct flavours, and the
trace encodes them differently so migration is priced honestly:

- **stats updates** (:func:`stats_update_delta`) — the access pattern
  changed (pooling factor, skew) but the stored weights did not.  Carried
  in :attr:`~repro.api.reshard.WorkloadDelta.update_stats`; the reshard
  rewrites the surviving shards' statistics in place, so no bytes move
  unless the search *chooses* to rebalance.
- **rebuilds** (:func:`rebuild_delta`) — the storage layout changed
  (dimension migration, re-hashed rows).  Encoded as remove-and-re-add of
  the same ``table_id``: the old shards are retired and the new
  configuration is placed, pricing the re-materialization of the table's
  state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.api.reshard import WorkloadDelta
from repro.api.schema import SCHEMA_VERSION, _check_version
from repro.data.io import table_from_dict, table_to_dict
from repro.data.table import TableConfig

__all__ = ["TraceStep", "WorkloadTrace", "rebuild_delta", "stats_update_delta"]


def stats_update_delta(updates: Iterable[TableConfig]) -> WorkloadDelta:
    """A delta whose tables change *access statistics* only.

    Use for pooling-factor or skew changes: the stored weights are
    untouched, so the reshard applies the new statistics to the surviving
    shards in place and prices zero migration for the update itself.
    """
    return WorkloadDelta(update_stats=tuple(updates))


def rebuild_delta(replacements: Iterable[TableConfig]) -> WorkloadDelta:
    """A delta that rebuilds tables (same ids, new storage layout).

    Use for dimension or row-count changes: encoded as remove-and-re-add
    of each replacement's ``table_id``, so the incremental reshard
    retires every old shard and places the new configuration — the
    re-materialization of the table's state is priced as migration.
    """
    replacements = tuple(replacements)
    return WorkloadDelta(
        add_tables=replacements,
        remove_table_ids=tuple(t.table_id for t in replacements),
    )


@dataclass(frozen=True)
class TraceStep:
    """One timestamped workload change within a :class:`WorkloadTrace`.

    Attributes:
        timestamp: monotone position of the step (hours, days, or plain
            step index — the unit is the scenario's to choose; replay
            only requires it to increase).
        delta: tables added / removed / updated at this step (empty
            deltas are legal: a pure traffic or capacity change).
        traffic_multiplier: factor applied to every table's
            ``pooling_factor`` when the step's serving cost is evaluated
            (1.0 = the planned load; 2.0 = twice the lookups per batch).
            Traffic is a *scoring overlay*: it never moves bytes by
            itself.
        memory_scale: per-device memory budget at this step as a fraction
            of the trace's base ``memory_bytes`` (device degradation,
            capacity loss).  A change re-packs through the reshard path.
        label: short human-readable annotation for reports.
    """

    timestamp: float
    delta: WorkloadDelta = field(default_factory=WorkloadDelta)
    traffic_multiplier: float = 1.0
    memory_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.traffic_multiplier <= 0:
            raise ValueError(
                f"traffic_multiplier must be > 0, got {self.traffic_multiplier}"
            )
        if self.memory_scale <= 0:
            raise ValueError(
                f"memory_scale must be > 0, got {self.memory_scale}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "timestamp": float(self.timestamp),
            "delta": self.delta.to_dict(),
            "traffic_multiplier": float(self.traffic_multiplier),
            "memory_scale": float(self.memory_scale),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceStep":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "trace step")
        return cls(
            timestamp=float(data["timestamp"]),
            delta=WorkloadDelta.from_dict(data["delta"]),
            traffic_multiplier=float(data.get("traffic_multiplier", 1.0)),
            memory_scale=float(data.get("memory_scale", 1.0)),
            label=str(data.get("label", "")),
        )


@dataclass(frozen=True)
class WorkloadTrace:
    """A replayable production scenario: initial workload + change steps.

    Attributes:
        name: scenario (registry) name this trace was generated from.
        seed: the generator seed (same seed ⇒ byte-identical trace JSON).
        num_devices: cluster size the trace targets.
        memory_bytes: base per-device memory budget (steps scale it via
            ``memory_scale``).
        initial_tables: the day-0 workload.
        steps: the timestamped change sequence, timestamp-ascending.
        description: one-line summary for listings and reports.
    """

    name: str
    seed: int
    num_devices: int
    memory_bytes: int
    initial_tables: tuple[TableConfig, ...]
    steps: tuple[TraceStep, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.initial_tables:
            raise ValueError("a workload trace needs at least one initial table")
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0, got {self.memory_bytes}")
        times = [s.timestamp for s in self.steps]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError(
                f"trace steps must have strictly increasing timestamps, got {times}"
            )

    @property
    def num_steps(self) -> int:
        """Number of change steps (the initial plan is not a step)."""
        return len(self.steps)

    def with_steps(self, steps: Sequence[TraceStep]) -> "WorkloadTrace":
        """Copy of this trace with a different step sequence."""
        return replace(self, steps=tuple(steps))

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "seed": int(self.seed),
            "num_devices": int(self.num_devices),
            "memory_bytes": int(self.memory_bytes),
            "initial_tables": [table_to_dict(t) for t in self.initial_tables],
            "steps": [s.to_dict() for s in self.steps],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadTrace":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "workload trace")
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            num_devices=int(data["num_devices"]),
            memory_bytes=int(data["memory_bytes"]),
            initial_tables=tuple(
                table_from_dict(t) for t in data.get("initial_tables", ())
            ),
            steps=tuple(TraceStep.from_dict(s) for s in data.get("steps", ())),
            description=str(data.get("description", "")),
        )
