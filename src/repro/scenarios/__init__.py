"""The scenario atlas: replayable production workload regimes.

The paper evaluates sharding on static task distributions; a production
deployment lives inside a *moving* one.  This package makes workload
regimes first-class, the same way :mod:`repro.api.registry` made
algorithms first-class:

- a :class:`~repro.scenarios.trace.WorkloadTrace` is a deterministic,
  seeded, JSON-serializable sequence of timestamped workload changes
  (table adds/removes, in-place stats updates, traffic multipliers,
  capacity loss);
- the :mod:`~repro.scenarios.registry` maps short names to trace
  generators (``@register_scenario`` — adding a regime is one decorator);
- the :mod:`~repro.scenarios.catalog` ships eight production-inspired
  regimes (diurnal load, flash crowds, table churn, dimension migration,
  skew drift, multi-tenant contention, device degradation, capacity
  crunch);
- replaying a trace through the plan-lifecycle service
  (:func:`repro.evaluation.production.replay_workload_trace`) yields a
  :class:`~repro.scenarios.report.ScenarioReport` — per-step serving
  cost, migrated bytes, budget binding, infeasible rate, and the
  re-shard-from-scratch counterfactual.

Quick tour::

    from repro.data import TablePool, synthesize_table_pool
    from repro.scenarios import available_scenarios, make_trace

    pool = TablePool(synthesize_table_pool(seed=0))
    print(available_scenarios())          # the atlas
    trace = make_trace("flash_crowd", pool, num_devices=4, seed=7)
    payload = trace.to_dict()             # versioned JSON — commit/replay

``repro scenario list | run | compare`` exposes the same surface from
the command line.
"""

from repro.scenarios.registry import (
    ScenarioInfo,
    UnknownScenarioError,
    available_scenarios,
    iter_scenarios,
    make_trace,
    register_scenario,
    scenario_info,
)
from repro.scenarios.trace import (
    TraceStep,
    WorkloadTrace,
    rebuild_delta,
    stats_update_delta,
)
from repro.scenarios.report import (
    ScenarioReport,
    ScenarioStepMetrics,
    format_scenario_report,
)
from repro.scenarios import catalog as _catalog  # noqa: F401 — populates registry

__all__ = [
    "ScenarioInfo",
    "ScenarioReport",
    "ScenarioStepMetrics",
    "TraceStep",
    "UnknownScenarioError",
    "WorkloadTrace",
    "available_scenarios",
    "format_scenario_report",
    "iter_scenarios",
    "make_trace",
    "rebuild_delta",
    "register_scenario",
    "scenario_info",
    "stats_update_delta",
]
