"""Row-wise sharding extension (the paper's Section 6 future work).

Column-wise sharding divides a table's *dimension*; it can halve memory
per shard but leaves the per-shard lookup count untouched (Observation 1)
and bottoms out at dimension 4.  For tables whose *rows* dominate — a
100M-row table at dimension 4 still weighs 1.6 GB — the natural split is
row-wise: partition the rank-ordered rows, sending each lookup index to
the shard owning its row.  Row sharding divides memory *and* lookups, at
the price of an extra per-shard kernel overhead and a (slightly) worse
cache story on the cold shard.

Design: a composable pre-processing stage rather than a third search
loop.  :class:`RowWisePreprocessor` row-splits any table whose memory
footprint exceeds a fraction of the device budget until it fits;
:class:`RowWiseSharder` wraps any base sharder (NeuroShard or a
baseline) with that stage, so row-wise capability composes with the
paper's entire algorithm zoo.  The pre-trained cost models price the row
shards with no retraining — table augmentation never saw them, but the
featurization (hash size, pooling, skew) is exactly the space they live
in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.plan import ShardingPlan
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = ["RowWiseDecision", "RowWisePreprocessor", "RowWiseSharder"]


@dataclass(frozen=True)
class RowWiseDecision:
    """Record of the row splits applied to one task.

    Attributes:
        tables: the post-split table list handed to the base sharder.
        num_splits: how many row splits were applied.
        split_table_ids: ids of the source tables that were split.
    """

    tables: tuple[TableConfig, ...]
    num_splits: int
    split_table_ids: tuple[int, ...]


class RowWisePreprocessor:
    """Row-split oversized tables until each fits the memory budget.

    Args:
        max_fraction: a table may occupy at most this fraction of one
            device's budget after preprocessing.  0.5 leaves the
            downstream placement room to co-locate shards with other
            tables.
        max_splits_per_table: safety bound on recursive halving.
    """

    def __init__(
        self, max_fraction: float = 0.5, max_splits_per_table: int = 10
    ) -> None:
        if not 0 < max_fraction <= 1:
            raise ValueError(f"max_fraction must be in (0, 1], got {max_fraction}")
        if max_splits_per_table < 1:
            raise ValueError(
                f"max_splits_per_table must be >= 1, got {max_splits_per_table}"
            )
        self.max_fraction = max_fraction
        self.max_splits_per_table = max_splits_per_table

    def preprocess(
        self, tables: Sequence[TableConfig], memory: MemoryModel
    ) -> RowWiseDecision:
        """Split every oversized table row-wise until it fits."""
        limit = self.max_fraction * memory.memory_bytes
        result: list[TableConfig] = []
        split_ids: list[int] = []
        num_splits = 0
        for table in tables:
            queue = [(table, 0)]
            while queue:
                current, depth = queue.pop()
                if (
                    memory.table_bytes(current) <= limit
                    or depth >= self.max_splits_per_table
                    or current.hash_size < 2
                ):
                    result.append(current)
                    continue
                hot, cold = current.row_halved()
                num_splits += 1
                if table.table_id not in split_ids:
                    split_ids.append(table.table_id)
                queue.append((hot, depth + 1))
                queue.append((cold, depth + 1))
        return RowWiseDecision(
            tables=tuple(result),
            num_splits=num_splits,
            split_table_ids=tuple(split_ids),
        )


class RowWiseSharder:
    """Compose row-wise pre-processing with any base sharder.

    The returned plan is expressed over the *pre-processed* table list;
    :meth:`shard_with_tables` exposes that list so callers can execute
    the plan (``plan.per_device_tables(decision.tables)``).

    Args:
        base: the sharder that places the (possibly row-split) tables.
        preprocessor: the row-splitting stage.
    """

    def __init__(
        self,
        base,
        preprocessor: RowWisePreprocessor | None = None,
    ) -> None:
        self.base = base
        self.preprocessor = preprocessor or RowWisePreprocessor()
        self.name = f"RowWise+{getattr(base, 'name', type(base).__name__)}"

    def shard_with_tables(
        self, task: ShardingTask
    ) -> tuple[ShardingPlan | None, RowWiseDecision]:
        """Shard ``task``; returns the plan and the row-split record."""
        memory = MemoryModel(task.memory_bytes)
        decision = self.preprocessor.preprocess(task.tables, memory)
        new_task = ShardingTask(
            tables=decision.tables,
            num_devices=task.num_devices,
            memory_bytes=task.memory_bytes,
            task_id=task.task_id,
        )
        result = self.base.shard(new_task)
        # Unwrap NeuroShard's ShardingResult.
        plan = getattr(result, "plan", result)
        if result is not None and getattr(result, "feasible", True) is False:
            plan = None
        return plan, decision

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        """Sharder-protocol entry point (plan only).

        Note: the plan indexes the row-split table list; use
        :meth:`shard_with_tables` when you need to execute it.
        """
        plan, _ = self.shard_with_tables(task)
        return plan
