"""Extensions beyond the paper's evaluated system.

The paper's conclusion lists row-wise sharding as future work; this
package implements it as a composable pre-processing stage
(:mod:`repro.extensions.rowwise`), plus cost-model feature ablation
utilities used by the extension benchmarks
(:mod:`repro.extensions.feature_ablation`).
"""

from repro.extensions.rowwise import RowWiseDecision, RowWisePreprocessor, RowWiseSharder
from repro.extensions.feature_ablation import (
    AblatedFeaturizer,
    FEATURE_GROUPS,
)
from repro.extensions.imitation import ImitationDataset, ImitationSharder
from repro.extensions.mixed import (
    MixedClusterSharder,
    MixedCostModels,
    MixedShardingResult,
    pretrain_mixed_cost_models,
)
from repro.extensions.offline_rl import (
    OfflineDataset,
    OfflineLogEntry,
    OfflineRLSharder,
    collect_sharding_log,
)
from repro.extensions.guided import GuidedShardingResult, PolicyGuidedSharder

__all__ = [
    "GuidedShardingResult",
    "PolicyGuidedSharder",
    "OfflineDataset",
    "OfflineLogEntry",
    "OfflineRLSharder",
    "collect_sharding_log",
    "RowWisePreprocessor",
    "RowWiseDecision",
    "RowWiseSharder",
    "AblatedFeaturizer",
    "FEATURE_GROUPS",
    "ImitationDataset",
    "ImitationSharder",
    "MixedClusterSharder",
    "MixedCostModels",
    "MixedShardingResult",
    "pretrain_mixed_cost_models",
]
