"""Offline-RL sharding policy (paper Appendix H, strategy 3).

Appendix H's third sketch: *"Offline reinforcement learning: the idea is
to learn the optimal strategy based on offline data ... this can also be
applied to the offline sharding log."*  Unlike self-imitation
(:mod:`repro.extensions.imitation`), which clones only *good* plans, an
offline-RL learner consumes the **whole** log — good and bad plans with
their measured costs — and weights its updates by how much better than
the log average each plan was.

:class:`OfflineRLSharder` implements advantage-weighted regression (AWR),
a simple, stable offline-RL algorithm that fits this setting exactly:

1. **Log collection** (:func:`collect_sharding_log`) — run any mix of
   sharders (greedy heuristics, random, NeuroShard) on training tasks and
   record ``(task, plan, simulated cost)`` triples, mimicking the system
   log a production sharding service accumulates.
2. **Advantage weighting** — within each task's log entries, a plan's
   advantage is the (standardized) gap between the task's mean cost and
   its own cost; sample weights are ``exp(advantage / temperature)``,
   clipped for stability.  Plans worse than average get weights < 1,
   plans better than average dominate the gradient — which is how the
   policy can *exceed* the average demonstrator rather than imitate it.
3. **Weighted behaviour cloning** — the same decision-replay state
   encoding as the imitation sharder, but every logged decision's
   cross-entropy term is scaled by its plan's weight.
4. **Deployment** — one-pass greedy rollout with memory masking
   (inherited).

The comparison the extension benchmark draws: trained on a log of
*heuristic* plans only, the offline-RL policy beats the mean heuristic
because it preferentially reproduces the per-task winner's decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.tasks import ShardingTask
from repro.extensions.imitation import ImitationSharder
from repro.nn import Adam

__all__ = [
    "OfflineLogEntry",
    "OfflineDataset",
    "OfflineRLSharder",
    "collect_sharding_log",
]


@dataclass(frozen=True)
class OfflineLogEntry:
    """One line of the sharding system log.

    Attributes:
        task_index: which training task the plan answers (advantages are
            computed within a task; costs across tasks are not
            comparable).
        plan: the logged sharding plan.
        cost_ms: the plan's embedding cost — measured on hardware in
            production, simulated on the cost models here.
    """

    task_index: int
    plan: ShardingPlan
    cost_ms: float

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError(f"task_index must be >= 0, got {self.task_index}")
        if not np.isfinite(self.cost_ms) or self.cost_ms < 0:
            raise ValueError(f"cost_ms must be finite and >= 0, got {self.cost_ms}")


@dataclass
class OfflineDataset:
    """Flattened (state, action, weight) decisions from the log."""

    states: np.ndarray  # [N, F]
    actions: np.ndarray  # [N]
    weights: np.ndarray  # [N]

    def __post_init__(self) -> None:
        if not len(self.states) == len(self.actions) == len(self.weights):
            raise ValueError("states, actions and weights must align")
        if len(self.states) == 0:
            raise ValueError("empty offline dataset")
        if np.any(self.weights < 0):
            raise ValueError("weights must be >= 0")

    def __len__(self) -> int:
        return len(self.states)


def collect_sharding_log(
    tasks: Sequence[ShardingTask],
    sharders: Sequence,
    models: PretrainedCostModels,
) -> list[OfflineLogEntry]:
    """Run every sharder on every task; log feasible plans with costs.

    The cost recorded is the *simulated* embedding cost on the cost-model
    bundle — the offline-RL story only needs costs that rank plans
    consistently, and the simulator is what a production log would have
    attached to every historical job anyway.
    """
    simulator = NeuroShardSimulator(models, CostCache())
    log: list[OfflineLogEntry] = []
    for i, task in enumerate(tasks):
        for sharder in sharders:
            result = sharder.shard(task)
            plan = getattr(result, "plan", result)
            if plan is None or getattr(result, "feasible", True) is False:
                continue
            per_device = plan.per_device_tables(task.tables)
            cost = simulator.plan_cost(per_device).max_cost_ms
            log.append(OfflineLogEntry(task_index=i, plan=plan, cost_ms=cost))
    return log


class OfflineRLSharder(ImitationSharder):
    """Advantage-weighted regression on the sharding log.

    Args:
        models: the cost-model bundle (state featurization).
        temperature: AWR temperature; smaller concentrates weight on the
            per-task best plans (→ imitation of the winner), larger
            flattens towards plain behaviour cloning of everything.
        max_weight: weight clip for stability.
        hidden: policy MLP hidden sizes.
        seed: initialization seed.
    """

    name = "OfflineRL"

    def __init__(
        self,
        models: PretrainedCostModels,
        temperature: float = 0.5,
        max_weight: float = 20.0,
        hidden: tuple[int, ...] = (128, 64),
        seed: int = 0,
    ) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be > 0, got {temperature}")
        if max_weight <= 0:
            raise ValueError(f"max_weight must be > 0, got {max_weight}")
        super().__init__(models, hidden=hidden, seed=seed)
        self.temperature = temperature
        self.max_weight = max_weight

    # ------------------------------------------------------------------
    # dataset construction
    # ------------------------------------------------------------------

    def build_offline_dataset(
        self,
        tasks: Sequence[ShardingTask],
        log: Sequence[OfflineLogEntry],
    ) -> OfflineDataset:
        """Replay every logged plan; weight decisions by plan advantage.

        Advantages are standardized within each task: a task logged with
        one single plan contributes weight 1 (no signal either way).
        """
        if len(log) == 0:
            raise ValueError("empty sharding log")
        for entry in log:
            if entry.task_index >= len(tasks):
                raise ValueError(
                    f"log entry references task {entry.task_index} but only "
                    f"{len(tasks)} tasks were given"
                )
        simulator = NeuroShardSimulator(self.models, CostCache())

        # Per-task cost statistics for the advantage baseline.
        by_task: dict[int, list[float]] = {}
        for entry in log:
            by_task.setdefault(entry.task_index, []).append(entry.cost_ms)

        states, actions, weights = [], [], []
        for entry in log:
            costs = by_task[entry.task_index]
            mean = float(np.mean(costs))
            std = float(np.std(costs))
            if std > 0:
                advantage = (mean - entry.cost_ms) / std
                weight = float(
                    np.clip(
                        np.exp(advantage / self.temperature), 0.0, self.max_weight
                    )
                )
            else:
                weight = 1.0
            task = tasks[entry.task_index]
            sharded = entry.plan.sharded_tables(task.tables)
            s, a = self._replay(task, sharded, entry.plan.assignment, simulator)
            states.extend(s)
            actions.extend(a)
            weights.extend([weight] * len(a))
        return OfflineDataset(
            states=np.stack(states),
            actions=np.array(actions, dtype=np.int64),
            weights=np.array(weights, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # weighted behaviour cloning
    # ------------------------------------------------------------------

    def fit_offline(
        self,
        dataset: OfflineDataset,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
    ) -> list[float]:
        """Advantage-weighted cross-entropy; returns the loss curve."""
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        optimizer = Adam(self.policy.parameters(), lr=lr)
        n = len(dataset)
        curve = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                x = dataset.states[idx]
                y = dataset.actions[idx]
                w = dataset.weights[idx]
                logits = self.policy.forward(x)
                shifted = logits - logits.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                probs = exp / exp.sum(axis=1, keepdims=True)
                nll = -np.log(probs[np.arange(len(y)), y] + 1e-12)
                epoch_loss += float((w * nll).sum())
                grad = probs
                grad[np.arange(len(y)), y] -= 1.0
                grad *= (w / max(float(w.sum()), 1e-12))[:, None]
                optimizer.zero_grad()
                self.policy.backward(grad)
                optimizer.step()
            curve.append(epoch_loss / n)
        self._trained = True
        return curve

    def fit_from_log(
        self,
        tasks: Sequence[ShardingTask],
        sharders: Sequence,
        epochs: int = 60,
    ) -> list[float]:
        """Convenience: collect the log from ``sharders`` and train."""
        log = collect_sharding_log(tasks, sharders, self.models)
        if not log:
            raise RuntimeError("no sharder produced a feasible plan to log")
        return self.fit_offline(self.build_offline_dataset(tasks, log), epochs=epochs)
