"""Cost-model feature ablation (extension experiment).

Section 2.1 argues the computation cost depends on four factor groups —
dimension, hash size, pooling factor and the indices distribution.  This
module ablates feature groups from the featurizer so a benchmark can
train otherwise-identical cost models and quantify each group's
contribution to accuracy (DESIGN.md's "ablation benches for the design
choices").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.features import TableFeaturizer
from repro.data.table import TableConfig

__all__ = ["FEATURE_GROUPS", "AblatedFeaturizer"]

#: Feature-vector indices by semantic group (see TableFeaturizer docs).
FEATURE_GROUPS: dict[str, tuple[int, ...]] = {
    "dimension": (0, 1),
    "hash_size": (2,),
    "pooling": (3, 4, 5),
    "distribution": (6, 7, 8, 10, 11, 12),
    "size": (9,),
    "interaction": (13,),
}


class AblatedFeaturizer:
    """A :class:`TableFeaturizer` with selected feature groups zeroed.

    Zeroing (rather than removing) keeps the model architecture
    identical across ablations, so accuracy differences are attributable
    to information content alone.

    Args:
        batch_size: deployment batch size.
        drop_groups: names from :data:`FEATURE_GROUPS` to zero out.
    """

    def __init__(self, batch_size: int, drop_groups: Sequence[str]) -> None:
        unknown = set(drop_groups) - set(FEATURE_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown feature groups {sorted(unknown)}; expected "
                f"{sorted(FEATURE_GROUPS)}"
            )
        self._inner = TableFeaturizer(batch_size)
        self.drop_groups = tuple(drop_groups)
        self._mask = np.ones(self._inner.num_features)
        for group in drop_groups:
            for index in FEATURE_GROUPS[group]:
                self._mask[index] = 0.0

    @property
    def batch_size(self) -> int:
        return self._inner.batch_size

    @property
    def num_features(self) -> int:
        return self._inner.num_features

    def features(self, table: TableConfig) -> np.ndarray:
        return self._inner.features(table) * self._mask

    def features_rows(self, tables: Sequence[TableConfig]) -> list[np.ndarray]:
        return [self.features(t) for t in tables]

    def features_matrix(self, tables: Sequence[TableConfig]) -> np.ndarray:
        return self._inner.features_matrix(tables) * self._mask

    def clear_cache(self) -> None:
        self._inner.clear_cache()
