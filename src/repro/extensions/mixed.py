"""Mixed CPU-GPU sharding — the paper's Section 6 future work.

*"Also, we plan to investigate CPU sharding or mixed CPU-GPU sharding
scenarios."*  This module extends the "pre-train, and search" recipe to a
:class:`~repro.hardware.hetero.HeterogeneousCluster`:

**Pre-train** (:func:`pretrain_mixed_cost_models`): one computation cost
model *per device class* ("gpu", "cpu"), each trained exactly like the
homogeneous pipeline but with the micro-benchmark pointed at that class's
device.  Table augmentation already covers the dimension space, so no new
data machinery is needed — the once-for-all property carries over per
class.

**Search** (:class:`MixedClusterSharder`): a greedy allocation under a
grid-searched *drain-time* constraint:

- The computation objective is unchanged — assign each table to the
  device whose *predicted class-specific* cost ends up lowest
  (Observation 2 applies on every device class; the CPU's cost model is
  simply a different function).
- Observation 3 generalizes: on heterogeneous links the collective is
  gated by the slowest participant's drain time
  ``device_dim_d / bandwidth_d``, not by the raw max dimension.  The grid
  therefore constrains per-device *drain* rather than dimension.  We use
  the analytic drain proxy directly instead of training hetero comm
  models — the proxy is exactly the quantity Observation 3 shows the comm
  bottleneck tracks, and a per-cluster-shape comm model would have to be
  retrained for every device mix (documented deviation).
- Memory is per-device: the CPU's huge budget is what absorbs tables no
  GPU can hold.
- An outer column-wise loop (width-1 beam, ``max_steps`` splits of the
  currently most costly splittable table) handles tables that are
  oversized or dominate the bottleneck, mirroring the homogeneous beam
  search's role at a fraction of its cost.

The ground truth for evaluating the resulting plans is
:meth:`~repro.hardware.hetero.HeterogeneousCluster.evaluate_plan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import ClusterConfig, CollectionConfig, TrainConfig, spawn_rngs
from repro.core.cache import CostCache
from repro.costmodel.collect import collect_compute_data
from repro.costmodel.compute_model import ComputeCostModel
from repro.costmodel.features import TableFeaturizer
from repro.costmodel.pretrain import fit_standardized
from repro.data.pool import TablePool
from repro.data.table import TableConfig, table_set_key
from repro.hardware.cluster import SimulatedCluster
from repro.hardware.hetero import HeterogeneousCluster
from repro.nn.train import Trainer, TrainResult

__all__ = [
    "MixedCostModels",
    "MixedShardingResult",
    "MixedClusterSharder",
    "pretrain_mixed_cost_models",
]


@dataclass
class MixedCostModels:
    """Per-device-class computation cost models for a mixed cluster.

    Attributes:
        by_class: class name ("gpu" / "cpu") → trained compute model.
        featurizer: shared table featurizer (batch size is part of the
            model contract).
        reports: class name → training outcome, for accuracy reporting.
        batch_size: deployment batch size the models were trained at.
    """

    by_class: Mapping[str, ComputeCostModel]
    featurizer: TableFeaturizer
    reports: Mapping[str, TrainResult]
    batch_size: int

    def model_for(self, klass: str) -> ComputeCostModel:
        try:
            return self.by_class[klass]
        except KeyError:
            raise KeyError(
                f"no cost model for device class {klass!r}; trained classes: "
                f"{sorted(self.by_class)}"
            ) from None


def pretrain_mixed_cost_models(
    cluster: HeterogeneousCluster,
    pool: TablePool,
    collection: CollectionConfig | None = None,
    train: TrainConfig | None = None,
    seed: int = 0,
) -> MixedCostModels:
    """Train one computation cost model per device class of ``cluster``.

    For each distinct class, the micro-benchmark runs on a single-device
    :class:`~repro.hardware.cluster.SimulatedCluster` built from the first
    device of that class (classes are homogeneous within themselves), with
    the same combination generator, featurizer, and training protocol as
    the homogeneous pipeline.
    """
    collection = collection or CollectionConfig()
    train_cfg = train or TrainConfig()
    featurizer = TableFeaturizer(batch_size=cluster.batch_size)
    trainer = Trainer(train_cfg)

    classes: dict[str, int] = {}
    for d, klass in enumerate(cluster.device_classes):
        classes.setdefault(klass, d)

    by_class: dict[str, ComputeCostModel] = {}
    reports: dict[str, TrainResult] = {}
    for i, (klass, device_index) in enumerate(sorted(classes.items())):
        rng_collect, rng_init, rng_split, rng_fit = spawn_rngs(seed + i, 4)
        spec = cluster.specs[device_index]
        bench = SimulatedCluster(
            ClusterConfig(
                num_devices=1,
                memory_bytes=cluster.memory_budgets[device_index],
                batch_size=cluster.batch_size,
            ),
            spec=spec,
            noise_seed=cluster.noise_seed,
        )
        data = collect_compute_data(bench, pool, featurizer, collection, rng_collect)
        model = ComputeCostModel(num_features=featurizer.num_features, rng=rng_init)
        reports[klass] = fit_standardized(
            model,
            data,
            trainer,
            train_cfg.train_frac,
            train_cfg.valid_frac,
            rng_split,
            int(rng_fit.integers(2**31)),
        )
        by_class[klass] = model
    return MixedCostModels(
        by_class=by_class,
        featurizer=featurizer,
        reports=reports,
        batch_size=cluster.batch_size,
    )


@dataclass(frozen=True)
class MixedShardingResult:
    """Outcome of mixed-cluster sharding.

    Attributes:
        feasible: a memory-legal placement exists.
        per_device: table sets per device (after column splits).
        predicted_bottleneck_ms: the search's estimate of the bottleneck
            device cost (class-specific compute + drain proxy).
        column_splits: how many column-wise splits the outer loop applied.
        cache_hit_rate: computation-cost cache hit rate during the search.
        assignment: device index per (post-split) table, in the same
            replace-and-append order :func:`repro.core.plan.apply_column_plan`
            produces (``None`` when infeasible).
        column_plan: the split steps that produced the assigned table
            list, expressed in :class:`~repro.core.plan.ShardingPlan`'s
            column-plan convention.
    """

    feasible: bool
    per_device: tuple[tuple[TableConfig, ...], ...]
    predicted_bottleneck_ms: float
    column_splits: int
    cache_hit_rate: float
    assignment: tuple[int, ...] | None = None
    column_plan: tuple[int, ...] = ()

    @property
    def device_dims(self) -> tuple[int, ...]:
        return tuple(sum(t.dim for t in dev) for dev in self.per_device)


class MixedClusterSharder:
    """Greedy mixed CPU-GPU sharder on per-class pre-trained cost models.

    Args:
        cluster: the heterogeneous cluster (shapes, classes and memory
            budgets; never probed for costs during search).
        models: per-class cost models from
            :func:`pretrain_mixed_cost_models`.
        grid_points: drain-constraint grid resolution (``M`` analogue).
        grid_end_factor: grid upper bound as a multiple of the average
            drain (1.5, as in the paper's ``Me = 1.5 * Ms``).
        max_steps: column-wise split budget of the outer loop (``L``
            analogue).
        comm_weight: weight of the drain proxy in the bottleneck estimate.
            The proxy is in milliseconds already (bytes / bandwidth), so
            1.0 treats predicted compute and drain equally.
    """

    def __init__(
        self,
        cluster: HeterogeneousCluster,
        models: MixedCostModels,
        grid_points: int = 8,
        grid_end_factor: float = 1.5,
        max_steps: int = 6,
        comm_weight: float = 1.0,
    ) -> None:
        if grid_points < 1:
            raise ValueError(f"grid_points must be >= 1, got {grid_points}")
        if grid_end_factor < 1.0:
            raise ValueError(
                f"grid_end_factor must be >= 1.0, got {grid_end_factor}"
            )
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        if comm_weight < 0:
            raise ValueError(f"comm_weight must be >= 0, got {comm_weight}")
        for klass in set(cluster.device_classes):
            models.model_for(klass)  # fail fast on a missing class
        self.cluster = cluster
        self.models = models
        self.grid_points = grid_points
        self.grid_end_factor = grid_end_factor
        self.max_steps = max_steps
        self.comm_weight = comm_weight
        # One cache per device class: the same table set has a different
        # cost on a CPU than on a GPU, so keys must not collide.
        self._caches = {k: CostCache() for k in set(cluster.device_classes)}

    # ------------------------------------------------------------------
    # cost prediction
    # ------------------------------------------------------------------

    def _predict_compute(
        self, klass: str, table_sets: Sequence[Sequence[TableConfig]]
    ) -> list[float]:
        """Cached class-specific compute predictions for device sets."""
        cache = self._caches[klass]
        model = self.models.model_for(klass)
        costs: list[float | None] = []
        missing: list[int] = []
        keys = []
        for i, tables in enumerate(table_sets):
            if len(tables) == 0:
                costs.append(0.0)
                continue
            key = table_set_key(tables)
            cached = cache.get(key)
            costs.append(cached)
            if cached is None:
                missing.append(i)
                keys.append(key)
        if missing:
            matrices = [
                self.models.featurizer.features_matrix(list(table_sets[i]))
                for i in missing
            ]
            preds = np.maximum(model.predict_many(matrices), 1e-3)
            for i, key, value in zip(missing, keys, preds):
                cache.put(key, float(value))
                costs[i] = float(value)
        return [float(c) for c in costs]  # type: ignore[arg-type]

    def _drain_ms(self, device: int, device_dim: int) -> float:
        """Analytic all-to-all drain proxy for one device (Observation 3
        generalized to heterogeneous links)."""
        spec = self.cluster.specs[device]
        num_devices = self.cluster.num_devices
        if num_devices == 1:
            return 0.0
        peer_fraction = (num_devices - 1) / num_devices
        volume = device_dim * self.cluster.batch_size * 4.0 * peer_fraction
        return volume / spec.comm_bandwidth_bytes_per_ms

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def shard(self, tables: Sequence[TableConfig]) -> MixedShardingResult:
        """Search for the best mixed placement of ``tables``.

        Outer loop: up to ``max_steps`` column splits of the currently
        most costly splittable table; inner loop: greedy allocation under
        the grid-searched drain constraint.  Returns the best placement
        found across all outer steps.
        """
        if len(tables) == 0:
            raise ValueError("cannot shard an empty table list")
        current = list(tables)
        best: MixedShardingResult | None = None
        splits = 0
        split_history: list[int] = []
        for step in range(self.max_steps + 1):
            candidate = self._grid_search(current, splits, tuple(split_history))
            if candidate.feasible and (
                best is None
                or not best.feasible
                or candidate.predicted_bottleneck_ms < best.predicted_bottleneck_ms
            ):
                best = candidate
            elif best is None:
                best = candidate
            if step == self.max_steps:
                break
            split_index = self._pick_split(current)
            if split_index is None:
                break
            a, b = current[split_index].halved()
            current = (
                current[: split_index]
                + [a]
                + current[split_index + 1 :]
                + [b]
            )
            split_history.append(split_index)
            splits += 1
        assert best is not None
        return best

    def _pick_split(self, tables: list[TableConfig]) -> int | None:
        """Index of the most costly splittable table (GPU-class cost),
        breaking ties towards the largest size; ``None`` if none can."""
        splittable = [i for i, t in enumerate(tables) if t.can_halve]
        if not splittable:
            return None
        klass = "gpu" if "gpu" in self._caches else next(iter(self._caches))
        costs = self._predict_compute(klass, [[tables[i]] for i in splittable])
        ranked = sorted(
            zip(splittable, costs),
            key=lambda ic: (-ic[1], -tables[ic[0]].size_bytes),
        )
        return ranked[0][0]

    def _grid_search(
        self,
        tables: Sequence[TableConfig],
        splits: int,
        column_plan: tuple[int, ...] = (),
    ) -> MixedShardingResult:
        """Inner loop: greedy allocation under a drain-constraint grid."""
        num_devices = self.cluster.num_devices
        # Average drain if dimensions were spread evenly over devices,
        # each draining at its own link speed.
        total_dim = sum(t.dim for t in tables)
        avg_dim = total_dim / num_devices
        drains = [self._drain_ms(d, int(avg_dim)) for d in range(num_devices)]
        ms = max(float(np.mean(drains)), 1e-9)
        me = self.grid_end_factor * ms
        if self.grid_points == 1:
            grid = [ms]
        else:
            grid = list(np.linspace(ms, me, self.grid_points))
        grid.append(math.inf)

        # Sort by GPU-class single-table cost (the class most tables land
        # on); CPUs see the same ordering, which only affects tie-breaks.
        klass0 = "gpu" if "gpu" in self._caches else next(iter(self._caches))
        singles = self._predict_compute(klass0, [[t] for t in tables])
        order = np.argsort(-np.asarray(singles), kind="stable")

        lookups_before = sum(c.lookups for c in self._caches.values())
        hits_before = sum(c.hits for c in self._caches.values())

        best_cost = math.inf
        best_assignment: tuple[int, ...] | None = None
        for max_drain in grid:
            assignment = self._greedy_assign(tables, order, max_drain)
            if assignment is None:
                continue
            cost = self._bottleneck(tables, assignment)
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment

        lookups = sum(c.lookups for c in self._caches.values()) - lookups_before
        hits = sum(c.hits for c in self._caches.values()) - hits_before
        hit_rate = hits / lookups if lookups else 0.0

        if best_assignment is None:
            return MixedShardingResult(
                feasible=False,
                per_device=tuple(() for _ in range(num_devices)),
                predicted_bottleneck_ms=math.inf,
                column_splits=splits,
                cache_hit_rate=hit_rate,
                column_plan=column_plan,
            )
        per_device: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        for ti, d in enumerate(best_assignment):
            per_device[d].append(tables[ti])
        return MixedShardingResult(
            feasible=True,
            per_device=tuple(tuple(dev) for dev in per_device),
            predicted_bottleneck_ms=best_cost,
            column_splits=splits,
            cache_hit_rate=hit_rate,
            assignment=best_assignment,
            column_plan=column_plan,
        )

    def _greedy_assign(
        self,
        tables: Sequence[TableConfig],
        order: np.ndarray,
        max_drain: float,
    ) -> tuple[int, ...] | None:
        """One greedy pass under a per-device drain constraint."""
        num_devices = self.cluster.num_devices
        classes = self.cluster.device_classes
        device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        device_bytes = [0] * num_devices
        device_dims = [0] * num_devices
        assignment = [0] * len(tables)
        memories = [slot.memory for slot in self.cluster.devices]

        for ti in order:
            table = tables[ti]
            candidates = []
            for d in range(num_devices):
                t_bytes = memories[d].table_bytes(table)
                if device_bytes[d] + t_bytes > memories[d].memory_bytes:
                    continue
                if self._drain_ms(d, device_dims[d] + table.dim) > max_drain:
                    continue
                candidates.append(d)
            if not candidates:
                return None
            # Bottleneck-aware greedy: the winning device is the one whose
            # class-specific (compute + drain) cost ends up lowest.
            scores = []
            for d in candidates:
                compute = self._predict_compute(
                    classes[d], [device_tables[d] + [table]]
                )[0]
                drain = self._drain_ms(d, device_dims[d] + table.dim)
                scores.append(compute + self.comm_weight * drain)
            best = candidates[int(np.argmin(scores))]
            device_tables[best].append(table)
            device_bytes[best] += memories[best].table_bytes(table)
            device_dims[best] += table.dim
            assignment[ti] = best
        return tuple(assignment)

    def _bottleneck(
        self, tables: Sequence[TableConfig], assignment: Sequence[int]
    ) -> float:
        """Predicted bottleneck cost of a completed assignment."""
        num_devices = self.cluster.num_devices
        classes = self.cluster.device_classes
        per_device: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        for ti, d in enumerate(assignment):
            per_device[d].append(tables[ti])
        worst = 0.0
        for d in range(num_devices):
            compute = self._predict_compute(classes[d], [per_device[d]])[0]
            drain = self._drain_ms(d, sum(t.dim for t in per_device[d]))
            worst = max(worst, compute + self.comm_weight * drain)
        return worst
