"""Policy-guided search — Appendix H's closing idea.

*"Note that the reinforcement learning meta-policy could also be combined
with search to guide the search process."*  The expensive part of the
online search is computation-cost prediction (Section 3.3 counts
``O(L K N M T D)`` cost-model calls); a learned policy can *prune* the
candidate space so far fewer predictions are needed.

:class:`PolicyGuidedSharder` implements the inner-loop version of that
idea.  The vanilla greedy allocation scores **every** memory-feasible
device with the cost model at each step (``D`` predictions per table).
Here a trained policy (the behaviour-cloned or offline-RL policy from
:mod:`repro.extensions.imitation` / :mod:`repro.extensions.offline_rl`)
first ranks the devices, and only its top ``device_top_k`` feasible
choices are verified with the cost model — the policy proposes, the cost
model disposes.  With ``device_top_k = 1`` this degenerates to the pure
policy rollout; with ``device_top_k = D`` it is exactly the vanilla
greedy.  The grid search over the max-device-dimension constraint
(Observation 3) is retained unchanged.

The trade this buys, quantified by the extension benchmark: ~``D /
device_top_k``-fold fewer cost-model predictions per task at a small
(often zero) cost premium over the unguided greedy — attractive when one
service shards thousands of model variants a day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.base import assignment_to_plan
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.extensions.imitation import ImitationSharder
from repro.hardware.memory import MemoryModel

__all__ = ["GuidedShardingResult", "PolicyGuidedSharder"]


@dataclass(frozen=True)
class GuidedShardingResult:
    """A guided-search outcome plus its efficiency diagnostics.

    Attributes:
        plan: the sharding plan (``None`` when infeasible).
        simulated_cost_ms: the cost models' estimate of the plan.
        evaluations: cost-model device-set predictions made (cache
            misses); the quantity guidance reduces.
        policy_agreement: fraction of decisions where the cost model
            confirmed the policy's first choice — a live health metric
            for the policy (low agreement means the policy has drifted
            from the cost landscape and should be re-cloned).
    """

    plan: ShardingPlan | None
    simulated_cost_ms: float
    evaluations: int
    policy_agreement: float


class PolicyGuidedSharder:
    """Greedy grid search with policy-pruned device candidates.

    Args:
        models: the pre-trained cost-model bundle.
        policy: a *trained* policy sharder whose network ranks devices
            (:class:`~repro.extensions.imitation.ImitationSharder` or its
            offline-RL subclass).
        device_top_k: how many policy-ranked devices the cost model
            verifies per decision (1 = trust the policy, D = vanilla
            greedy).
        grid_points: max-dimension grid resolution (``M`` analogue).
        grid_end_factor: grid upper bound as a multiple of the average
            device dimension (paper: 1.5).
    """

    name = "PolicyGuided"

    def __init__(
        self,
        models: PretrainedCostModels,
        policy: ImitationSharder,
        device_top_k: int = 2,
        grid_points: int = 5,
        grid_end_factor: float = 1.5,
    ) -> None:
        if device_top_k < 1:
            raise ValueError(f"device_top_k must be >= 1, got {device_top_k}")
        if grid_points < 1:
            raise ValueError(f"grid_points must be >= 1, got {grid_points}")
        if grid_end_factor < 1.0:
            raise ValueError(
                f"grid_end_factor must be >= 1.0, got {grid_end_factor}"
            )
        if not getattr(policy, "_trained", False):
            raise ValueError(
                "policy must be trained (fit()/fit_from_search()/"
                "fit_from_log()) before it can guide the search"
            )
        if policy.models.num_devices != models.num_devices:
            raise ValueError(
                f"policy is for {policy.models.num_devices} devices, models "
                f"for {models.num_devices}"
            )
        self.models = models
        self.policy = policy
        self.device_top_k = device_top_k
        self.grid_points = grid_points
        self.grid_end_factor = grid_end_factor

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        """Sharder-protocol entry point (plan only)."""
        return self.shard_with_stats(task).plan

    def shard_with_stats(self, task: ShardingTask) -> GuidedShardingResult:
        """Run the guided search, reporting efficiency diagnostics."""
        if task.num_devices != self.models.num_devices:
            raise ValueError(
                f"task has {task.num_devices} devices but the cost models "
                f"were pre-trained for {self.models.num_devices}"
            )
        cache = CostCache()
        simulator = NeuroShardSimulator(self.models, cache)
        memory = MemoryModel(task.memory_bytes)
        tables = list(task.tables)
        num_devices = task.num_devices

        singles = simulator.single_table_costs(tables)
        order = np.argsort(-singles, kind="stable")

        avg_dim = sum(t.dim for t in tables) / num_devices
        ms = max(avg_dim, 1.0)
        me = self.grid_end_factor * ms
        if self.grid_points == 1:
            grid: list[float] = [ms]
        else:
            grid = list(np.linspace(ms, me, self.grid_points))
        grid.append(math.inf)

        best_cost = math.inf
        best_assignment: tuple[int, ...] | None = None
        agreements = 0
        decisions = 0
        for max_dim in grid:
            if math.isfinite(max_dim) and max(t.dim for t in tables) > max_dim:
                continue
            outcome = self._guided_assign(
                tables, order, simulator, memory, max_dim
            )
            if outcome is None:
                continue
            assignment, agreed, total = outcome
            agreements += agreed
            decisions += total
            per_device: list[list[TableConfig]] = [
                [] for _ in range(num_devices)
            ]
            for ti, d in enumerate(assignment):
                per_device[d].append(tables[ti])
            cost = simulator.plan_cost(per_device).max_cost_ms
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment

        evaluations = cache.misses
        agreement = agreements / decisions if decisions else 0.0
        if best_assignment is None:
            return GuidedShardingResult(
                plan=None,
                simulated_cost_ms=math.inf,
                evaluations=evaluations,
                policy_agreement=agreement,
            )
        return GuidedShardingResult(
            plan=assignment_to_plan(best_assignment, num_devices),
            simulated_cost_ms=best_cost,
            evaluations=evaluations,
            policy_agreement=agreement,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _guided_assign(
        self,
        tables: Sequence[TableConfig],
        order: np.ndarray,
        simulator: NeuroShardSimulator,
        memory: MemoryModel,
        max_dim: float,
    ) -> tuple[tuple[int, ...], int, int] | None:
        """One policy-pruned greedy pass under a ``max_dim`` constraint.

        Returns ``(assignment, policy_agreements, decisions)`` or
        ``None`` when some table has no candidate device.
        """
        num_devices = self.models.num_devices
        featurizer = self.models.featurizer
        total_dim = sum(t.dim for t in tables)

        device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        device_costs = [0.0] * num_devices
        device_dims = [0] * num_devices
        device_bytes = [0] * num_devices
        assignment = [0] * len(tables)
        agreements = 0
        decisions = 0

        for ti in order:
            table = tables[ti]
            t_bytes = memory.table_bytes(table)
            feasible = [
                d
                for d in range(num_devices)
                if device_bytes[d] + t_bytes <= memory.memory_bytes
                and device_dims[d] + table.dim <= max_dim
            ]
            if not feasible:
                return None

            # The policy ranks the feasible devices...
            state = self.policy._state(
                featurizer.features(table),
                device_costs,
                device_dims,
                device_bytes,
                memory.memory_bytes,
                total_dim,
            )
            logits = self.policy.policy.forward(state[None, :])[0]
            ranked = sorted(feasible, key=lambda d: -logits[d])
            candidates = ranked[: self.device_top_k]

            # ...and the cost model verifies only the shortlist.
            resulting = [device_tables[d] + [table] for d in candidates]
            costs = simulator.device_compute_costs(resulting)
            best = candidates[int(np.argmin(costs))]
            decisions += 1
            if best == ranked[0]:
                agreements += 1

            device_tables[best].append(table)
            device_bytes[best] += t_bytes
            device_dims[best] += table.dim
            assignment[ti] = best
            device_costs[best] = float(costs[candidates.index(best)])
        return tuple(assignment), agreements, decisions
