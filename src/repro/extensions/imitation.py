"""Self-imitation sharding policy (paper Appendix H).

Appendix H sketches how reinforcement learning could come back on top of
"pre-train, and search": "select good sharding plans from the system log
and use supervised losses to train a policy" (self-imitation /
offline-RL on sharding logs).  The payoff is *amortization* — the beam
search takes seconds per task, while a distilled policy assigns tables
in one forward pass per table, useful when thousands of models are
sharded daily.

:class:`ImitationSharder` implements that loop:

1. **Log generation** — run NeuroShard's search on training tasks and
   record (state, device) pairs from its plans' greedy reconstruction.
2. **Behaviour cloning** — train an MLP policy with cross-entropy on the
   logged decisions (the supervised loss of Appendix H).
3. **Deployment** — shard unseen tasks by argmax policy rollout, with
   memory-infeasible devices masked.

The policy is table-wise only (it imitates the placement, not the
column splits), so it composes with NeuroShard's column-wise plan or the
row-wise preprocessor when oversized tables are present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.base import assignment_to_plan
from repro.config import rng_from_seed
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel
from repro.nn import Adam, Sequential

__all__ = ["ImitationDataset", "ImitationSharder"]

_DEVICE_FEATURES = 3


@dataclass
class ImitationDataset:
    """Logged (state, action) decisions from demonstration plans."""

    states: np.ndarray  # [N, F]
    actions: np.ndarray  # [N]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.actions):
            raise ValueError("states and actions must align")
        if len(self.states) == 0:
            raise ValueError("empty imitation dataset")

    def __len__(self) -> int:
        return len(self.states)


class ImitationSharder:
    """Behaviour-cloned table-wise sharding policy.

    Args:
        models: the cost-model bundle (used to featurize states the same
            way the demonstrations were featurized).
        hidden: policy MLP hidden sizes.
        seed: initialization/rollout seed.
    """

    name = "Imitation"

    def __init__(
        self,
        models: PretrainedCostModels,
        hidden: tuple[int, ...] = (128, 64),
        seed: int = 0,
    ) -> None:
        self.models = models
        self._rng = rng_from_seed(seed)
        input_dim = (
            models.featurizer.num_features
            + _DEVICE_FEATURES * models.num_devices
        )
        self.policy = Sequential.mlp(
            [input_dim, *hidden, models.num_devices],
            rng=self._rng,
            name="imitation",
        )
        self._trained = False

    # ------------------------------------------------------------------
    # state encoding (shared between logging and deployment)
    # ------------------------------------------------------------------

    def _state(
        self,
        table_features: np.ndarray,
        device_costs: Sequence[float],
        device_dims: Sequence[int],
        device_bytes: Sequence[int],
        memory_bytes: int,
        total_dim: int,
    ) -> np.ndarray:
        dev = []
        for cost, dim, used in zip(device_costs, device_dims, device_bytes):
            dev.extend(
                (cost / 10.0, dim / max(total_dim, 1), used / memory_bytes)
            )
        return np.concatenate([table_features, np.array(dev)])

    def _replay(
        self,
        task: ShardingTask,
        tables: Sequence[TableConfig],
        assignment: Sequence[int],
        simulator: NeuroShardSimulator,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Reconstruct the greedy decision sequence of a finished plan.

        Tables are replayed in the search's descending-predicted-cost
        order; at each step the state is what the policy would see and
        the "action" is the device the demonstration plan chose.
        """
        memory = MemoryModel(task.memory_bytes)
        featurizer = self.models.featurizer
        num_devices = task.num_devices
        total_dim = sum(t.dim for t in tables)
        singles = simulator.single_table_costs(list(tables))
        order = np.argsort(-singles, kind="stable")

        device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        device_costs = [0.0] * num_devices
        device_dims = [0] * num_devices
        device_bytes = [0] * num_devices
        states, actions = [], []
        for ti in order:
            table = tables[ti]
            states.append(
                self._state(
                    featurizer.features(table),
                    device_costs,
                    device_dims,
                    device_bytes,
                    memory.memory_bytes,
                    total_dim,
                )
            )
            action = int(assignment[ti])
            actions.append(action)
            device_tables[action].append(table)
            device_bytes[action] += memory.table_bytes(table)
            device_dims[action] += table.dim
            device_costs[action] = simulator.device_compute_cost(
                device_tables[action]
            )
        return states, actions

    # ------------------------------------------------------------------
    # log generation + behaviour cloning
    # ------------------------------------------------------------------

    def build_dataset(
        self,
        tasks: Sequence[ShardingTask],
        demonstrations: Sequence[ShardingPlan],
    ) -> ImitationDataset:
        """Turn demonstration plans into a supervised dataset."""
        if len(tasks) != len(demonstrations):
            raise ValueError(
                f"{len(tasks)} tasks but {len(demonstrations)} demonstrations"
            )
        simulator = NeuroShardSimulator(self.models, CostCache())
        states, actions = [], []
        for task, plan in zip(tasks, demonstrations):
            sharded = plan.sharded_tables(task.tables)
            s, a = self._replay(task, sharded, plan.assignment, simulator)
            states.extend(s)
            actions.extend(a)
        return ImitationDataset(
            states=np.stack(states), actions=np.array(actions, dtype=np.int64)
        )

    def fit(
        self,
        dataset: ImitationDataset,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
    ) -> list[float]:
        """Cross-entropy behaviour cloning; returns the loss curve."""
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        optimizer = Adam(self.policy.parameters(), lr=lr)
        n = len(dataset)
        curve = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                x = dataset.states[idx]
                y = dataset.actions[idx]
                logits = self.policy.forward(x)
                shifted = logits - logits.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                probs = exp / exp.sum(axis=1, keepdims=True)
                nll = -np.log(probs[np.arange(len(y)), y] + 1e-12)
                epoch_loss += float(nll.sum())
                grad = probs
                grad[np.arange(len(y)), y] -= 1.0
                grad /= len(y)
                optimizer.zero_grad()
                self.policy.backward(grad)
                optimizer.step()
            curve.append(epoch_loss / n)
        self._trained = True
        return curve

    def fit_from_search(
        self,
        sharder,
        tasks: Sequence[ShardingTask],
        epochs: int = 60,
    ) -> list[float]:
        """Convenience: run a teacher sharder on tasks, clone its plans.

        Tasks the teacher cannot solve are skipped (self-imitation keeps
        only *good* episodes, per Appendix H).
        """
        kept_tasks, demos = [], []
        for task in tasks:
            result = sharder.shard(task)
            plan = getattr(result, "plan", result)
            if plan is None or getattr(result, "feasible", True) is False:
                continue
            kept_tasks.append(task)
            demos.append(plan)
        if not demos:
            raise RuntimeError("teacher solved none of the training tasks")
        return self.fit(self.build_dataset(kept_tasks, demos), epochs=epochs)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        """One-pass policy rollout (no search)."""
        if not self._trained:
            raise RuntimeError("call fit()/fit_from_search() before shard()")
        if task.num_devices != self.models.num_devices:
            raise ValueError(
                f"policy is for {self.models.num_devices} devices, task has "
                f"{task.num_devices}"
            )
        simulator = NeuroShardSimulator(self.models, CostCache())
        memory = MemoryModel(task.memory_bytes)
        featurizer = self.models.featurizer
        tables = list(task.tables)
        num_devices = task.num_devices
        total_dim = sum(t.dim for t in tables)
        singles = simulator.single_table_costs(tables)
        order = np.argsort(-singles, kind="stable")

        device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        device_costs = [0.0] * num_devices
        device_dims = [0] * num_devices
        device_bytes = [0] * num_devices
        assignment = [0] * len(tables)
        for ti in order:
            table = tables[ti]
            t_bytes = memory.table_bytes(table)
            mask = np.array(
                [
                    device_bytes[d] + t_bytes <= memory.memory_bytes
                    for d in range(num_devices)
                ]
            )
            if not mask.any():
                return None
            state = self._state(
                featurizer.features(table),
                device_costs,
                device_dims,
                device_bytes,
                memory.memory_bytes,
                total_dim,
            )
            logits = self.policy.forward(state[None, :])[0]
            logits = np.where(mask, logits, -np.inf)
            action = int(np.argmax(logits))
            assignment[ti] = action
            device_tables[action].append(table)
            device_bytes[action] += t_bytes
            device_dims[action] += table.dim
            device_costs[action] = simulator.device_compute_cost(
                device_tables[action]
            )
        return assignment_to_plan(assignment, num_devices)
