"""Online resharding policies: *when* to call the lifecycle service.

The strategy registry made algorithms pluggable and the scenario
registry made workloads pluggable; this registry does the same for the
third axis — the **decision rule** that watches a drifting cluster and
chooses the moment to pay a migration.  A policy never computes a plan:
it only answers "reshard now?" and the simulation runner drives
:meth:`~repro.api.service.ShardingService.reshard` under the migration
budget when it says yes.

Built-ins:

- ``immediate`` — reshard the instant anything is pending (the replay
  harness's behaviour; the zero-latency upper bound on migration spend).
- ``periodic`` — batch pending changes into fixed maintenance windows.
- ``drift_threshold`` — act on evidence: a
  :class:`~repro.costmodel.drift.DriftReport` crossing its threshold or
  the serving cost degrading past a ratio of the post-reshard baseline.
- ``cost_of_delay`` — integrate the regret of *not* resharding
  (serving-cost excess plus unplaced-table backlog) and act when it
  exceeds λ times the estimated migration cost.

Every policy reshards unconditionally when the applied plan no longer
fits the (possibly shrunk) device budget — a capacity violation is not a
judgement call.

Registering a policy is one decorator on a factory::

    @register_policy("my_rule", description="when to reshard")
    def _make(**kwargs) -> OnlinePolicy:
        return MyRule(**kwargs)

Factories take keyword knobs only, so CLI/benchmark callers can build
any policy from a name plus a ``key=value`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.costmodel.drift import DriftReport

__all__ = [
    "OnlinePolicy",
    "PolicyInfo",
    "PolicyObservation",
    "UnknownPolicyError",
    "available_policies",
    "iter_policies",
    "make_policy",
    "policy_info",
    "register_policy",
]


@dataclass(frozen=True)
class PolicyObservation:
    """What a policy sees at one decision point.

    Attributes:
        time_hours: simulated time of the decision point.
        hours_since_reshard: time since the last applied plan change
            (since t=0 before any reshard).
        serving_cost_ms: current simulated serving cost (traffic,
            pending stats overlays and machine slowdowns included).
        baseline_cost_ms: serving cost observed right after the last
            plan change — the "what resharding bought us" reference.
        slo_ms: the simulation's serving-cost SLO.
        traffic_multiplier: current load factor.
        pending_adds / pending_removes / pending_updates: accumulated
            workload-delta sizes awaiting a reshard.
        pending_add_mb: megabytes of unplaced added tables.
        pending_memory_change: a capacity change awaits the reshard path.
        over_budget: the applied plan no longer fits the pending budget.
        estimated_migration_ms: priced lower bound of the pending
            migration (added bytes over the device interconnect).
        drift: the latest drift probe seen since the last reshard.
    """

    time_hours: float
    hours_since_reshard: float
    serving_cost_ms: float
    baseline_cost_ms: float
    slo_ms: float
    traffic_multiplier: float
    pending_adds: int
    pending_removes: int
    pending_updates: int
    pending_add_mb: float
    pending_memory_change: bool
    over_budget: bool
    estimated_migration_ms: float
    drift: DriftReport | None = None

    @property
    def pending(self) -> bool:
        """Anything at all awaiting the reshard path."""
        return (
            self.pending_adds > 0
            or self.pending_removes > 0
            or self.pending_updates > 0
            or self.pending_memory_change
        )


class OnlinePolicy:
    """Base class: a (possibly stateful) reshard decision rule.

    Subclasses override :meth:`decide`; stateful rules also override
    :meth:`reset` and :meth:`notify_reshard`.
    """

    #: Registry name, stamped by :func:`make_policy`.
    name: str = "?"

    def reset(self) -> None:
        """Forget accumulated state (called once before a simulation)."""

    def decide(self, obs: PolicyObservation) -> str | None:
        """Return a short reason to reshard now, or ``None`` to wait.

        Called after every state-changing event batch and every policy
        tick.  The runner only acts on a reason when something is
        pending (an empty reshard is a no-op it refuses to pay a plan
        version for).
        """
        raise NotImplementedError

    def notify_reshard(self, obs: PolicyObservation) -> None:
        """Hook invoked after a reshard attempt at ``obs.time_hours``."""


def _capacity_reason(obs: PolicyObservation) -> str | None:
    """The rule shared by every built-in: never serve over budget."""
    if obs.over_budget:
        return "over budget"
    return None


class ImmediatePolicy(OnlinePolicy):
    """Reshard the instant anything is pending (the replay behaviour)."""

    def decide(self, obs: PolicyObservation) -> str | None:
        if obs.pending:
            return "pending change"
        return None


class PeriodicPolicy(OnlinePolicy):
    """Batch pending changes into fixed maintenance windows.

    Args:
        interval_hours: minimum spacing between reshards.
    """

    def __init__(self, interval_hours: float = 6.0) -> None:
        if interval_hours <= 0:
            raise ValueError(
                f"interval_hours must be > 0, got {interval_hours}"
            )
        self.interval_hours = float(interval_hours)

    def decide(self, obs: PolicyObservation) -> str | None:
        reason = _capacity_reason(obs)
        if reason:
            return reason
        if obs.pending and obs.hours_since_reshard >= self.interval_hours:
            return f"window ({self.interval_hours:g}h)"
        return None


class DriftThresholdPolicy(OnlinePolicy):
    """Act on drift evidence, not on a schedule.

    Triggers when a :class:`~repro.costmodel.drift.DriftReport` (from a
    workload delta or a live :meth:`~repro.costmodel.drift.DriftMonitor
    .probe` the runner feeds in) crosses the MSE threshold or recommends
    retraining — or when the serving cost itself has degraded past
    ``degradation_ratio`` × the post-reshard baseline.

    Args:
        threshold_mse: rolling-MSE level that counts as drifted.
        degradation_ratio: serving-cost growth (vs baseline) that counts
            as drifted even without a probe.
    """

    def __init__(
        self,
        threshold_mse: float = 1.0,
        degradation_ratio: float = 1.25,
    ) -> None:
        if threshold_mse <= 0:
            raise ValueError(f"threshold_mse must be > 0, got {threshold_mse}")
        if degradation_ratio <= 1.0:
            raise ValueError(
                f"degradation_ratio must be > 1, got {degradation_ratio}"
            )
        self.threshold_mse = float(threshold_mse)
        self.degradation_ratio = float(degradation_ratio)

    def decide(self, obs: PolicyObservation) -> str | None:
        reason = _capacity_reason(obs)
        if reason:
            return reason
        if not obs.pending:
            return None
        if obs.drift is not None and (
            obs.drift.needs_retraining
            or obs.drift.rolling_mse >= self.threshold_mse
        ):
            return f"drift mse {obs.drift.rolling_mse:.3f}"
        if (
            obs.baseline_cost_ms > 0
            and obs.serving_cost_ms
            >= self.degradation_ratio * obs.baseline_cost_ms
        ):
            return (
                f"cost x{obs.serving_cost_ms / obs.baseline_cost_ms:.2f} "
                "vs baseline"
            )
        return None


class CostOfDelayPolicy(OnlinePolicy):
    """Reshard when accumulated regret exceeds λ·(migration cost).

    Between decisions the policy integrates the *cost of delay*: the
    serving-cost excess over the post-reshard baseline, plus a backlog
    charge for every added table that cannot serve until it is placed.
    When the integral (ms·hours) passes ``lam`` × the estimated pending
    migration cost (ms), the migration has paid for itself and the
    policy fires.

    Args:
        lam: hours of accumulated excess that justify one ms of
            migration (smaller = more eager).
        backlog_cost_ms: serving-cost-equivalent charge per unplaced
            added table, per hour.
    """

    def __init__(
        self, lam: float = 0.05, backlog_cost_ms: float = 2.0
    ) -> None:
        if lam <= 0:
            raise ValueError(f"lam must be > 0, got {lam}")
        if backlog_cost_ms < 0:
            raise ValueError(
                f"backlog_cost_ms must be >= 0, got {backlog_cost_ms}"
            )
        self.lam = float(lam)
        self.backlog_cost_ms = float(backlog_cost_ms)
        self._accumulated = 0.0
        self._last_time = 0.0

    def reset(self) -> None:
        self._accumulated = 0.0
        self._last_time = 0.0

    def notify_reshard(self, obs: PolicyObservation) -> None:
        self._accumulated = 0.0
        self._last_time = obs.time_hours

    def decide(self, obs: PolicyObservation) -> str | None:
        dt = max(obs.time_hours - self._last_time, 0.0)
        self._last_time = obs.time_hours
        excess = max(obs.serving_cost_ms - obs.baseline_cost_ms, 0.0)
        self._accumulated += dt * (
            excess + self.backlog_cost_ms * obs.pending_adds
        )
        reason = _capacity_reason(obs)
        if reason:
            return reason
        if not obs.pending:
            return None
        threshold = self.lam * max(obs.estimated_migration_ms, 1.0)
        if self._accumulated >= threshold:
            return (
                f"delay {self._accumulated:.1f} ms*h >= "
                f"{self.lam:g} x {obs.estimated_migration_ms:.1f} ms"
            )
        return None


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

#: Factory signature: ``(**kwargs) -> OnlinePolicy``.
PolicyFactory = Callable[..., OnlinePolicy]


class UnknownPolicyError(ValueError):
    """Raised when a policy name is not in the registry."""


@dataclass(frozen=True)
class PolicyInfo:
    """Registry record of one online resharding policy.

    Attributes:
        name: canonical registry name.
        factory: builds a fresh policy instance from keyword knobs.
        description: one-line summary for listings and docs.
        defaults: the factory's default knobs (shown in listings).
    """

    name: str
    factory: PolicyFactory
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.description:
            raise ValueError(f"policy {self.name!r} needs a description")


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    *,
    description: str,
    defaults: Mapping[str, Any] | None = None,
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator registering a policy factory under ``name``.

    Raises:
        ValueError: on a duplicate name or an empty description.
    """

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        """Record ``factory`` in the registry."""
        if name in _REGISTRY:
            raise ValueError(f"policy name {name!r} already registered")
        _REGISTRY[name] = PolicyInfo(
            name=name,
            factory=factory,
            description=description,
            defaults=dict(defaults or {}),
        )
        return factory

    return decorator


def policy_info(name: str) -> PolicyInfo:
    """Look up a policy record.

    Raises:
        UnknownPolicyError: when the name is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownPolicyError(
            f"unknown resharding policy {name!r}; available policies: {known}"
        ) from None


def available_policies() -> list[str]:
    """Sorted policy names."""
    return sorted(_REGISTRY)


def iter_policies() -> Iterator[PolicyInfo]:
    """All registered policies in name order."""
    for name in available_policies():
        yield _REGISTRY[name]


def make_policy(name: str, **kwargs: Any) -> OnlinePolicy:
    """Build a fresh policy instance registered under ``name``.

    Args:
        name: a registry name (see :func:`available_policies`).
        **kwargs: knobs forwarded to the factory (see its ``defaults``).

    Raises:
        UnknownPolicyError: when ``name`` is not registered.
        TypeError / ValueError: on bad knobs (propagated from the
            factory).
    """
    info = policy_info(name)
    policy = info.factory(**kwargs)
    policy.name = name
    return policy


@register_policy(
    "immediate",
    description="reshard the instant anything is pending (replay behaviour)",
)
def _make_immediate(**kwargs: Any) -> OnlinePolicy:
    if kwargs:
        raise TypeError(f"immediate takes no knobs, got {sorted(kwargs)}")
    return ImmediatePolicy()


@register_policy(
    "periodic",
    description="batch pending changes into fixed maintenance windows",
    defaults={"interval_hours": 6.0},
)
def _make_periodic(**kwargs: Any) -> OnlinePolicy:
    return PeriodicPolicy(**kwargs)


@register_policy(
    "drift_threshold",
    description="reshard on drift-probe or serving-cost degradation evidence",
    defaults={"threshold_mse": 1.0, "degradation_ratio": 1.25},
)
def _make_drift_threshold(**kwargs: Any) -> OnlinePolicy:
    return DriftThresholdPolicy(**kwargs)


@register_policy(
    "cost_of_delay",
    description="reshard when accumulated regret exceeds lambda x migration cost",
    defaults={"lam": 0.05, "backlog_cost_ms": 2.0},
)
def _make_cost_of_delay(**kwargs: Any) -> OnlinePolicy:
    return CostOfDelayPolicy(**kwargs)
