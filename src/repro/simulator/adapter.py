"""WorkloadTrace → event stream: the atlas feeds the simulator.

The eight registered scenario regimes (:mod:`repro.scenarios.catalog`)
already encode production *workload* dynamics as deterministic
:class:`~repro.scenarios.trace.WorkloadTrace`\\ s.  This adapter turns a
trace into the simulator's native currency — typed
:class:`~repro.simulator.events.Event`\\ s — so every existing regime
doubles as a traffic/workload arrival process without regeneration.

One :class:`~repro.scenarios.trace.TraceStep` becomes up to three events
at the step's timestamp, pushed in the order the replay harness applies
them (the clock keeps ties in push order):

1. ``MEMORY`` when ``memory_scale`` differs from the running scale —
   capacity changes precede the reshard decision;
2. ``WORKLOAD_DELTA`` when the delta is non-empty;
3. ``TRAFFIC`` when the multiplier changes — scoring overlays come last.

Replayed through the simulator with the ``immediate`` policy and a quiet
fleet, the resulting stream reproduces
:func:`~repro.evaluation.production.replay_workload_trace` decision for
decision (the property suite pins this).
"""

from __future__ import annotations

from repro.scenarios.trace import WorkloadTrace
from repro.simulator.events import MEMORY, TRAFFIC, WORKLOAD_DELTA, Event

__all__ = ["trace_to_events"]


def trace_to_events(trace: WorkloadTrace) -> list[Event]:
    """Convert a workload trace into a time-ascending event stream.

    Steps whose timestamp is not strictly positive are rejected: the
    simulation epoch (t=0) is when the initial plan goes live, so trace
    changes must happen after it.

    Raises:
        ValueError: on a step at or before the simulation epoch.
    """
    events: list[Event] = []
    current_scale = 1.0
    current_traffic = 1.0
    for step in trace.steps:
        if step.timestamp <= 0:
            raise ValueError(
                f"trace {trace.name!r} has a step at t={step.timestamp}; "
                "the simulator plans the initial workload at t=0, so steps "
                "must have strictly positive timestamps"
            )
        if step.memory_scale != current_scale:
            events.append(
                Event(
                    step.timestamp,
                    MEMORY,
                    step.memory_scale,
                    label=step.label,
                )
            )
            current_scale = step.memory_scale
        if not step.delta.is_empty:
            events.append(
                Event(step.timestamp, WORKLOAD_DELTA, step.delta, label=step.label)
            )
        if step.traffic_multiplier != current_traffic:
            events.append(
                Event(
                    step.timestamp,
                    TRAFFIC,
                    step.traffic_multiplier,
                    label=step.label,
                )
            )
            current_traffic = step.traffic_multiplier
    return events
