"""Discrete-event cluster simulator with online resharding policies.

The deployment layer (:mod:`repro.api`) answers *how* to reshard; this
package answers *when*.  It simulates a serving cluster over days of
operation — device failures and stragglers from seeded stochastic
processes, traffic and workload changes from the scenario atlas's
regimes — and lets an :class:`~repro.simulator.policies.OnlinePolicy`
decide when accumulated changes justify paying the migration cost of a
:meth:`~repro.api.service.ShardingService.reshard`.

Layout:

- :mod:`~repro.simulator.events` — typed events + the forward-only
  priority-queue :class:`~repro.simulator.events.EventClock`;
- :mod:`~repro.simulator.processes` — seed-reproducible machine
  dynamics (:class:`~repro.simulator.processes.FleetSpec` /
  :class:`~repro.simulator.processes.FleetProcess`);
- :mod:`~repro.simulator.adapter` — scenario
  :class:`~repro.scenarios.trace.WorkloadTrace` → event stream;
- :mod:`~repro.simulator.policies` — the online-policy registry
  (``immediate``, ``periodic``, ``drift_threshold``, ``cost_of_delay``);
- :mod:`~repro.simulator.runner` — the simulation loop
  (:func:`~repro.simulator.runner.simulate_policy`);
- :mod:`~repro.simulator.report` — versioned-JSON
  :class:`~repro.simulator.report.SimulationReport` + text tables.

Everything is deterministic from ``(trace, sim_seed, policy, config)``;
the same inputs produce a byte-identical report JSON.
"""

from repro.simulator.adapter import trace_to_events
from repro.simulator.events import (
    DEGRADE_END,
    DEGRADE_START,
    DEVICE_DOWN,
    DEVICE_UP,
    EVENT_KINDS,
    MEMORY,
    POLICY_TICK,
    TRAFFIC,
    WORKLOAD_DELTA,
    Event,
    EventClock,
)
from repro.simulator.policies import (
    OnlinePolicy,
    PolicyInfo,
    PolicyObservation,
    UnknownPolicyError,
    available_policies,
    iter_policies,
    make_policy,
    policy_info,
    register_policy,
)
from repro.simulator.processes import FleetProcess, FleetSpec
from repro.simulator.report import (
    CostSegment,
    ReshardDecision,
    SimulationReport,
    format_policy_matrix,
    format_simulation_report,
    time_weighted_mean,
    time_weighted_quantile,
)
from repro.simulator.runner import SimulationConfig, merge_deltas, simulate_policy

__all__ = [
    "DEGRADE_END",
    "DEGRADE_START",
    "DEVICE_DOWN",
    "DEVICE_UP",
    "EVENT_KINDS",
    "MEMORY",
    "POLICY_TICK",
    "TRAFFIC",
    "WORKLOAD_DELTA",
    "CostSegment",
    "Event",
    "EventClock",
    "FleetProcess",
    "FleetSpec",
    "OnlinePolicy",
    "PolicyInfo",
    "PolicyObservation",
    "ReshardDecision",
    "SimulationConfig",
    "SimulationReport",
    "UnknownPolicyError",
    "available_policies",
    "format_policy_matrix",
    "format_simulation_report",
    "iter_policies",
    "make_policy",
    "merge_deltas",
    "policy_info",
    "register_policy",
    "simulate_policy",
    "time_weighted_mean",
    "time_weighted_quantile",
    "trace_to_events",
]
