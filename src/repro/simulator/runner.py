"""The simulation loop: events in, policy decisions and SLO metrics out.

:func:`simulate_policy` plays a workload regime — any
:class:`~repro.scenarios.trace.WorkloadTrace`, converted to events by the
adapter — against an :class:`~repro.simulator.policies.OnlinePolicy`
over a live, in-memory :class:`~repro.api.service.ShardingService`:

1. t=0 plans and applies the trace's initial workload; the SLO is fixed
   from that plan's cost.
2. Machine events (:class:`~repro.simulator.processes.FleetProcess`),
   workload events and policy ticks pop off one
   :class:`~repro.simulator.events.EventClock`, batch-per-timestamp.
3. Workload deltas and capacity changes **pend** rather than reshard:
   pending stats updates and removals overlay the serving cost (the
   hardware feels the new access pattern whether or not the plan moved),
   while pending *added* tables cannot serve and accrue backlog.
4. After every batch the policy is consulted; when it gives a reason and
   something is pending, the merged pending delta goes through
   :meth:`~repro.api.service.ShardingService.reshard` under the
   migration budget (validated like any other lifecycle reshard).  An
   infeasible reshard drops the batch — exactly like a replayed trace
   step — and the previous plan keeps serving.
5. The serving cost between batches is one constant
   :class:`~repro.simulator.report.CostSegment`; the report integrates
   them into time-weighted mean/p99 cost, SLO violation-minutes and
   migrated MB per simulated day.

With the ``immediate`` policy and a quiet fleet the loop reproduces
:func:`~repro.evaluation.production.replay_workload_trace` decision for
decision — the anchor the property suite pins the semantics to.

Everything is deterministic: costs come from the cost-model simulator,
event times from seeded processes, and no wall clock is ever read.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.costmodel.drift import DriftMonitor, DriftReport
from repro.scenarios.trace import WorkloadTrace
from repro.simulator.adapter import trace_to_events
from repro.simulator.events import (
    DEGRADE_END,
    DEGRADE_START,
    DEVICE_DOWN,
    DEVICE_UP,
    MEMORY,
    POLICY_TICK,
    TRAFFIC,
    WORKLOAD_DELTA,
    Event,
    EventClock,
)
from repro.simulator.policies import OnlinePolicy, PolicyObservation
from repro.simulator.processes import FleetProcess, FleetSpec
from repro.simulator.report import (
    CostSegment,
    ReshardDecision,
    SimulationReport,
)

if TYPE_CHECKING:  # imported lazily at runtime (repro.api import cycle)
    from repro.api import ReshardConfig, ShardingEngine
    from repro.api.reshard import WorkloadDelta

__all__ = ["SimulationConfig", "merge_deltas", "simulate_policy"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run (everything deterministic).

    Attributes:
        horizon_hours: simulated span; default: one tick past the last
            scheduled event.
        tick_hours: policy wake-up cadence (decision points also follow
            every state-changing event batch).
        slo_factor: SLO = ``slo_factor`` × the initial plan's cost.
        slo_cost_ms: absolute SLO override (wins over ``slo_factor``).
        sim_seed: seed of the fleet processes and drift probes.
        fleet: machine-dynamics rates (default: quiet — no machine
            events, pure workload replay).
        down_penalty: serving-cost multiplier of a down device's share
            (requests against its shards retry/time out; they do not
            vanish).
        drift_monitor: when provided, every policy tick runs one
            deterministic :meth:`~repro.costmodel.drift.DriftMonitor
            .probe` and feeds the stamped report to the policy.
        drift_probe_samples / drift_probe_max_tables: probe batch shape.
    """

    horizon_hours: float | None = None
    tick_hours: float = 1.0
    slo_factor: float = 1.5
    slo_cost_ms: float | None = None
    sim_seed: int = 0
    fleet: FleetSpec = field(default_factory=FleetSpec)
    down_penalty: float = 4.0
    drift_monitor: DriftMonitor | None = None
    drift_probe_samples: int = 8
    drift_probe_max_tables: int = 10

    def __post_init__(self) -> None:
        if self.tick_hours <= 0:
            raise ValueError(f"tick_hours must be > 0, got {self.tick_hours}")
        if self.horizon_hours is not None and self.horizon_hours <= 0:
            raise ValueError(
                f"horizon_hours must be > 0, got {self.horizon_hours}"
            )
        if self.slo_factor <= 1.0:
            raise ValueError(f"slo_factor must be > 1, got {self.slo_factor}")
        if self.slo_cost_ms is not None and self.slo_cost_ms <= 0:
            raise ValueError(
                f"slo_cost_ms must be > 0, got {self.slo_cost_ms}"
            )
        if self.down_penalty < 1.0:
            raise ValueError(
                f"down_penalty must be >= 1, got {self.down_penalty}"
            )


def merge_deltas(
    deltas: "Sequence[WorkloadDelta]", base_ids: set[int]
) -> "WorkloadDelta":
    """Coalesce pending deltas into one, relative to the applied tables.

    The rules mirror applying the deltas one by one (removes before adds
    within each delta, like :func:`~repro.api.reshard
    .incremental_reshard`):

    - a table added while pending and then removed never existed —
      both sides cancel;
    - re-adding a pending-removed applied table is a rebuild (remove +
      add survive together, the :func:`~repro.scenarios.trace
      .rebuild_delta` encoding);
    - stats updates last-write-win; an update to a pending *add* folds
      into the added config, an update to a pending *remove* is dropped
      (the table is leaving);
    - the newest drift report wins.

    Args:
        deltas: pending deltas, oldest first.
        base_ids: logical table ids of the *applied* plan (distinguishes
            cancel-the-add from rebuild-the-table).
    """
    from repro.api.reshard import WorkloadDelta

    adds: dict[int, Any] = {}
    removes: set[int] = set()
    stats: dict[int, Any] = {}
    drift: DriftReport | None = None
    for delta in deltas:
        for table_id in delta.remove_table_ids:
            if table_id in adds and table_id not in base_ids:
                del adds[table_id]  # add+remove while pending: cancels
            else:
                removes.add(table_id)
            stats.pop(table_id, None)
        for table in delta.add_tables:
            adds[table.table_id] = table
            stats.pop(table.table_id, None)
        for table in delta.update_stats:
            if table.table_id in adds:
                adds[table.table_id] = dataclasses.replace(
                    adds[table.table_id],
                    pooling_factor=table.pooling_factor,
                    zipf_alpha=table.zipf_alpha,
                )
            elif table.table_id in removes:
                continue
            else:
                stats[table.table_id] = table
        if delta.drift is not None:
            drift = delta.drift
    return WorkloadDelta(
        add_tables=tuple(adds[i] for i in sorted(adds)),
        remove_table_ids=tuple(sorted(removes)),
        update_stats=tuple(stats[i] for i in sorted(stats)),
        drift=drift,
    )


def _serving_cost_overlaid(
    engine: "ShardingEngine",
    record,
    traffic: float,
    stats_overlay: Mapping[int, Any],
    removed: set[int],
    device_factors: Mapping[int, float],
    down: set[int],
    down_penalty: float,
) -> float:
    """Serving cost of the applied plan under the *live* cluster state.

    The applied placement is scored with pending stats updates and
    removals overlaid (the hardware already feels them), the traffic
    multiplier applied exactly as in :func:`~repro.evaluation.production
    ._serving_cost_ms`, and each device's share scaled by its straggler
    factor (down devices by ``down_penalty`` on top).
    """
    per_device = record.plan.per_device_tables(record.base_tables)
    overlaid: list[list[Any]] = []
    for tables in per_device:
        scored = []
        for table in tables:
            if table.table_id in removed:
                continue
            update = stats_overlay.get(table.table_id)
            if update is not None:
                table = dataclasses.replace(
                    table,
                    pooling_factor=update.pooling_factor,
                    zipf_alpha=update.zipf_alpha,
                )
            if traffic != 1.0:
                table = dataclasses.replace(
                    table,
                    pooling_factor=max(table.pooling_factor * traffic, 1e-6),
                )
            scored.append(table)
        overlaid.append(scored)
    costs = engine.simulator.plan_cost(overlaid).device_costs_ms
    worst = 0.0
    for device, cost in enumerate(costs):
        factor = device_factors.get(device, 1.0)
        if device in down:
            factor *= down_penalty
        worst = max(worst, cost * factor)
    return worst


def _device_bytes(record) -> int:
    """Worst-device stored bytes of the applied plan (capacity signal)."""
    per_device = record.plan.per_device_tables(record.base_tables)
    return max(
        (sum(t.size_bytes for t in tables) for tables in per_device),
        default=0,
    )


def simulate_policy(
    trace: WorkloadTrace,
    engine: "ShardingEngine",
    policy: OnlinePolicy,
    reshard_config: "ReshardConfig | None" = None,
    strategy: str | None = None,
    config: SimulationConfig | None = None,
    extra_events: Sequence[Event] = (),
    service: "ShardingService | None" = None,
    deployment: str | None = None,
) -> SimulationReport:
    """Simulate one online policy over one workload regime.

    Args:
        trace: the workload regime (see :func:`repro.scenarios
            .make_trace`); its steps become the workload event stream.
        engine: serving engine with a cost-model bundle matching the
            trace's device count.
        policy: the reshard decision rule (see :func:`repro.simulator
            .policies.make_policy`); its state is reset first.
        reshard_config: migration budget / lambda knobs of every
            reshard (defaults to unbounded).
        strategy: full-search strategy name (engine default if omitted).
        config: simulation knobs (SLO, ticks, fleet, horizon).
        extra_events: additional caller-scripted events (tested
            faults, hand-written traffic spikes, ...).
        service: lifecycle service to simulate into (an in-memory one
            is created if omitted).  Injecting one keeps the full plan
            history around for post-hoc auditing — e.g. running
            :meth:`~repro.api.service.ShardingService
            .validate_deployment` over every simulated reshard.
        deployment: deployment name (default ``sim-<trace name>``).

    Returns:
        The deterministic :class:`~repro.simulator.report
        .SimulationReport`.

    Raises:
        ValueError: when the engine has no bundle or mismatches the
            trace's device count.
        RuntimeError: when the initial workload has no feasible plan.
    """
    from repro.api import ReshardConfig, ShardingService

    if engine.simulator is None:
        raise ValueError(
            "simulating a policy needs an engine with a cost-model bundle "
            "(it scores serving costs and reshard candidates)"
        )
    if engine.cluster.num_devices != trace.num_devices:
        raise ValueError(
            f"trace {trace.name!r} targets {trace.num_devices} devices but "
            f"the engine cluster has {engine.cluster.num_devices}"
        )
    config = config or SimulationConfig()
    reshard_config = reshard_config or ReshardConfig()

    workload_events = trace_to_events(trace)
    last_scheduled = max(
        [e.time for e in workload_events] + [e.time for e in extra_events],
        default=0.0,
    )
    horizon = config.horizon_hours or (last_scheduled + config.tick_hours)

    clock = EventClock()
    clock.extend(workload_events)
    if not config.fleet.quiet:
        process = FleetProcess(
            config.fleet, trace.num_devices, seed=config.sim_seed
        )
        clock.extend(e for e in process.generate(horizon) if e.time <= horizon)
    for extra in extra_events:
        if extra.time <= horizon:
            clock.push(extra)
    tick = config.tick_hours
    n_ticks = int(math.floor(horizon / tick + 1e-9))
    clock.extend(Event(tick * k, POLICY_TICK) for k in range(1, n_ticks + 1))

    # ------------------------------------------------------------------
    # t = 0: plan and apply the initial workload
    # ------------------------------------------------------------------
    service = service or ShardingService()
    name = deployment or f"sim-{trace.name}"
    service.create_deployment(
        name, engine, tables=trace.initial_tables,
        memory_bytes=trace.memory_bytes,
    )
    applied = service.plan(name, strategy=strategy,
                           request_id=f"{trace.name}-sim-initial")
    if not applied.feasible:
        raise RuntimeError(
            f"scenario {trace.name!r}: the initial workload has no feasible "
            "plan; regenerate with a looser memory budget or fewer tables"
        )
    service.apply(name)
    applied = service.applied_record(name)
    assert applied is not None

    slo_ms = config.slo_cost_ms or config.slo_factor * applied.simulated_cost_ms

    # ------------------------------------------------------------------
    # mutable simulation state
    # ------------------------------------------------------------------
    spec = engine.cluster.spec
    pending_deltas: list[Any] = []
    pending_memory: int | None = None
    current_memory = trace.memory_bytes
    traffic = 1.0
    down: set[int] = set()
    episodes: dict[str, tuple[int, float]] = {}  # episode -> (device, factor)
    pending_drift: DriftReport | None = None
    last_reshard_time = 0.0
    probe_count = 0
    num_events = 0

    policy.reset()

    def base_ids() -> set[int]:
        return {t.table_id for t in applied.base_tables}

    def merged_pending():
        # A lone pending delta passes through verbatim: the incremental
        # search is order-sensitive, and an untouched delta keeps the
        # immediate policy decision-identical to a trace replay.
        if len(pending_deltas) == 1:
            return pending_deltas[0]
        return merge_deltas(pending_deltas, base_ids())

    def device_factors() -> dict[int, float]:
        factors: dict[int, float] = {}
        for device, factor in episodes.values():
            factors[device] = factors.get(device, 1.0) * factor
        return factors

    def current_cost(overlaid: bool = True) -> float:
        merged = merged_pending() if overlaid and pending_deltas else None
        return _serving_cost_overlaid(
            engine,
            applied,
            traffic,
            {t.table_id: t for t in merged.update_stats} if merged else {},
            set(merged.remove_table_ids) - {t.table_id for t in merged.add_tables}
            if merged
            else set(),
            device_factors(),
            down,
            config.down_penalty,
        )

    segments: list[CostSegment] = []
    reshards: list[ReshardDecision] = []
    cost = current_cost()
    baseline = cost
    prev_time = 0.0

    def close_segment(until: float) -> None:
        nonlocal prev_time
        if until > prev_time:
            merged = merged_pending() if pending_deltas else None
            backlog = len(merged.add_tables) if merged else 0
            segments.append(
                CostSegment(
                    start_hours=prev_time,
                    duration_hours=until - prev_time,
                    serving_cost_ms=cost,
                    violating=cost > slo_ms or bool(down),
                    devices_down=len(down),
                    backlog_tables=backlog,
                )
            )
        prev_time = until

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    while not clock.empty and clock.peek_time() <= horizon:
        batch = clock.pop_simultaneous()
        now = clock.now
        close_segment(now)

        ticked = False
        for event in batch:
            num_events += 1
            if event.kind == WORKLOAD_DELTA:
                pending_deltas.append(event.payload)
                if event.payload.drift is not None:
                    pending_drift = event.payload.drift
            elif event.kind == TRAFFIC:
                traffic = float(event.payload)
            elif event.kind == MEMORY:
                scaled = int(round(trace.memory_bytes * float(event.payload)))
                pending_memory = None if scaled == current_memory else scaled
            elif event.kind == DEVICE_DOWN:
                down.add(int(event.payload))
            elif event.kind == DEVICE_UP:
                down.discard(int(event.payload))
            elif event.kind == DEGRADE_START:
                device, factor, episode = event.payload
                episodes[episode] = (int(device), float(factor))
            elif event.kind == DEGRADE_END:
                _, episode = event.payload
                episodes.pop(episode, None)
            elif event.kind == POLICY_TICK:
                ticked = True

        if ticked and config.drift_monitor is not None:
            probe_count += 1
            pending_drift = config.drift_monitor.probe(
                num_samples=config.drift_probe_samples,
                seed=config.sim_seed + probe_count,
                max_tables=config.drift_probe_max_tables,
                timestamp=now,
                step_index=probe_count,
            )

        cost = current_cost()

        merged = merged_pending() if pending_deltas else None
        pending_add_mb = (
            sum(t.size_bytes for t in merged.add_tables) / 1e6 if merged else 0.0
        )
        budget = pending_memory if pending_memory is not None else current_memory
        obs = PolicyObservation(
            time_hours=now,
            hours_since_reshard=now - last_reshard_time,
            serving_cost_ms=cost,
            baseline_cost_ms=baseline,
            slo_ms=slo_ms,
            traffic_multiplier=traffic,
            pending_adds=len(merged.add_tables) if merged else 0,
            pending_removes=len(merged.remove_table_ids) if merged else 0,
            pending_updates=len(merged.update_stats) if merged else 0,
            pending_add_mb=pending_add_mb,
            pending_memory_change=pending_memory is not None,
            over_budget=_device_bytes(applied) > budget,
            estimated_migration_ms=(
                pending_add_mb * 1e6 / spec.comm_bandwidth_bytes_per_ms
                + (len(merged.add_tables) if merged else 0) * spec.comm_latency_ms
            ),
            drift=pending_drift,
        )
        reason = policy.decide(obs)
        if reason and obs.pending:
            delta = merged if merged is not None else merge_deltas([], set())
            cost_before = cost
            record = service.reshard(
                name,
                delta,
                config=reshard_config,
                strategy=strategy,
                request_id=f"{trace.name}-sim-{len(reshards) + 1}",
                memory_bytes=pending_memory,
            )
            if pending_memory is not None:
                current_memory = pending_memory
            # Consumed either way: an infeasible reshard drops the batch
            # (the previous plan keeps serving), like a replayed step.
            pending_deltas.clear()
            pending_memory = None
            pending_drift = None
            if record.feasible:
                applied = service.applied_record(name)
                assert applied is not None
            cost = current_cost()
            baseline = cost
            last_reshard_time = now
            reshards.append(
                ReshardDecision(
                    time_hours=now,
                    reason=reason,
                    feasible=record.feasible,
                    chosen=str(record.metadata.get("chosen", "?")),
                    num_tables=len(base_ids()),
                    moved_mb=(
                        record.diff.moved_bytes / 1e6
                        if record.feasible and record.diff is not None
                        else 0.0
                    ),
                    migration_ms=(
                        record.diff.migration_cost_ms
                        if record.feasible and record.diff is not None
                        else 0.0
                    ),
                    within_budget=bool(
                        record.metadata.get("within_budget", True)
                    )
                    if record.feasible
                    else False,
                    cost_before_ms=cost_before,
                    cost_after_ms=cost,
                    batched_deltas=len(delta.add_tables)
                    + len(delta.remove_table_ids)
                    + len(delta.update_stats)
                    + (1 if obs.pending_memory_change else 0),
                    )
                )
            policy.notify_reshard(obs)

    close_segment(horizon)

    return SimulationReport(
        scenario=trace.name,
        policy=policy.name,
        policy_kwargs=_policy_kwargs(policy),
        seed=trace.seed,
        sim_seed=config.sim_seed,
        num_devices=trace.num_devices,
        memory_bytes=trace.memory_bytes,
        horizon_hours=horizon,
        slo_ms=slo_ms,
        strategy=strategy,
        reshard_config=reshard_config.to_dict(),
        segments=tuple(segments),
        reshards=tuple(reshards),
        num_events=num_events,
        final_tables=len({t.table_id for t in applied.base_tables}),
    )


def _policy_kwargs(policy: OnlinePolicy) -> dict[str, Any]:
    """The policy's public knobs (its non-underscore instance attrs)."""
    return {
        key: value
        for key, value in vars(policy).items()
        if not key.startswith("_") and isinstance(value, (int, float, str, bool))
    }
