"""The discrete-event kernel: typed events on a priority-queue clock.

Every dynamic thing that can happen to a simulated serving cluster —
a device failing or recovering, a straggler slowing one device down, a
traffic-rate change, a workload delta arriving, a policy wake-up — is an
:class:`Event` with a timestamp (simulated hours) and a typed ``kind``.
The :class:`EventClock` orders them on a binary heap and hands them back
time-ascending.

Two properties the rest of the simulator (and the hypothesis property
suite) depend on:

- **stable ties** — events pushed at the same timestamp pop in push
  order.  The heap entry is ``(time, seq, event)`` with a monotone
  per-clock sequence number, so ordering never falls back to comparing
  event payloads and a trace step's ``memory → delta → traffic``
  sub-ordering survives the queue.
- **no time travel** — pushing an event earlier than the clock's current
  time raises; the clock's ``now`` only moves forward, so a simulation
  can never observe effects before their causes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "DEGRADE_END",
    "DEGRADE_START",
    "DEVICE_DOWN",
    "DEVICE_UP",
    "EVENT_KINDS",
    "Event",
    "EventClock",
    "MEMORY",
    "POLICY_TICK",
    "TRAFFIC",
    "WORKLOAD_DELTA",
]

#: A table add/remove/stats-update batch (payload: ``WorkloadDelta``).
WORKLOAD_DELTA = "workload-delta"
#: Traffic-rate change (payload: the new multiplier, > 0).
TRAFFIC = "traffic"
#: Per-device budget change (payload: memory scale vs the base budget).
MEMORY = "memory"
#: A device drops out of serving (payload: device index).
DEVICE_DOWN = "device-down"
#: The device comes back (payload: device index).
DEVICE_UP = "device-up"
#: Straggler / degradation onset (payload: ``(device, factor, episode)``).
DEGRADE_START = "degrade-start"
#: Straggler / degradation recovery (payload: ``(device, episode)``).
DEGRADE_END = "degrade-end"
#: Scheduled policy wake-up (no payload).
POLICY_TICK = "policy-tick"

EVENT_KINDS = frozenset(
    {
        WORKLOAD_DELTA,
        TRAFFIC,
        MEMORY,
        DEVICE_DOWN,
        DEVICE_UP,
        DEGRADE_START,
        DEGRADE_END,
        POLICY_TICK,
    }
)


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence in the simulated cluster.

    Attributes:
        time: simulated hours since the simulation epoch (finite, >= 0).
        kind: one of the module-level event kinds.
        payload: kind-specific data (see each kind's docstring).
        label: short annotation carried into reshard reasons/reports.
    """

    time: float
    kind: str
    payload: Any = None
    label: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(f"event time must be finite and >= 0, got {self.time}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known kinds: "
                f"{', '.join(sorted(EVENT_KINDS))}"
            )


@dataclass
class EventClock:
    """A forward-only priority queue of :class:`Event`\\ s.

    ``push`` accepts events at or after ``now``; ``pop`` returns the
    earliest pending event and advances ``now`` to its time.  Ties pop
    in push order (see the module docstring).
    """

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _seq: int = 0
    _now: float = 0.0

    @property
    def now(self) -> float:
        """Simulated time of the last popped event (0.0 initially)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    def push(self, event: Event) -> None:
        """Schedule ``event``.

        Raises:
            ValueError: when the event is earlier than ``now`` — the
                clock only moves forward.
        """
        if event.time < self._now:
            raise ValueError(
                f"cannot schedule an event at t={event.time} behind the "
                f"clock (now={self._now})"
            )
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def extend(self, events: Iterable[Event]) -> None:
        """Push several events (in iteration order, for tie stability)."""
        for event in events:
            self.push(event)

    def peek_time(self) -> float:
        """Timestamp of the next event.

        Raises:
            IndexError: when the clock is empty.
        """
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``.

        Raises:
            IndexError: when the clock is empty.
        """
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def pop_simultaneous(self) -> list[Event]:
        """Pop the earliest event *batch*: every event sharing the next
        timestamp, in push order.

        A trace step schedules its memory change, workload delta and
        traffic change at one timestamp; the simulation applies the whole
        batch before consulting the policy — exactly like one
        :class:`~repro.scenarios.trace.TraceStep` in
        :func:`~repro.evaluation.production.replay_workload_trace`.
        """
        batch = [self.pop()]
        while self._heap and self._heap[0][0] == self._now:
            batch.append(self.pop())
        return batch
