"""Simulation reports: SLO-style metrics of one policy on one regime.

Where a :class:`~repro.scenarios.report.ScenarioReport` is *per step*
(every trace step reshards), a :class:`SimulationReport` is *per unit
time*: the serving cost is a step function over simulated hours, and the
headline metrics are integrals of it — time-weighted mean and p99 cost,
minutes spent violating the SLO, minutes of device downtime, unplaced
table backlog, and migrated megabytes per simulated day.

Everything is deterministic (costs come from the cost-model simulator
and the seeded event processes, never wall clocks), so same seed ⇒
byte-identical report JSON — the property the committed
``benchmarks/results/policy_sim.txt`` artifact and the hypothesis
determinism suite pin.  Serialization follows the repo-wide versioned
schema convention (:mod:`repro.api.schema`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api.schema import SCHEMA_VERSION, _check_version

__all__ = [
    "CostSegment",
    "ReshardDecision",
    "SimulationReport",
    "format_policy_matrix",
    "format_simulation_report",
    "time_weighted_mean",
    "time_weighted_quantile",
]


def _to_finite(value: float) -> float | None:
    """JSON-safe float: non-finite values become ``None``."""
    return float(value) if math.isfinite(value) else None


def _from_finite(value: float | None) -> float:
    return math.nan if value is None else float(value)


def time_weighted_mean(segments: "list[CostSegment]") -> float:
    """Duration-weighted mean serving cost (nan on an empty timeline)."""
    total = sum(s.duration_hours for s in segments)
    if total <= 0:
        return math.nan
    return (
        sum(s.serving_cost_ms * s.duration_hours for s in segments) / total
    )


def time_weighted_quantile(
    segments: "list[CostSegment]", q: float
) -> float:
    """Duration-weighted quantile of the serving cost step function.

    ``q=0.99`` answers: the cost level the cluster stayed at or below
    for 99% of simulated time.

    Raises:
        ValueError: when ``q`` is outside [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    total = sum(s.duration_hours for s in segments)
    if total <= 0:
        return math.nan
    target = q * total
    covered = 0.0
    for segment in sorted(segments, key=lambda s: s.serving_cost_ms):
        covered += segment.duration_hours
        if covered >= target:
            return segment.serving_cost_ms
    return max(s.serving_cost_ms for s in segments)


@dataclass(frozen=True)
class CostSegment:
    """One constant-cost span of the simulated timeline.

    Attributes:
        start_hours: segment start (simulated hours).
        duration_hours: span length (>= 0; zero-length spans between
            same-time event batches are dropped by the runner).
        serving_cost_ms: simulated serving cost over the span (traffic,
            pending stats overlays, straggler factors and the down-device
            penalty included).
        violating: the span counts toward SLO violation-minutes (cost
            above the SLO, or a shard-hosting device down).
        devices_down: down devices during the span.
        backlog_tables: added tables awaiting placement during the span.
    """

    start_hours: float
    duration_hours: float
    serving_cost_ms: float
    violating: bool
    devices_down: int
    backlog_tables: int

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "start_hours": float(self.start_hours),
            "duration_hours": float(self.duration_hours),
            "serving_cost_ms": _to_finite(self.serving_cost_ms),
            "violating": bool(self.violating),
            "devices_down": int(self.devices_down),
            "backlog_tables": int(self.backlog_tables),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostSegment":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "cost segment")
        return cls(
            start_hours=float(data["start_hours"]),
            duration_hours=float(data["duration_hours"]),
            serving_cost_ms=_from_finite(data.get("serving_cost_ms")),
            violating=bool(data["violating"]),
            devices_down=int(data.get("devices_down", 0)),
            backlog_tables=int(data.get("backlog_tables", 0)),
        )


@dataclass(frozen=True)
class ReshardDecision:
    """One reshard the policy triggered (or was forced into).

    Attributes:
        time_hours: when the reshard ran.
        reason: the policy's stated trigger.
        feasible: the service found an applicable plan.
        chosen: ``"incremental"`` / ``"full"`` / ``"none"``.
        num_tables: logical tables after the reshard.
        moved_mb: megabytes of surviving shards moved.
        migration_ms: priced migration wall-clock.
        within_budget: the migration respected the budget.
        cost_before_ms / cost_after_ms: serving cost at the decision's
            traffic, immediately before and after the plan change.
        batched_deltas: how many trace deltas the reshard absorbed at
            once (1 for the immediate policy; more for lazy policies).
    """

    time_hours: float
    reason: str
    feasible: bool
    chosen: str
    num_tables: int
    moved_mb: float
    migration_ms: float
    within_budget: bool
    cost_before_ms: float
    cost_after_ms: float
    batched_deltas: int

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "time_hours": float(self.time_hours),
            "reason": self.reason,
            "feasible": bool(self.feasible),
            "chosen": self.chosen,
            "num_tables": int(self.num_tables),
            "moved_mb": float(self.moved_mb),
            "migration_ms": float(self.migration_ms),
            "within_budget": bool(self.within_budget),
            "cost_before_ms": _to_finite(self.cost_before_ms),
            "cost_after_ms": _to_finite(self.cost_after_ms),
            "batched_deltas": int(self.batched_deltas),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReshardDecision":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "reshard decision")
        return cls(
            time_hours=float(data["time_hours"]),
            reason=str(data.get("reason", "")),
            feasible=bool(data["feasible"]),
            chosen=str(data["chosen"]),
            num_tables=int(data["num_tables"]),
            moved_mb=float(data["moved_mb"]),
            migration_ms=float(data["migration_ms"]),
            within_budget=bool(data["within_budget"]),
            cost_before_ms=_from_finite(data.get("cost_before_ms")),
            cost_after_ms=_from_finite(data.get("cost_after_ms")),
            batched_deltas=int(data.get("batched_deltas", 1)),
        )


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one policy simulated over one workload regime.

    Attributes:
        scenario: registry name of the regime (the trace's ``name``).
        policy: registry name of the online policy.
        policy_kwargs: the policy's knobs (plain JSON values).
        seed: trace generator seed.
        sim_seed: fleet-process / probe seed.
        num_devices: cluster size.
        memory_bytes: base per-device budget.
        horizon_hours: simulated span.
        slo_ms: the serving-cost SLO the violation metric counts against.
        strategy: full-search strategy (``None`` = engine default).
        reshard_config: migration knobs of every reshard, as a dict.
        segments: the serving-cost step function, time-ascending.
        reshards: every reshard decision, time-ascending.
        num_events: events the simulation processed.
        final_tables: logical tables at the horizon.
    """

    scenario: str
    policy: str
    policy_kwargs: Mapping[str, Any]
    seed: int
    sim_seed: int
    num_devices: int
    memory_bytes: int
    horizon_hours: float
    slo_ms: float
    strategy: str | None
    reshard_config: Mapping[str, Any]
    segments: tuple[CostSegment, ...]
    reshards: tuple[ReshardDecision, ...]
    num_events: int
    final_tables: int

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def mean_cost_ms(self) -> float:
        """Time-weighted mean serving cost over the horizon."""
        return time_weighted_mean(list(self.segments))

    @property
    def p99_cost_ms(self) -> float:
        """Time-weighted 99th-percentile serving cost."""
        return time_weighted_quantile(list(self.segments), 0.99)

    @property
    def peak_cost_ms(self) -> float:
        """Worst serving cost of any span."""
        costs = [
            s.serving_cost_ms
            for s in self.segments
            if math.isfinite(s.serving_cost_ms)
        ]
        return max(costs) if costs else math.nan

    @property
    def violation_minutes(self) -> float:
        """Minutes the cluster spent violating the SLO."""
        return 60.0 * sum(
            s.duration_hours for s in self.segments if s.violating
        )

    @property
    def downtime_minutes(self) -> float:
        """Minutes with at least one device down."""
        return 60.0 * sum(
            s.duration_hours for s in self.segments if s.devices_down > 0
        )

    @property
    def backlog_table_hours(self) -> float:
        """Unplaced-added-table hours (tables waiting x hours waited)."""
        return sum(
            s.backlog_tables * s.duration_hours for s in self.segments
        )

    @property
    def reshard_count(self) -> int:
        """Reshard attempts over the horizon."""
        return len(self.reshards)

    @property
    def infeasible_reshards(self) -> int:
        """Reshard attempts that found no applicable plan."""
        return sum(1 for r in self.reshards if not r.feasible)

    @property
    def total_moved_mb(self) -> float:
        """Megabytes of surviving shards moved over the horizon."""
        return sum(r.moved_mb for r in self.reshards)

    @property
    def moved_mb_per_day(self) -> float:
        """Migrated megabytes per simulated day."""
        if self.horizon_hours <= 0:
            return math.nan
        return self.total_moved_mb / (self.horizon_hours / 24.0)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "policy": self.policy,
            "policy_kwargs": dict(self.policy_kwargs),
            "seed": int(self.seed),
            "sim_seed": int(self.sim_seed),
            "num_devices": int(self.num_devices),
            "memory_bytes": int(self.memory_bytes),
            "horizon_hours": float(self.horizon_hours),
            "slo_ms": float(self.slo_ms),
            "strategy": self.strategy,
            "reshard_config": dict(self.reshard_config),
            "segments": [s.to_dict() for s in self.segments],
            "reshards": [r.to_dict() for r in self.reshards],
            "num_events": int(self.num_events),
            "final_tables": int(self.final_tables),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationReport":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "simulation report")
        return cls(
            scenario=str(data["scenario"]),
            policy=str(data["policy"]),
            policy_kwargs=dict(data.get("policy_kwargs", {})),
            seed=int(data["seed"]),
            sim_seed=int(data.get("sim_seed", 0)),
            num_devices=int(data["num_devices"]),
            memory_bytes=int(data["memory_bytes"]),
            horizon_hours=float(data["horizon_hours"]),
            slo_ms=float(data["slo_ms"]),
            strategy=data.get("strategy"),
            reshard_config=dict(data.get("reshard_config", {})),
            segments=tuple(
                CostSegment.from_dict(s) for s in data.get("segments", ())
            ),
            reshards=tuple(
                ReshardDecision.from_dict(r) for r in data.get("reshards", ())
            ),
            num_events=int(data.get("num_events", 0)),
            final_tables=int(data.get("final_tables", 0)),
        )

    def summary(self) -> dict[str, Any]:
        """One-row aggregate view (CLI ``simulate compare``, benchmarks)."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "mean_cost_ms": self.mean_cost_ms,
            "p99_cost_ms": self.p99_cost_ms,
            "violation_minutes": self.violation_minutes,
            "downtime_minutes": self.downtime_minutes,
            "backlog_table_hours": self.backlog_table_hours,
            "reshards": self.reshard_count,
            "infeasible_reshards": self.infeasible_reshards,
            "moved_mb": self.total_moved_mb,
            "moved_mb_per_day": self.moved_mb_per_day,
        }


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}" if math.isfinite(value) else "-"


def format_simulation_report(report: SimulationReport) -> str:
    """Render one simulation as a text table of its reshard decisions."""
    from repro.evaluation.reporting import format_text_table

    rows = []
    for r in report.reshards:
        rows.append(
            [
                f"{r.time_hours:.2f}",
                r.reason,
                r.chosen,
                r.num_tables,
                r.batched_deltas,
                f"{r.moved_mb:.1f}",
                _fmt(r.cost_before_ms),
                _fmt(r.cost_after_ms),
                "yes" if r.within_budget else "no",
            ]
        )
    title = (
        f"policy {report.policy} on {report.scenario} "
        f"(seed {report.seed}, {report.num_devices} devices, "
        f"{report.horizon_hours:.1f}h): mean {_fmt(report.mean_cost_ms)} ms, "
        f"p99 {_fmt(report.p99_cost_ms)} ms, "
        f"violation {report.violation_minutes:.1f} min, "
        f"moved {report.total_moved_mb:.1f} MB "
        f"({_fmt(report.moved_mb_per_day, 1)} MB/day)"
    )
    return format_text_table(
        [
            "t (h)",
            "reason",
            "chosen",
            "tables",
            "batched",
            "moved (MB)",
            "cost before",
            "cost after",
            "in budget",
        ],
        rows,
        title=title,
    )


def format_policy_matrix(reports: "list[SimulationReport]") -> str:
    """Render the policy-vs-regime comparison the benchmarks commit.

    One row per (scenario, policy), scenario-major — the layout of
    ``benchmarks/results/policy_sim.txt``.
    """
    from repro.evaluation.reporting import format_text_table

    rows = []
    for report in reports:
        s = report.summary()
        rows.append(
            [
                s["scenario"],
                s["policy"],
                _fmt(s["mean_cost_ms"]),
                _fmt(s["p99_cost_ms"]),
                f"{s['violation_minutes']:.1f}",
                f"{s['backlog_table_hours']:.2f}",
                s["reshards"],
                s["infeasible_reshards"],
                f"{s['moved_mb']:.1f}",
                _fmt(s["moved_mb_per_day"], 1),
            ]
        )
    scenarios = len({r.scenario for r in reports})
    policies = len({r.policy for r in reports})
    return format_text_table(
        [
            "scenario",
            "policy",
            "mean (ms)",
            "p99 (ms)",
            "violation (min)",
            "backlog (tbl*h)",
            "reshards",
            "infeasible",
            "moved (MB)",
            "MB/day",
        ],
        rows,
        title=(
            f"online resharding policies: {policies} policies x "
            f"{scenarios} regimes"
        ),
    )
