"""Seeded stochastic processes for device availability and latency.

The scenario atlas scripts *workload* dynamics (tables, traffic,
capacity); real fleets add *machine* dynamics on top — devices flap,
straggle, and degrade on their own clocks.  :class:`FleetProcess` draws
those dynamics as a deterministic event stream: exponential failure /
repair clocks per device, Poisson straggler onsets with log-uniform
slowdown factors, and rarer long-lived degradations.

Everything is parameterized in simulated hours and seeded through
:func:`numpy.random.default_rng` with a ``(seed, device, stream)`` key,
so the same configuration always yields a byte-identical event stream —
the property the simulator's determinism contract (same seed ⇒ identical
:class:`~repro.simulator.report.SimulationReport` JSON) rests on.

Rates default to zero (a *quiet* fleet): the base simulator reproduces
the pure trace replay exactly, and callers opt into machine noise.
:meth:`FleetSpec.light` derives a mildly flaky fleet whose straggler
severity comes from the cluster's :class:`~repro.hardware.device
.DeviceSpec` — a noisier measured device straggles harder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.simulator.events import (
    DEGRADE_END,
    DEGRADE_START,
    DEVICE_DOWN,
    DEVICE_UP,
    Event,
)

__all__ = ["FleetSpec", "FleetProcess"]


@dataclass(frozen=True)
class FleetSpec:
    """Rates of the machine-dynamics processes (simulated hours).

    Attributes:
        mtbf_hours: mean time between device failures (0 disables the
            up/down process).
        mttr_hours: mean repair time of a down device.
        straggler_rate_per_hour: Poisson rate of straggler onsets per
            device (0 disables).
        straggler_duration_hours: mean straggler episode length.
        straggler_factor_range: ``(lo, hi)`` bounds of the log-uniform
            latency multiplier a straggling device serves under.
        degrade_rate_per_hour: Poisson rate of long-lived degradations
            per device (0 disables).
        degrade_duration_hours: mean degradation length.
        degrade_factor: latency multiplier of a degraded device.
    """

    mtbf_hours: float = 0.0
    mttr_hours: float = 0.25
    straggler_rate_per_hour: float = 0.0
    straggler_duration_hours: float = 0.5
    straggler_factor_range: tuple[float, float] = (1.5, 3.0)
    degrade_rate_per_hour: float = 0.0
    degrade_duration_hours: float = 2.0
    degrade_factor: float = 1.25

    def __post_init__(self) -> None:
        for name in (
            "mtbf_hours",
            "mttr_hours",
            "straggler_rate_per_hour",
            "straggler_duration_hours",
            "degrade_rate_per_hour",
            "degrade_duration_hours",
        ):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, got {value}")
        lo, hi = self.straggler_factor_range
        if not (1.0 <= lo <= hi):
            raise ValueError(
                f"straggler_factor_range must satisfy 1 <= lo <= hi, got "
                f"({lo}, {hi})"
            )
        if self.degrade_factor < 1.0:
            raise ValueError(
                f"degrade_factor must be >= 1, got {self.degrade_factor}"
            )

    @property
    def quiet(self) -> bool:
        """True when every process is disabled (no machine events)."""
        return (
            self.mtbf_hours == 0.0
            and self.straggler_rate_per_hour == 0.0
            and self.degrade_rate_per_hour == 0.0
        )

    @classmethod
    def light(cls, spec: DeviceSpec | None = None) -> "FleetSpec":
        """A mildly flaky fleet calibrated from a :class:`DeviceSpec`.

        The straggler ceiling scales with the device's measured noise
        floor: a device whose micro-benchmarks already wobble by
        ``noise_fraction`` is modelled as straggling proportionally
        harder when contention hits it.
        """
        spec = spec or DeviceSpec()
        ceiling = 2.0 + 50.0 * spec.noise_fraction  # 2.5x at the 1% default
        return cls(
            mtbf_hours=96.0,
            mttr_hours=0.5,
            straggler_rate_per_hour=1.0 / 12.0,
            straggler_duration_hours=0.75,
            straggler_factor_range=(1.25, ceiling),
        )


class FleetProcess:
    """Deterministic generator of per-device availability/latency events.

    Args:
        spec: the process rates.
        num_devices: fleet size (device indices ``0..num_devices-1``).
        seed: master seed; each ``(device, stream)`` pair derives its own
            independent :func:`numpy.random.default_rng` stream.
    """

    #: Stream ids keeping each process's draws independent of the others.
    _FLAP, _STRAGGLE, _DEGRADE = 0, 1, 2

    def __init__(self, spec: FleetSpec, num_devices: int, seed: int = 0) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.spec = spec
        self.num_devices = num_devices
        self.seed = int(seed)

    def _rng(self, device: int, stream: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, device, stream])

    def _episodes(
        self,
        rng: np.random.Generator,
        horizon: float,
        gap_hours: float,
        duration_hours: float,
    ) -> list[tuple[float, float]]:
        """Exponential-gap episodes ``(start, end)`` within the horizon."""
        episodes = []
        t = rng.exponential(gap_hours)
        while t < horizon:
            end = t + rng.exponential(duration_hours)
            episodes.append((t, min(end, horizon)))
            t = end + rng.exponential(gap_hours)
        return episodes

    def generate(self, horizon_hours: float) -> list[Event]:
        """All machine events up to ``horizon_hours``, time-ascending.

        Episodes are clamped to the horizon, so every onset has its
        matching recovery inside the stream.
        """
        if horizon_hours <= 0 or not math.isfinite(horizon_hours):
            raise ValueError(
                f"horizon_hours must be finite and > 0, got {horizon_hours}"
            )
        events: list[Event] = []
        spec = self.spec
        for device in range(self.num_devices):
            if spec.mtbf_hours > 0:
                rng = self._rng(device, self._FLAP)
                for start, end in self._episodes(
                    rng, horizon_hours, spec.mtbf_hours, spec.mttr_hours
                ):
                    events.append(
                        Event(start, DEVICE_DOWN, device, label=f"d{device} down")
                    )
                    events.append(
                        Event(end, DEVICE_UP, device, label=f"d{device} up")
                    )
            if spec.straggler_rate_per_hour > 0:
                rng = self._rng(device, self._STRAGGLE)
                gap = 1.0 / spec.straggler_rate_per_hour
                lo, hi = spec.straggler_factor_range
                for i, (start, end) in enumerate(
                    self._episodes(
                        rng, horizon_hours, gap, spec.straggler_duration_hours
                    )
                ):
                    factor = float(
                        np.exp(rng.uniform(np.log(lo), np.log(hi)))
                    )
                    # Episode ids disambiguate overlapping straggle /
                    # degrade episodes on the same device at END time.
                    episode = f"d{device}-straggle-{i}"
                    events.append(
                        Event(
                            start,
                            DEGRADE_START,
                            (device, factor, episode),
                            label=f"d{device} straggles x{factor:.2f}",
                        )
                    )
                    events.append(
                        Event(
                            end,
                            DEGRADE_END,
                            (device, episode),
                            label=f"d{device} recovers",
                        )
                    )
            if spec.degrade_rate_per_hour > 0:
                rng = self._rng(device, self._DEGRADE)
                gap = 1.0 / spec.degrade_rate_per_hour
                for i, (start, end) in enumerate(
                    self._episodes(
                        rng, horizon_hours, gap, spec.degrade_duration_hours
                    )
                ):
                    episode = f"d{device}-degrade-{i}"
                    events.append(
                        Event(
                            start,
                            DEGRADE_START,
                            (device, spec.degrade_factor, episode),
                            label=f"d{device} degrades",
                        )
                    )
                    events.append(
                        Event(
                            end,
                            DEGRADE_END,
                            (device, episode),
                            label=f"d{device} recovers",
                        )
                    )
        # Deterministic global order; the sort is stable, so same-time
        # events keep their per-device generation order.
        events.sort(key=lambda e: e.time)
        return events
