"""Budget-aware auto-tuning of the search / reshard knobs (ROADMAP item 4).

The paper's fig9 shows the ``N``/``K``/``L``/``M`` knobs trade plan
quality against search time per workload; this module searches that
space — plus the reshard λ / migration-budget pair — for one registered
scenario under a hard wall-clock budget, in the economical-tuning idiom
of FLAML: cheap configurations first, provably-unpromising ones pruned,
and every evaluation disk-cached so reruns are free.

Mechanics:

- **Candidates** are the cross product of a small per-knob value grid
  (:data:`DEFAULT_SEARCH_SPACE`), enumerated cheapest-first by a
  deterministic effort proxy (the N*K*L*M product,
  :func:`~repro.tuning.profile.candidate_work`).  The repo's pinned
  replay constants (``REPLAY_SEARCH_CONFIG`` + default reshard knobs)
  are always evaluated first, so the chosen config can never be worse
  than the default.
- **Evaluation** replays the scenario's workload trace end-to-end
  through the plan-lifecycle service
  (:func:`~repro.evaluation.production.replay_workload_trace`) on a
  fresh engine built with the candidate config; the objective is the
  replay's mean serving cost.  Everything in an evaluation comes from
  the cost-model simulator, so results are bit-reproducible.
- **Pruning** (:func:`proven_dominated`): a pending candidate is
  skipped when, for its reshard pair, two already-evaluated candidates
  ``a <= b`` (component-wise on the search-effort knobs, both below the
  pending one) show the cost plateaued or got worse as effort grew —
  the pending config would be slower at an equal-or-larger budget share
  with no evidence of a better cost.
- **Caching** (:class:`EvaluationCache`): each evaluation is stored
  under a canonical config hash; entries carry the
  :func:`~repro.utils.source_fingerprint` of the code that produced
  them and are re-evaluated when it goes stale.  Cached payload bytes
  are canonical JSON, so the same config hash always maps to a
  byte-identical cached result.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.api.engine import ShardingEngine
from repro.api.reshard import ReshardConfig
from repro.config import ClusterConfig, SearchConfig
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data import TablePool
from repro.evaluation.production import (
    REPLAY_SEARCH_CONFIG,
    replay_workload_trace,
)
from repro.hardware import SimulatedCluster
from repro.scenarios import make_trace
from repro.tuning.profile import (
    TunedCandidate,
    TunedProfile,
    candidate_work,
)
from repro.utils import source_fingerprint

__all__ = [
    "DEFAULT_SEARCH_SPACE",
    "EvaluationCache",
    "TUNE_SOURCE_ENTRIES",
    "default_candidate",
    "enumerate_candidates",
    "pareto_frontier",
    "proven_dominated",
    "tune_scenario",
    "tuning_code_fingerprint",
]

#: Knob grids the tuner crosses by default.  Search-effort knobs stay at
#: lifecycle scale (the replay re-searches every step, so fig9-scale
#: defaults would blow any reasonable budget); the reshard pair covers
#: "amortize fast vs slow" and "bounded vs unbounded migration".
DEFAULT_SEARCH_SPACE: Mapping[str, tuple] = {
    "top_n": (2, 4, 8),
    "beam_width": (1, 2, 3),
    "max_steps": (2, 4, 6),
    "grid_points": (3, 5, 7),
    "grid_end_factor": (1.25, 1.5),
    "migration_lambda": (1e-4, 1e-3),
    "migration_budget_ms": (None, 150.0),
}

_SEARCH_KNOBS = (
    "top_n", "beam_width", "max_steps", "grid_points", "grid_end_factor",
)
_RESHARD_KNOBS = ("migration_lambda", "migration_budget_ms")

#: Source entries whose bytes determine an evaluation's outcome — the
#: staleness key of the disk cache (same idiom as the benchmark bundle
#: cache in ``benchmarks/conftest.py``).
TUNE_SOURCE_ENTRIES = (
    "config.py", "core", "costmodel", "data", "hardware", "nn",
    "api", "scenarios", "evaluation",
)


def tuning_code_fingerprint() -> str:
    """Fingerprint of every source entry an evaluation depends on."""
    return source_fingerprint(*TUNE_SOURCE_ENTRIES)


def _canonical(payload: Any) -> str:
    """Canonical JSON: the one byte representation of a payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_key(
    scenario: str,
    search: SearchConfig,
    reshard: ReshardConfig,
    *,
    seed: int,
    num_devices: int,
    memory_bytes: int,
    num_tables: int | None,
    steps: int | None,
    scenario_kwargs: Mapping[str, Any],
    bundle_key: str,
    pool_key: str,
) -> str:
    """Canonical config hash: sha256 over every evaluation input."""
    payload = {
        "scenario": scenario,
        "search": search.to_dict(),
        "reshard": reshard.to_dict(),
        "seed": seed,
        "num_devices": num_devices,
        "memory_bytes": memory_bytes,
        "num_tables": num_tables,
        "steps": steps,
        "scenario_kwargs": dict(scenario_kwargs),
        "bundle_key": bundle_key,
        "pool_key": pool_key,
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def pool_fingerprint(pool: TablePool) -> str:
    """Identity of the table pool an evaluation samples from."""
    digest = hashlib.sha256()
    for t in pool.tables:
        digest.update(
            _canonical(
                [t.table_id, t.hash_size, t.dim, t.pooling_factor,
                 t.zipf_alpha]
            ).encode()
        )
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class EvaluationCache:
    """Disk cache of per-config evaluation results.

    One JSON file per canonical config hash; the payload carries the
    producing code fingerprint, and a mismatching fingerprint is a miss
    (the stale entry is overwritten by the re-evaluation).  Payload
    bytes are canonical JSON — the same key always stores the same
    bytes, which the cache-determinism tests pin.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str, fingerprint: str) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` on miss/stale."""
        path = self.path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if data.get("code_fingerprint") != fingerprint:
            return None
        return data

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store ``payload`` (must include ``code_fingerprint``)."""
        path = self.path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(_canonical(dict(payload)))
        tmp.replace(path)


def default_candidate(max_refine_steps: int) -> tuple[SearchConfig, ReshardConfig]:
    """The pinned-constants baseline every tuning run evaluates first."""
    return (
        REPLAY_SEARCH_CONFIG,
        ReshardConfig(max_refine_steps=max_refine_steps),
    )


def enumerate_candidates(
    search_space: Mapping[str, Sequence] | None = None,
    *,
    max_refine_steps: int = 16,
) -> list[tuple[SearchConfig, ReshardConfig]]:
    """The candidate grid, cheapest-first.

    The cross product of the per-knob grids, each candidate built
    through the validating :class:`SearchConfig` /
    :class:`ReshardConfig` constructors (an out-of-range value in a
    user-supplied space fails loudly here, before anything runs), sorted
    ascending by the deterministic work proxy with the canonical config
    dict as tiebreak.

    Raises:
        ValueError: on unknown knob names, an empty grid, or an
            out-of-range knob value.
    """
    space = dict(DEFAULT_SEARCH_SPACE if search_space is None else search_space)
    unknown = sorted(set(space) - set(_SEARCH_KNOBS) - set(_RESHARD_KNOBS))
    if unknown:
        raise ValueError(
            f"unknown tuning knobs {unknown}; expected a subset of "
            f"{sorted(_SEARCH_KNOBS + _RESHARD_KNOBS)}"
        )
    for knob, values in space.items():
        if not values:
            raise ValueError(f"tuning knob {knob!r} has an empty value grid")
    names = [k for k in (*_SEARCH_KNOBS, *_RESHARD_KNOBS) if k in space]
    candidates = []
    for values in itertools.product(*(space[k] for k in names)):
        knobs = dict(zip(names, values))
        search = SearchConfig(
            **{k: v for k, v in knobs.items() if k in _SEARCH_KNOBS}
        )
        reshard = ReshardConfig(
            max_refine_steps=max_refine_steps,
            **{k: v for k, v in knobs.items() if k in _RESHARD_KNOBS},
        )
        candidates.append((search, reshard))
    candidates.sort(
        key=lambda c: (
            candidate_work(c[0]),
            _canonical([c[0].to_dict(), c[1].to_dict()]),
        )
    )
    return candidates


def _effort(search: SearchConfig) -> tuple:
    return (
        search.top_n, search.beam_width, search.max_steps,
        search.grid_points, search.grid_end_factor,
    )


def _leq(a: tuple, b: tuple) -> bool:
    return all(x <= y for x, y in zip(a, b))


def proven_dominated(
    search: SearchConfig,
    reshard: ReshardConfig,
    evaluated: Sequence[TunedCandidate],
) -> bool:
    """Is the pending config proven dominated by the evidence so far?

    True when two evaluated candidates with the pending config's reshard
    pair satisfy ``effort(a) <= effort(b) <= effort(pending)``
    component-wise with strictly less work for ``a``, yet
    ``cost(a) <= cost(b)`` — growing the effort along the pending
    config's own knob directions already failed to improve the cost, so
    the pending config is slower at an equal-or-larger budget share
    with a worse-or-equal expected cost.
    """
    target = _effort(search)
    peers = [
        c for c in evaluated
        if c.reshard == reshard and _leq(_effort(c.search), target)
    ]
    for a in peers:
        for b in peers:
            if (
                _leq(_effort(a.search), _effort(b.search))
                and a.work < b.work
                and a.cost_ms <= b.cost_ms
            ):
                return True
    return False


def pareto_frontier(
    candidates: Sequence[TunedCandidate],
) -> tuple[TunedCandidate, ...]:
    """Non-dominated candidates over (cost_ms, work), ascending work."""
    frontier = []
    for c in candidates:
        dominated = any(
            d.cost_ms <= c.cost_ms
            and d.work <= c.work
            and (d.cost_ms < c.cost_ms or d.work < c.work)
            for d in candidates
            if d is not c
        )
        if not dominated:
            frontier.append(c)
    frontier.sort(key=lambda c: (c.work, c.cost_ms, _canonical(c.to_dict())))
    return tuple(frontier)


def _evaluate_replay(
    trace,
    bundle: PretrainedCostModels,
    search: SearchConfig,
    reshard: ReshardConfig,
    *,
    num_devices: int,
    memory_bytes: int,
) -> dict[str, Any]:
    """One candidate's replay, as the (cacheable) deterministic payload."""
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=num_devices, memory_bytes=memory_bytes)
    )
    engine = ShardingEngine(cluster, bundle, search=search)
    try:
        report = replay_workload_trace(trace, engine, reshard_config=reshard)
    except RuntimeError:
        # No feasible initial plan under these knobs: a legitimate —
        # and cacheable — outcome, dominated by any feasible config.
        return {"feasible": False, "cost_ms": None, "peak_cost_ms": None}
    summary = report.summary()
    return {
        "feasible": True,
        "cost_ms": summary["mean_serving_cost_ms"],
        "peak_cost_ms": summary["peak_serving_cost_ms"],
    }


def tune_scenario(
    scenario: str,
    bundle: PretrainedCostModels,
    pool: TablePool,
    *,
    budget_s: float,
    memory_bytes: int | None = None,
    num_tables: int | None = None,
    steps: int | None = None,
    seed: int = 0,
    search_space: Mapping[str, Sequence] | None = None,
    max_candidates: int | None = None,
    max_refine_steps: int = 16,
    cache_dir: str | os.PathLike | None = None,
    scenario_kwargs: Mapping[str, Any] | None = None,
    bundle_key: str | None = None,
) -> TunedProfile:
    """Tune the search/reshard knobs for one scenario under a budget.

    Args:
        scenario: registry name (see
            :func:`repro.scenarios.available_scenarios`).
        bundle: the pre-trained cost-model bundle to evaluate on; its
            device count sets the cluster size.
        pool: the table pool the scenario samples its workload from.
        budget_s: hard wall-clock budget.  The pinned-default baseline
            always runs; after that, a candidate only starts while the
            budget has room (a running evaluation is never killed, so
            the run can overshoot by one evaluation).
        memory_bytes: base per-device budget (scenario atlas default,
            2 GiB, when omitted).
        num_tables / steps: trace-generation overrides (``None`` keeps
            the scenario's default).
        seed: trace generator seed.
        search_space: per-knob value grids overriding
            :data:`DEFAULT_SEARCH_SPACE` (the CLI's repeatable
            ``--tune-arg KEY=VALUE`` feeds this).
        max_candidates: cap on evaluations (budget still applies).
        max_refine_steps: reshard local-search bound shared by every
            candidate (and the default baseline), so candidates differ
            only in the tuned knobs.
        cache_dir: disk-cache directory; ``None`` disables caching.
        scenario_kwargs: extra scenario-generator knobs forwarded to
            :func:`~repro.scenarios.make_trace`.
        bundle_key: identity of the bundle for cache keying (a
            shape-derived key when omitted — pass the store's
            ``name@vN`` tag for cross-process reuse guarantees).

    Returns:
        The :class:`TunedProfile`, chosen config included.  Not written
        to disk — see :func:`repro.tuning.profile.save_profile`.

    Raises:
        ValueError: on a non-positive budget, an invalid search space,
            or an unknown scenario.
        RuntimeError: when every evaluated candidate (the default
            included) found no feasible plan.
    """
    if budget_s <= 0:
        raise ValueError(f"budget_s must be > 0, got {budget_s}")
    if max_candidates is not None and max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    from repro.scenarios.catalog import DEFAULT_MEMORY_BYTES

    memory = DEFAULT_MEMORY_BYTES if memory_bytes is None else memory_bytes
    extra = dict(scenario_kwargs or {})
    num_devices = bundle.num_devices
    fingerprint = tuning_code_fingerprint()
    key_of_bundle = (
        bundle_key
        if bundle_key is not None
        else f"shape:{bundle.num_devices}dev:b{bundle.batch_size}"
    )
    pool_key = pool_fingerprint(pool)

    trace_kwargs: dict[str, Any] = {
        "num_devices": num_devices,
        "memory_bytes": memory,
        "seed": seed,
        **extra,
    }
    if num_tables is not None:
        trace_kwargs["num_tables"] = num_tables
    if steps is not None:
        trace_kwargs["steps"] = steps
    trace = make_trace(scenario, pool, **trace_kwargs)

    cache = None if cache_dir is None else EvaluationCache(cache_dir)
    candidates = enumerate_candidates(
        search_space, max_refine_steps=max_refine_steps
    )
    default = default_candidate(max_refine_steps)
    candidates = [default] + [c for c in candidates if c != default]

    started = time.monotonic()
    evaluated: list[TunedCandidate] = []
    pruned = skipped = cache_hits = 0
    for search, reshard in candidates:
        if evaluated and (
            time.monotonic() - started >= budget_s
            or (max_candidates is not None and len(evaluated) >= max_candidates)
        ):
            skipped += 1
            continue
        if proven_dominated(search, reshard, evaluated):
            pruned += 1
            continue
        key = config_key(
            scenario, search, reshard,
            seed=seed, num_devices=num_devices, memory_bytes=memory,
            num_tables=num_tables, steps=steps, scenario_kwargs=extra,
            bundle_key=key_of_bundle, pool_key=pool_key,
        )
        payload = None if cache is None else cache.get(key, fingerprint)
        from_cache = payload is not None
        if payload is None:
            payload = _evaluate_replay(
                trace, bundle, search, reshard,
                num_devices=num_devices, memory_bytes=memory,
            )
            if cache is not None:
                cache.put(key, {**payload, "code_fingerprint": fingerprint})
        else:
            cache_hits += 1
        cost = payload["cost_ms"]
        peak = payload["peak_cost_ms"]
        evaluated.append(
            TunedCandidate(
                search=search,
                reshard=reshard,
                cost_ms=math.inf if cost is None else float(cost),
                peak_cost_ms=math.inf if peak is None else float(peak),
                feasible=bool(payload["feasible"]),
                from_cache=from_cache,
            )
        )
    default_result = evaluated[0]
    chosen = min(
        evaluated,
        key=lambda c: (c.cost_ms, c.work, _canonical(c.to_dict())),
    )
    if not chosen.feasible:
        raise RuntimeError(
            f"scenario {scenario!r}: no evaluated configuration found a "
            "feasible initial plan"
        )
    return TunedProfile(
        scenario=scenario,
        chosen=chosen,
        default=default_result,
        frontier=pareto_frontier([c for c in evaluated if c.feasible]),
        seed=seed,
        num_devices=num_devices,
        memory_bytes=memory,
        num_tables=num_tables,
        steps=steps,
        budget_s=float(budget_s),
        elapsed_s=time.monotonic() - started,
        code_fingerprint=fingerprint,
        bundle_key=key_of_bundle,
        evaluated=len(evaluated),
        pruned=pruned,
        skipped=skipped,
        cache_hits=cache_hits,
        created_at=time.time(),
        scenario_kwargs=extra,
    )
