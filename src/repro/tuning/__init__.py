"""Budget-aware auto-tuning of the search/reshard knobs.

The paper pins the ``N``/``K``/``L``/``M`` search hyperparameters and
the reshard λ / migration-budget pair as constants; this package tunes
them per workload scenario under a hard wall-clock budget and emits a
versioned :class:`~repro.tuning.profile.TunedProfile` artifact the
serving layer loads at deployment creation::

    from repro.tuning import save_profile, tune_scenario

    profile = tune_scenario("flash_crowd", bundle, pool, budget_s=120.0,
                            cache_dir="tune-cache/")
    save_profile(profile, "profiles/")
    service.create_deployment("prod", engine, tables=tables,
                              profile=profile)

- :mod:`~repro.tuning.tuner` — the budget loop: cheapest-first
  candidate enumeration, dominated-config pruning, disk-cached
  evaluations keyed by canonical config hash + code fingerprint.
- :mod:`~repro.tuning.profile` — the versioned-JSON artifact and its
  on-disk profile directory.
"""

from repro.tuning.profile import (
    PROFILE_SCHEMA_VERSION,
    TunedCandidate,
    TunedProfile,
    candidate_work,
    list_profiles,
    load_profile,
    profile_path,
    save_profile,
)
from repro.tuning.tuner import (
    DEFAULT_SEARCH_SPACE,
    TUNE_SOURCE_ENTRIES,
    EvaluationCache,
    default_candidate,
    enumerate_candidates,
    pareto_frontier,
    proven_dominated,
    tune_scenario,
    tuning_code_fingerprint,
)

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "TunedCandidate",
    "TunedProfile",
    "candidate_work",
    "list_profiles",
    "load_profile",
    "profile_path",
    "save_profile",
    "DEFAULT_SEARCH_SPACE",
    "TUNE_SOURCE_ENTRIES",
    "EvaluationCache",
    "default_candidate",
    "enumerate_candidates",
    "pareto_frontier",
    "proven_dominated",
    "tune_scenario",
    "tuning_code_fingerprint",
]
