"""Tuned-profile artifacts: the versioned JSON the auto-tuner emits.

A :class:`TunedProfile` is the durable outcome of one
:func:`~repro.tuning.tuner.tune_scenario` run: the chosen
search/reshard configuration, the Pareto frontier of non-dominated
candidates, and enough provenance (scenario knobs, seed, code
fingerprint, budget, counts) to reproduce or audit the run.  Profiles
are plain versioned JSON in the house style of
:mod:`repro.api.schema` — an explicit ``schema_version`` checked on
read — and are loaded at deployment creation time
(``ShardingService.create_deployment(..., profile=...)`` /
``repro deployment create --profile``).

Every config embedded in a profile round-trips through the validating
constructors (:meth:`SearchConfig.from_dict`,
:meth:`ReshardConfig.from_dict`), so a hand-edited profile with an
out-of-range knob fails loudly at load time, not deep inside a search.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.reshard import ReshardConfig
from repro.config import SearchConfig

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "TunedCandidate",
    "TunedProfile",
    "list_profiles",
    "load_profile",
    "profile_path",
    "save_profile",
]

#: Version of the on-disk profile payload; readers reject anything else.
PROFILE_SCHEMA_VERSION = 1


def _check_version(data: Mapping[str, Any], kind: str) -> None:
    version = data.get("schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"{kind} payload has schema version {version!r}, "
            f"this code reads {PROFILE_SCHEMA_VERSION}"
        )


def candidate_work(search: SearchConfig) -> int:
    """Deterministic search-effort proxy: the N*K*L*M knob product.

    Monotone in every count knob, machine-independent, and stable across
    runs — the frontier and the committed benchmark tables rank effort
    by this, never by wall clocks.
    """
    return (
        search.top_n
        * search.beam_width
        * max(search.max_steps, 1)
        * search.grid_points
    )


@dataclass(frozen=True)
class TunedCandidate:
    """One evaluated configuration: knobs plus its replay objective.

    Attributes:
        search: the evaluated :class:`~repro.config.SearchConfig`.
        reshard: the evaluated reshard λ / migration-budget pair (as a
            full :class:`~repro.api.reshard.ReshardConfig`).
        cost_ms: objective — mean serving cost over the scenario replay
            (``inf`` when the replay found no feasible initial plan).
        peak_cost_ms: peak serving cost over the replay (``inf`` when
            infeasible).
        feasible: the replay produced an applicable plan.
        from_cache: this evaluation was served from the disk cache.
    """

    search: SearchConfig
    reshard: ReshardConfig
    cost_ms: float
    peak_cost_ms: float
    feasible: bool = True
    from_cache: bool = False

    @property
    def work(self) -> int:
        """Deterministic effort proxy (see :func:`candidate_work`)."""
        return candidate_work(self.search)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view (non-finite costs serialize as ``None``)."""
        return {
            "search": self.search.to_dict(),
            "reshard": self.reshard.to_dict(),
            "cost_ms": self.cost_ms if math.isfinite(self.cost_ms) else None,
            "peak_cost_ms": (
                self.peak_cost_ms if math.isfinite(self.peak_cost_ms) else None
            ),
            "work": self.work,
            "feasible": self.feasible,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TunedCandidate":
        """Inverse of :meth:`to_dict`; knobs re-validate on the way in."""
        cost = data.get("cost_ms")
        peak = data.get("peak_cost_ms")
        return cls(
            search=SearchConfig.from_dict(data["search"]),
            reshard=ReshardConfig.from_dict(data["reshard"]),
            cost_ms=math.inf if cost is None else float(cost),
            peak_cost_ms=math.inf if peak is None else float(peak),
            feasible=bool(data.get("feasible", True)),
            from_cache=bool(data.get("from_cache", False)),
        )


@dataclass(frozen=True)
class TunedProfile:
    """The versioned tuning artifact for one scenario.

    Attributes:
        scenario: registry name of the tuned scenario.
        chosen: the winning candidate (lowest cost, ties to lower work).
        default: the pinned-constants baseline the tuner always
            evaluates first (``REPLAY_SEARCH_CONFIG`` + the default
            reshard knobs) — the committed tuned-vs-default tables
            compare against this.
        frontier: non-dominated candidates over (cost_ms, work),
            ascending work.
        seed / num_devices / memory_bytes / num_tables / steps /
        scenario_kwargs: the trace-generation inputs (``None`` keeps a
            scenario default).
        budget_s: the wall-clock budget the run was given.
        elapsed_s: wall-clock the run actually used (provenance only —
            never part of dominance decisions or committed tables).
        code_fingerprint: source fingerprint of the code that produced
            the evaluations (cache staleness key).
        bundle_key: identity of the evaluated cost-model bundle.
        evaluated / pruned / skipped / cache_hits: run accounting —
            configs evaluated, pruned as proven dominated, skipped on
            budget/candidate-cap exhaustion, and served from the disk
            cache.
        created_at: POSIX timestamp of profile creation.
    """

    scenario: str
    chosen: TunedCandidate
    default: TunedCandidate
    frontier: tuple[TunedCandidate, ...]
    seed: int
    num_devices: int
    memory_bytes: int
    num_tables: int | None
    steps: int | None
    budget_s: float
    elapsed_s: float
    code_fingerprint: str
    bundle_key: str
    evaluated: int
    pruned: int
    skipped: int
    cache_hits: int
    created_at: float
    scenario_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Versioned plain-JSON view (inverse of :meth:`from_dict`)."""
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "scenario": self.scenario,
            "chosen": self.chosen.to_dict(),
            "default": self.default.to_dict(),
            "frontier": [c.to_dict() for c in self.frontier],
            "seed": self.seed,
            "num_devices": self.num_devices,
            "memory_bytes": self.memory_bytes,
            "num_tables": self.num_tables,
            "steps": self.steps,
            "budget_s": self.budget_s,
            "elapsed_s": self.elapsed_s,
            "code_fingerprint": self.code_fingerprint,
            "bundle_key": self.bundle_key,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "skipped": self.skipped,
            "cache_hits": self.cache_hits,
            "created_at": self.created_at,
            "scenario_kwargs": dict(self.scenario_kwargs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TunedProfile":
        """Parse a versioned payload; rejects other schema versions."""
        _check_version(data, "tuned profile")
        return cls(
            scenario=str(data["scenario"]),
            chosen=TunedCandidate.from_dict(data["chosen"]),
            default=TunedCandidate.from_dict(data["default"]),
            frontier=tuple(
                TunedCandidate.from_dict(c) for c in data.get("frontier", [])
            ),
            seed=int(data["seed"]),
            num_devices=int(data["num_devices"]),
            memory_bytes=int(data["memory_bytes"]),
            num_tables=(
                None if data.get("num_tables") is None
                else int(data["num_tables"])
            ),
            steps=None if data.get("steps") is None else int(data["steps"]),
            budget_s=float(data["budget_s"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            code_fingerprint=str(data.get("code_fingerprint", "")),
            bundle_key=str(data.get("bundle_key", "")),
            evaluated=int(data.get("evaluated", 0)),
            pruned=int(data.get("pruned", 0)),
            skipped=int(data.get("skipped", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            created_at=float(data.get("created_at", 0.0)),
            scenario_kwargs=dict(data.get("scenario_kwargs", {})),
        )


# ----------------------------------------------------------------------
# on-disk profile directory (one JSON file per scenario)
# ----------------------------------------------------------------------


def _check_scenario_name(name: str) -> str:
    """Profile files are named after the scenario; refuse path tricks."""
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise ValueError(f"invalid scenario name for a profile: {name!r}")
    return name


def profile_path(directory: str | os.PathLike, scenario: str) -> Path:
    """The canonical profile file for ``scenario`` under ``directory``."""
    return Path(directory) / f"{_check_scenario_name(scenario)}.json"


def save_profile(profile: TunedProfile, directory: str | os.PathLike) -> Path:
    """Write ``profile`` to its canonical path (atomic rename)."""
    path = profile_path(directory, profile.scenario)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    tmp.replace(path)
    return path


def load_profile(path: str | os.PathLike) -> TunedProfile:
    """Read one profile JSON file (schema-checked)."""
    return TunedProfile.from_dict(json.loads(Path(path).read_text()))


def list_profiles(directory: str | os.PathLike) -> list[TunedProfile]:
    """Every readable profile under ``directory``, sorted by scenario."""
    root = Path(directory)
    if not root.is_dir():
        return []
    profiles = []
    for path in sorted(root.glob("*.json")):
        profiles.append(load_profile(path))
    return sorted(profiles, key=lambda p: p.scenario)
