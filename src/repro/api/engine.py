"""The sharding service: one engine, every strategy, batched serving.

:class:`ShardingEngine` owns the deployment context — a cluster shape, an
optional pre-trained cost-model bundle, and a shared (optionally
LRU-bounded) :class:`~repro.core.cache.CostCache` — and answers
:class:`~repro.api.schema.ShardingRequest`s with uniform
:class:`~repro.api.schema.ShardingResponse`s, whichever registered
strategy serves them:

- :meth:`ShardingEngine.shard` — answer one request;
- :meth:`ShardingEngine.shard_batch` — answer many concurrently,
  preserving request order and sequential-identical results: on the
  engine's persistent thread pool by default, or fanned out to a
  shared-nothing :class:`~repro.api.workers.WorkerPool` of worker
  *processes* when one is attached (the GIL-free path — thread
  concurrency only overlaps waiting, process workers overlap the
  scoring work itself);
- :meth:`ShardingEngine.compare` — answer one task with several
  strategies side by side.

Uniform diagnostics: strategies that return a bare
:class:`~repro.core.plan.ShardingPlan` (every baseline) get their plan
scored on the engine's cost-model simulator, so ``simulated_cost_ms`` is
comparable across strategies; strategies that report their own search
diagnostics (NeuroShard's :class:`~repro.core.sharder.ShardingResult`)
pass them through.

Determinism: results are independent of batch interleaving.  Strategies
whose ``shard()`` mutates internal state (random, the RL baselines) are
rebuilt fresh per request; everything else is constructed once and
reused.  The shared cache memoizes deterministic model predictions, so
its contents never change a plan or cost — only speed.  It backs the
engine's uniform plan scoring; the core search strategies use fresh
per-request caches by default (keeping reported hit rates
order-independent) and share the engine's cache when constructed with
``strategy_kwargs={"beam": {"lifelong_cache": True}}`` — the paper's
lifelong hash map, whose per-request hit rates then depend on serving
order.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.api.workers import WorkerPool

from repro.api.registry import available_strategies, make_sharder, strategy_info
from repro.api.schema import PlanOverTables, ShardingRequest, ShardingResponse
from repro.config import SearchConfig
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.sharder import ShardingResult
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.hardware.cluster import SimulatedCluster

__all__ = ["ShardingEngine"]

#: Strategies `compare` runs when none are named: cheap, construction-
#: argument-free, spanning the core search and the baseline families.
_DEFAULT_COMPARE = (
    "beam",
    "size_greedy",
    "dim_greedy",
    "lookup_greedy",
    "size_lookup_greedy",
    "planner",
    "milp",
    "random",
)


class ShardingEngine:
    """Serve sharding requests with any registered strategy.

    Args:
        cluster: deployment cluster (device count, memory, batch size).
        bundle: pre-trained cost models; required to serve cost-model-
            driven strategies and to score baseline plans uniformly.
        search: default search hyperparameters for the core strategies.
        default_strategy: served when a request names no strategy
            (``"beam"`` with a bundle, ``"dim_greedy"`` without).
        strategy_kwargs: per-strategy construction keywords, e.g.
            ``{"milp": {"time_limit_s": 2.0}, "guided": {"policy": p}}``.
        cache_max_entries: LRU bound of the engine's shared cost cache
            (``None`` keeps the paper's unbounded lifelong hash map).
        max_workers: default thread-pool size of :meth:`shard_batch`
            (overridable per call).  The default-sized pool is created
            lazily once and reused across batches (release it with
            :meth:`close` or a ``with`` block); per-call overrides run
            on a transient pool.
        worker_pool: a :class:`~repro.api.workers.WorkerPool` of
            shard-serving worker *processes*.  When attached,
            :meth:`shard_batch` calls that leave ``max_workers`` at the
            engine default fan out to the pool instead of the in-process
            thread path — results stay bit-identical under
            :meth:`~repro.api.schema.ShardingResponse
            .deterministic_dict` (the pool's workers bootstrap from a
            spec describing this same engine).  Pass an explicit
            ``max_workers`` (``1`` for the sequential determinism path)
            to force in-process execution.  The pool is shared state and
            is **not** closed by :meth:`close` — whoever built it owns
            its lifetime.
        cache_stats_in_profile: attach the engine's shared-cache
            statistics (hits, misses, LRU evictions — see
            :meth:`cache_stats`) to every response's ``profile`` under
            ``"engine_cache"``, so serving hit rates are observable per
            response.  Off by default; timing-like, so excluded from
            :meth:`~repro.api.schema.ShardingResponse.deterministic_dict`
            along with the rest of the profile.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        bundle: PretrainedCostModels | None = None,
        *,
        search: SearchConfig | None = None,
        default_strategy: str | None = None,
        strategy_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
        cache_max_entries: int | None = None,
        max_workers: int = 4,
        cache_stats_in_profile: bool = False,
        worker_pool: "WorkerPool | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if bundle is not None and bundle.num_devices != cluster.num_devices:
            raise ValueError(
                f"bundle was pre-trained for {bundle.num_devices} devices "
                f"but the cluster has {cluster.num_devices}"
            )
        if (
            worker_pool is not None
            and worker_pool.spec.cluster.num_devices != cluster.num_devices
        ):
            raise ValueError(
                f"worker pool serves {worker_pool.spec.cluster.num_devices} "
                f"devices but the cluster has {cluster.num_devices}"
            )
        self.cluster = cluster
        self.bundle = bundle
        # A mapping (engine spec / JSON config) is validated here, at
        # construction, not when the first sharder is built.
        self.search = None if search is None else SearchConfig.coerce(search)
        self.default_strategy = default_strategy or (
            "beam" if bundle is not None else "dim_greedy"
        )
        # Normalize alias keys (e.g. "neuroshard") to canonical names;
        # unknown keys fail fast instead of being silently ignored.
        self.strategy_kwargs = {
            strategy_info(name).name: dict(kwargs)
            for name, kwargs in (strategy_kwargs or {}).items()
        }
        self.max_workers = max_workers
        self.cache_stats_in_profile = cache_stats_in_profile
        self.cache = CostCache(max_entries=cache_max_entries)
        #: Cost-model simulator over the engine's bundle + shared cache
        #: (``None`` without a bundle).  Backs the uniform plan scoring
        #: and the incremental reshard search.
        self.simulator = (
            NeuroShardSimulator(bundle, self.cache) if bundle is not None else None
        )
        self.worker_pool = worker_pool
        self._sharders: dict[str, Any] = {}
        self._sharders_lock = threading.Lock()
        # Persistent default-size batch executor, created on first use
        # (spinning a fresh pool up per request would tax the hot path).
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False
        # Fail fast on an unknown default.
        strategy_info(self.default_strategy)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _thread_executor(self) -> ThreadPoolExecutor:
        """The engine's persistent default-size batch executor."""
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="engine-shard",
                )
            return self._executor

    def close(self) -> None:
        """Release the persistent batch executor; idempotent.

        An attached :attr:`worker_pool` is shared state (one pool may
        back many engines) and is deliberately *not* closed here — its
        owner closes it.
        """
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # strategy management
    # ------------------------------------------------------------------

    def available(self) -> list[str]:
        """Canonical strategy names this engine can serve right now."""
        return [
            name
            for name in available_strategies()
            if self.bundle is not None or not strategy_info(name).needs_bundle
        ]

    def _construction_kwargs(self, name: str) -> dict[str, Any]:
        info = strategy_info(name)
        kwargs = dict(self.strategy_kwargs.get(info.name, {}))
        if info.category == "core":
            if self.search is not None:
                kwargs.setdefault("search", self.search)
            # Offered to core strategies as their lifelong cache; only
            # used when the caller opts into lifelong_cache=True.
            kwargs.setdefault("cache", self.cache)
        return kwargs

    def sharder_for(
        self, name: str, options: Mapping[str, Any] | None = None
    ):
        """Resolve the serving sharder for one strategy.

        Stateful strategies and per-request option overrides get a fresh
        instance; everything else is memoized per strategy name.
        """
        options = options or {}
        info = strategy_info(name)
        kwargs = self._construction_kwargs(name)
        if options:
            kwargs.update(options)
            return make_sharder(
                info.name, cluster=self.cluster, bundle=self.bundle, **kwargs
            )
        if info.stateful:
            return make_sharder(
                info.name, cluster=self.cluster, bundle=self.bundle, **kwargs
            )
        with self._sharders_lock:
            if info.name not in self._sharders:
                self._sharders[info.name] = make_sharder(
                    info.name, cluster=self.cluster, bundle=self.bundle, **kwargs
                )
            return self._sharders[info.name]

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def shard(self, request: ShardingRequest) -> ShardingResponse:
        """Answer one sharding request.

        Strategy exceptions are contained: the response carries the
        message in ``error`` and reports the task infeasible.
        """
        name = request.strategy or self.default_strategy
        canonical = name
        started = time.perf_counter()
        try:
            canonical = strategy_info(name).name
            sharder = self.sharder_for(name, request.options)
            raw = sharder.shard(request.task)
        except Exception as exc:  # noqa: BLE001 — service boundary
            return self._finalize(
                ShardingResponse(
                    request_id=request.request_id,
                    strategy=canonical,
                    feasible=False,
                    plan=None,
                    simulated_cost_ms=math.inf,
                    sharding_time_s=time.perf_counter() - started,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        elapsed = time.perf_counter() - started
        return self._finalize(self._normalize(request, canonical, raw, elapsed))

    def _finalize(self, response: ShardingResponse) -> ShardingResponse:
        """Attach per-response engine diagnostics when enabled."""
        if not self.cache_stats_in_profile:
            return response
        profile = dict(response.profile or {})
        profile["engine_cache"] = self.cache_stats()
        return replace(response, profile=profile)

    def _normalize(
        self,
        request: ShardingRequest,
        strategy: str,
        raw: object,
        elapsed: float,
    ) -> ShardingResponse:
        """Lift any strategy return type into the response schema."""
        if isinstance(raw, ShardingResult):
            return ShardingResponse(
                request_id=request.request_id,
                strategy=strategy,
                feasible=raw.feasible,
                plan=raw.plan if raw.feasible else None,
                simulated_cost_ms=raw.simulated_cost_ms,
                sharding_time_s=elapsed,
                cache_hit_rate=raw.cache_hit_rate,
                evaluations=raw.evaluations,
                profile=getattr(raw, "profile", None),
            )
        if raw is None:
            return ShardingResponse(
                request_id=request.request_id,
                strategy=strategy,
                feasible=False,
                plan=None,
                simulated_cost_ms=math.inf,
                sharding_time_s=elapsed,
            )
        if isinstance(raw, ShardingPlan):
            return ShardingResponse(
                request_id=request.request_id,
                strategy=strategy,
                feasible=True,
                plan=raw,
                simulated_cost_ms=self._simulate(raw, request.task.tables),
                sharding_time_s=elapsed,
            )
        if isinstance(raw, PlanOverTables):
            rewritten = raw.tables != request.task.tables
            return ShardingResponse(
                request_id=request.request_id,
                strategy=strategy,
                feasible=True,
                plan=raw.plan,
                simulated_cost_ms=self._simulate(raw.plan, raw.tables),
                sharding_time_s=elapsed,
                effective_tables=raw.tables if rewritten else None,
            )
        raise TypeError(
            f"strategy {strategy!r} returned {type(raw).__name__}; expected "
            "ShardingPlan, PlanOverTables, ShardingResult or None"
        )

    def _simulate(self, plan: ShardingPlan, tables) -> float:
        """Score a plan on the engine's cost models (nan without them)."""
        if self.simulator is None:
            return math.nan
        per_device = plan.per_device_tables(tables)
        return self.simulator.plan_cost(per_device).max_cost_ms

    def shard_batch(
        self,
        requests: Sequence[ShardingRequest],
        max_workers: int | None = None,
    ) -> list[ShardingResponse]:
        """Answer many requests concurrently, in request order.

        Responses are identical to sequential :meth:`shard` calls except
        for wall-clock timing (see
        :meth:`~repro.api.schema.ShardingResponse.deterministic_dict`) —
        on the thread path, the process-pool path, and the sequential
        path alike.

        Routing: with a :attr:`worker_pool` attached and ``max_workers``
        omitted, the batch fans out to the worker processes (any size,
        including 1 — a lone request still benefits from leaving this
        process's GIL to concurrent callers).  Otherwise batches run in
        process: sequentially for ``max_workers == 1`` or trivial
        batches, on the engine's persistent executor at the default
        size, on a transient pool for per-call size overrides.

        Args:
            requests: the batch, answered in order.
            max_workers: in-process pool size for this batch; the
                engine's construction-time default when omitted.  Passing
                it explicitly (even the default value) forces in-process
                execution past an attached worker pool.
        """
        requests = list(requests)
        if max_workers is None:
            if self.worker_pool is not None and not self.worker_pool.closed:
                return self.worker_pool.shard_batch(requests)
            max_workers = self.max_workers
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers == 1 or len(requests) <= 1:
            return [self.shard(r) for r in requests]
        if max_workers == self.max_workers:
            return list(self._thread_executor().map(self.shard, requests))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.shard, requests))

    def compare(
        self,
        request: ShardingRequest,
        strategies: Sequence[str] | None = None,
    ) -> list[ShardingResponse]:
        """Answer one task with several strategies, in the given order.

        Args:
            request: the task to compare on (its own ``strategy`` field
                is ignored).
            strategies: names to run; defaults to the cheap construction-
                argument-free roster this engine can serve.
        """
        if strategies is None:
            available = set(self.available())
            strategies = [s for s in _DEFAULT_COMPARE if s in available]
        return [self.shard(request.with_strategy(name)) for name in strategies]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict[str, float | int]:
        """Shared-cache statistics of this engine process."""
        return {
            "entries": len(self.cache),
            "max_entries": self.cache.max_entries,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "evictions": self.cache.evictions,
            "hit_rate": self.cache.hit_rate,
        }
