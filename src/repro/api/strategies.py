"""Built-in strategy registrations for the sharding registry.

Importing this module (done by :mod:`repro.api`) populates the registry
with every algorithm the repository ships:

========================  =========  ==============================================
name                      category   algorithm
========================  =========  ==============================================
``beam``                  core       NeuroShard beam search (Algorithm 1 + 2)
``greedy_grid``           core       greedy grid search only (w/o beam ablation)
``random``                baseline   uniform random placement
``greedy``                baseline   sorting-enhanced greedy (``variant=`` kwarg)
``size_greedy`` ...       baseline   the four published greedy variants
``planner``               baseline   TorchRec-style planner (alias ``torchrec``)
``milp``                  baseline   RecShard-style MILP
``rl``                    baseline   DreamShard-style REINFORCE (alias
                                     ``dreamshard``)
``autoshard``             baseline   AutoShard-style REINFORCE
``surco``                 baseline   SurCo-style linear surrogate
``rowwise``               extension  row-wise pre-processing over a base strategy
``mixed``                 extension  mixed CPU-GPU drain-constrained greedy
``guided``                extension  policy-guided grid search
``imitation``             extension  behaviour-cloned policy
``offline_rl``            extension  advantage-weighted regression policy
========================  =========  ==============================================

Factories with learned policies (``imitation``, ``offline_rl``,
``guided``) accept ``train_tasks=[...]`` to fit at construction time, or
a pre-trained ``policy=`` to reuse one.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.registry import make_sharder, register_strategy
from repro.api.schema import PlanOverTables
from repro.baselines.greedy import GREEDY_COSTS, GreedySharder
from repro.baselines.milp import MilpSharder
from repro.baselines.planner import PlannerSharder
from repro.baselines.random_sharding import RandomSharder
from repro.baselines.rl import AutoShardSharder, DreamShardSharder
from repro.baselines.surrogate import SurrogateSharder
from repro.config import SearchConfig
from repro.core.plan import ShardingPlan
from repro.core.sharder import NeuroShard
from repro.data.tasks import ShardingTask
from repro.extensions.guided import PolicyGuidedSharder
from repro.extensions.imitation import ImitationSharder
from repro.extensions.mixed import MixedClusterSharder, MixedCostModels
from repro.extensions.offline_rl import OfflineRLSharder
from repro.extensions.rowwise import RowWiseSharder
from repro.hardware.hetero import HeterogeneousCluster
from repro.hardware.presets import device_class

__all__ = ["MixedStrategySharder", "RowWiseStrategySharder"]


# ----------------------------------------------------------------------
# core
# ----------------------------------------------------------------------


def _coerce_search(search, kwargs) -> SearchConfig:
    """Resolve a factory's ``search`` argument to a validated config.

    ``search`` wins over loose knob kwargs when both are given.  Request
    options arrive here as plain JSON (HTTP bodies, stored profiles,
    CLI-built dicts), so a mapping is pushed through
    :meth:`SearchConfig.coerce` — out-of-range knobs fail loudly at this
    entry point instead of surfacing later as attribute errors on a dict.
    """
    if search is None:
        return SearchConfig(**kwargs)
    return SearchConfig.coerce(search)


@register_strategy(
    "beam",
    description="NeuroShard beam search over column- and table-wise plans",
    category="core",
    needs_bundle=True,
    aliases=("neuroshard",),
)
def _make_beam(
    cluster, bundle, search=None, lifelong_cache=False, cache=None,
    profile=False, **kwargs
):
    # Per-request caches by default so batch results (including hit
    # rates) are independent of serving order; opt into the paper's
    # lifelong hash map with lifelong_cache=True (the engine then shares
    # its bounded cache).  profile=True attaches a SearchProfile to
    # every result (surfaced as ShardingResponse.profile).
    sharder = NeuroShard(
        bundle,
        search=_coerce_search(search, kwargs),
        lifelong_cache=lifelong_cache,
        cache=cache if lifelong_cache else None,
        profile=profile,
    )
    sharder.name = "NeuroShard"
    return sharder


@register_strategy(
    "greedy_grid",
    description="greedy grid search only (the w/o-beam-search ablation)",
    category="core",
    needs_bundle=True,
)
def _make_greedy_grid(
    cluster, bundle, search=None, lifelong_cache=False, cache=None,
    profile=False, **kwargs
):
    search = _coerce_search(search, kwargs)
    sharder = NeuroShard(
        bundle,
        search=search.with_ablation("beam_search"),
        lifelong_cache=lifelong_cache,
        cache=cache if lifelong_cache else None,
        profile=profile,
    )
    sharder.name = "GreedyGrid"
    return sharder


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------


@register_strategy(
    "random",
    description="uniform random placement among feasible devices",
    category="baseline",
    stateful=True,
)
def _make_random(cluster, bundle, seed=0, **kwargs):
    return RandomSharder(seed=seed)


@register_strategy(
    "greedy",
    description="sorting-enhanced greedy balancing of a heuristic cost",
    category="baseline",
)
def _make_greedy(cluster, bundle, variant="Dim-based", cost_fn=None, **kwargs):
    return GreedySharder(variant, cost_fn=cost_fn)


def _register_greedy_variant(alias: str, variant: str) -> None:
    @register_strategy(
        alias,
        description=f"greedy balancing of the {variant} heuristic cost",
        category="baseline",
    )
    def _factory(cluster, bundle, variant=variant, **kwargs):
        return GreedySharder(variant)


for _alias, _variant in {
    "size_greedy": "Size-based",
    "dim_greedy": "Dim-based",
    "lookup_greedy": "Lookup-based",
    "size_lookup_greedy": "Size-lookup-based",
}.items():
    _register_greedy_variant(_alias, _variant)
assert set(GREEDY_COSTS) == {
    "Size-based",
    "Dim-based",
    "Lookup-based",
    "Size-lookup-based",
}, "greedy variants drifted; update the registry aliases"


@register_strategy(
    "planner",
    description="TorchRec-style planner with heuristic closed-form costs",
    category="baseline",
    aliases=("torchrec",),
)
def _make_planner(cluster, bundle, **kwargs):
    kwargs.setdefault("batch_size", cluster.batch_size)
    return PlannerSharder(**kwargs)


@register_strategy(
    "milp",
    description="RecShard-style MILP balancing linear per-table costs",
    category="baseline",
)
def _make_milp(cluster, bundle, time_limit_s=10.0, **kwargs):
    return MilpSharder(time_limit_s=time_limit_s)


@register_strategy(
    "rl",
    description="DreamShard-style REINFORCE on the learned cost models",
    category="baseline",
    needs_bundle=True,
    stateful=True,
    aliases=("dreamshard",),
)
def _make_rl(cluster, bundle, **kwargs):
    return DreamShardSharder(bundle, **kwargs)


@register_strategy(
    "autoshard",
    description="AutoShard-style REINFORCE balancing computation only",
    category="baseline",
    needs_bundle=True,
    stateful=True,
)
def _make_autoshard(cluster, bundle, **kwargs):
    return AutoShardSharder(bundle, **kwargs)


@register_strategy(
    "surco",
    description="SurCo-style per-instance linear surrogate optimization",
    category="baseline",
    needs_bundle=True,
)
def _make_surco(cluster, bundle, **kwargs):
    return SurrogateSharder(bundle, **kwargs)


# ----------------------------------------------------------------------
# extensions
# ----------------------------------------------------------------------


class RowWiseStrategySharder:
    """Row-wise pre-processing with schema-expressible results.

    :class:`RowWiseSharder`'s plan indexes the row-split table list, which
    a bare :class:`~repro.core.plan.ShardingPlan` cannot express over the
    original task.  This wrapper returns the plan *with* the list it
    applies to (:class:`~repro.api.schema.PlanOverTables`), which the
    engine surfaces as ``ShardingResponse.effective_tables``.
    """

    def __init__(self, inner: RowWiseSharder) -> None:
        self._inner = inner
        self.name = inner.name

    def shard(self, task: ShardingTask) -> PlanOverTables | None:
        """Plan ``task``, returning the plan plus its rewritten table list."""
        plan, decision = self._inner.shard_with_tables(task)
        if plan is None:
            return None
        return PlanOverTables(plan=plan, tables=decision.tables)


@register_strategy(
    "rowwise",
    description="row-wise oversized-table pre-processing over a base strategy",
    category="extension",
)
def _make_rowwise(cluster, bundle, base=None, preprocessor=None, **kwargs):
    if base is None:
        base = "beam" if bundle is not None else "dim_greedy"
    if isinstance(base, str):
        base = make_sharder(base, cluster=cluster, bundle=bundle, **kwargs)
    return RowWiseStrategySharder(RowWiseSharder(base, preprocessor=preprocessor))


class MixedStrategySharder:
    """Adapts :class:`MixedClusterSharder` to the ``Sharder`` protocol.

    In the homogeneous registry context the heterogeneous machinery runs
    with every device sharing the deployment cluster's device spec and
    the bundle's computation model as the single class model; pass
    ``hetero_cluster=`` and ``mixed_models=`` to ``make_sharder`` for a
    genuinely mixed CPU-GPU setup.
    """

    name = "Mixed"

    def __init__(
        self,
        cluster,
        models: MixedCostModels,
        hetero_cluster: HeterogeneousCluster | None = None,
        **sharder_kwargs,
    ) -> None:
        self._spec = cluster.spec
        self._batch_size = cluster.batch_size
        self._noise_seed = cluster.noise_seed
        self._models = models
        self._hetero = hetero_cluster
        self._kwargs = sharder_kwargs

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        """Plan ``task`` on the (possibly synthesized) mixed cluster."""
        if self._hetero is not None:
            hetero = self._hetero
            if task.num_devices != hetero.num_devices:
                raise ValueError(
                    f"task has {task.num_devices} devices but the mixed "
                    f"cluster has {hetero.num_devices}"
                )
        else:
            hetero = HeterogeneousCluster(
                [self._spec] * task.num_devices,
                memory_bytes=task.memory_bytes,
                batch_size=self._batch_size,
                noise_seed=self._noise_seed,
            )
        sharder = MixedClusterSharder(hetero, self._models, **self._kwargs)
        result = sharder.shard(list(task.tables))
        if not result.feasible or result.assignment is None:
            return None
        return ShardingPlan(
            column_plan=result.column_plan,
            assignment=result.assignment,
            num_devices=hetero.num_devices,
        )


@register_strategy(
    "mixed",
    description="drain-constrained greedy search for (mixed) device classes",
    category="extension",
    needs_bundle=True,
)
def _make_mixed(
    cluster, bundle, hetero_cluster=None, mixed_models=None, **kwargs
):
    if mixed_models is None:
        if hetero_cluster is not None:
            raise ValueError(
                "pass mixed_models= alongside hetero_cluster= (use "
                "pretrain_mixed_cost_models to train per-class models)"
            )
        mixed_models = MixedCostModels(
            by_class={device_class(cluster.spec): bundle.compute},
            featurizer=bundle.featurizer,
            reports={},
            batch_size=bundle.batch_size,
        )
    return MixedStrategySharder(
        cluster, mixed_models, hetero_cluster=hetero_cluster, **kwargs
    )


def _fit_policy_if_asked(
    policy: ImitationSharder,
    cluster,
    bundle,
    train_tasks: Sequence[ShardingTask] | None,
    teacher,
    epochs: int,
) -> ImitationSharder:
    if train_tasks:
        if teacher is None:
            teacher = make_sharder("beam", cluster=cluster, bundle=bundle)
        policy.fit_from_search(teacher, train_tasks, epochs=epochs)
    return policy


@register_strategy(
    "imitation",
    description="behaviour-cloned table-wise policy (one-pass rollout)",
    category="extension",
    needs_bundle=True,
)
def _make_imitation(
    cluster,
    bundle,
    train_tasks=None,
    teacher=None,
    epochs=40,
    hidden=(128, 64),
    seed=0,
    **kwargs,
):
    policy = ImitationSharder(bundle, hidden=hidden, seed=seed)
    return _fit_policy_if_asked(
        policy, cluster, bundle, train_tasks, teacher, epochs
    )


@register_strategy(
    "offline_rl",
    description="advantage-weighted regression policy over a sharding log",
    category="extension",
    needs_bundle=True,
)
def _make_offline_rl(
    cluster,
    bundle,
    train_tasks=None,
    teachers=None,
    epochs=40,
    hidden=(128, 64),
    seed=0,
    **kwargs,
):
    policy = OfflineRLSharder(bundle, hidden=hidden, seed=seed, **kwargs)
    if train_tasks:
        if teachers is None:
            teachers = [
                make_sharder("beam", cluster=cluster, bundle=bundle),
                make_sharder("dim_greedy", cluster=cluster, bundle=bundle),
            ]
        policy.fit_from_log(train_tasks, teachers, epochs=epochs)
    return policy


@register_strategy(
    "guided",
    description="greedy grid search pruned by a learned device-ranking policy",
    category="extension",
    needs_bundle=True,
)
def _make_guided(
    cluster,
    bundle,
    policy=None,
    train_tasks=None,
    teacher=None,
    epochs=40,
    seed=0,
    **kwargs,
):
    if policy is None:
        if not train_tasks:
            raise ValueError(
                "strategy 'guided' needs a trained policy: pass policy= "
                "(a fitted ImitationSharder) or train_tasks=[...] to fit "
                "one at construction time"
            )
        policy = _fit_policy_if_asked(
            ImitationSharder(bundle, seed=seed),
            cluster,
            bundle,
            train_tasks,
            teacher,
            epochs,
        )
    return PolicyGuidedSharder(bundle, policy, **kwargs)
