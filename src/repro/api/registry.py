"""The strategy registry: one namespace for every sharding algorithm.

Every algorithm in the repository — NeuroShard's beam search, the
greedy-grid ablation, the six baseline families, and the extension
sharders — registers a *factory* under a short name.  A factory builds a
:class:`~repro.baselines.base.Sharder` from the deployment context (the
cluster and, when the algorithm is cost-model-driven, a pre-trained
bundle) plus strategy-specific keyword arguments.

Call :func:`make_sharder` to construct by name, or go through
:class:`repro.api.engine.ShardingEngine`, which adds uniform
request/response handling, batching and comparison on top.

Registering a new algorithm is one decorator::

    @register_strategy(
        "my_algo",
        description="what it does",
        category="extension",
        needs_bundle=True,
    )
    def _make_my_algo(cluster, bundle, **kwargs):
        return MyAlgoSharder(bundle, **kwargs)

The built-in registrations live in :mod:`repro.api.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.costmodel.pretrain import PretrainedCostModels
from repro.hardware.cluster import SimulatedCluster

__all__ = [
    "StrategyInfo",
    "UnknownStrategyError",
    "available_strategies",
    "make_sharder",
    "register_strategy",
    "strategy_info",
]

#: Factory signature: ``(cluster, bundle, **kwargs) -> Sharder``.
StrategyFactory = Callable[..., Any]


class UnknownStrategyError(ValueError):
    """Raised when a strategy name is not in the registry."""


@dataclass(frozen=True)
class StrategyInfo:
    """Registry record of one sharding algorithm.

    Attributes:
        name: canonical registry name.
        factory: builds the sharder from ``(cluster, bundle, **kwargs)``.
        description: one-line summary for listings and docs.
        category: ``"core"``, ``"baseline"`` or ``"extension"``.
        needs_bundle: the factory requires a pre-trained cost-model
            bundle (``make_sharder`` fails fast without one).
        stateful: ``shard()`` mutates internal state (e.g. advances an
            RNG stream), so the engine builds a fresh instance per
            request to keep batch and sequential serving identical.
        aliases: alternative names resolving to this strategy.
    """

    name: str
    factory: StrategyFactory
    description: str
    category: str
    needs_bundle: bool = False
    stateful: bool = False
    aliases: tuple[str, ...] = field(default=())


_REGISTRY: dict[str, StrategyInfo] = {}
_ALIASES: dict[str, str] = {}

_CATEGORIES = ("core", "baseline", "extension")


def register_strategy(
    name: str,
    *,
    description: str,
    category: str,
    needs_bundle: bool = False,
    stateful: bool = False,
    aliases: tuple[str, ...] = (),
) -> Callable[[StrategyFactory], StrategyFactory]:
    """Decorator registering a sharder factory under ``name``.

    Raises:
        ValueError: on duplicate names/aliases or an unknown category.
    """
    if category not in _CATEGORIES:
        raise ValueError(
            f"category must be one of {_CATEGORIES}, got {category!r}"
        )

    def decorator(factory: StrategyFactory) -> StrategyFactory:
        """Record ``factory`` (and its aliases) in the registry."""
        for key in (name, *aliases):
            if key in _REGISTRY or key in _ALIASES:
                raise ValueError(f"strategy name {key!r} already registered")
        _REGISTRY[name] = StrategyInfo(
            name=name,
            factory=factory,
            description=description,
            category=category,
            needs_bundle=needs_bundle,
            stateful=stateful,
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return decorator


def _resolve(name: str) -> StrategyInfo:
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise UnknownStrategyError(
            f"unknown sharding strategy {name!r}; available strategies: "
            f"{known}"
        ) from None


def strategy_info(name: str) -> StrategyInfo:
    """Look up a strategy (or alias) record.

    Raises:
        UnknownStrategyError: when the name is not registered.
    """
    return _resolve(name)


def available_strategies(category: str | None = None) -> list[str]:
    """Sorted canonical strategy names, optionally filtered by category."""
    names = [
        info.name
        for info in _REGISTRY.values()
        if category is None or info.category == category
    ]
    return sorted(names)


def iter_strategies() -> Iterator[StrategyInfo]:
    """All registered strategies in name order."""
    for name in available_strategies():
        yield _REGISTRY[name]


def all_names() -> list[str]:
    """Every resolvable name: canonical names plus aliases, sorted."""
    return sorted(set(_REGISTRY) | set(_ALIASES))


def make_sharder(
    name: str,
    *,
    cluster: SimulatedCluster,
    bundle: PretrainedCostModels | None = None,
    **kwargs: Any,
):
    """Construct the sharder registered under ``name``.

    Args:
        name: a canonical strategy name or alias (see
            :func:`available_strategies`).
        cluster: the deployment cluster (device count, memory, batch
            size) the sharder plans for.
        bundle: pre-trained cost models; required by cost-model-driven
            strategies (``strategy_info(name).needs_bundle``).
        **kwargs: strategy-specific options forwarded to the factory.

    Raises:
        UnknownStrategyError: when ``name`` is not registered.
        ValueError: when the strategy needs a bundle and none was given,
            or when the bundle's device count mismatches the cluster's.
    """
    info = _resolve(name)
    if info.needs_bundle and bundle is None:
        raise ValueError(
            f"strategy {info.name!r} needs a pre-trained cost-model bundle; "
            "pass bundle=... (see PretrainedCostModels / BundleStore)"
        )
    if bundle is not None and bundle.num_devices != cluster.num_devices:
        raise ValueError(
            f"bundle was pre-trained for {bundle.num_devices} devices but "
            f"the cluster has {cluster.num_devices}"
        )
    return info.factory(cluster=cluster, bundle=bundle, **kwargs)
