"""Stable request/response dataclasses of the service API.

:class:`ShardingRequest` and :class:`ShardingResponse` are the wire types
of :class:`repro.api.engine.ShardingEngine`: every strategy — NeuroShard
beam search, the heuristic/learned baselines, the extensions — answers
the same request shape with the same response shape, so callers (CLI,
evaluation harness, batch servers) never special-case an algorithm.

The response generalizes :class:`repro.core.sharder.ShardingResult`
(feasibility, plan, simulated cost, timing, cache statistics) and adds
the strategy name, a request correlation id, and an error field for
strategies that raise instead of returning.

Both types round-trip through versioned JSON dictionaries
(:meth:`to_dict` / :meth:`from_dict`); ``SCHEMA_VERSION`` is bumped on
incompatible layout changes and checked on load, so stale payloads fail
loudly instead of deserializing garbage.  Non-finite floats (the
infeasible-plan ``inf`` cost) map to ``None`` in JSON and back.

Additive, ``None``-defaulted keys do **not** bump the version: a
serialized :class:`~repro.api.service.PlanRecord` carries a
``provenance`` object (its hash-chain link — see
:mod:`repro.provenance.chain`) and its ``validation`` report carries
``code_fingerprint``/``validated_digest`` stamps, but payloads written
before those fields existed still load (the fields default to
``None``/empty, and the offline auditor reports them as legacy
advisories, not errors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, NamedTuple

from repro.core.plan import ShardingPlan
from repro.data.io import table_from_dict, table_to_dict
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask

__all__ = [
    "SCHEMA_VERSION",
    "PlanOverTables",
    "ShardingRequest",
    "ShardingResponse",
    "check_version",
    "plan_from_dict",
    "plan_to_dict",
]


class PlanOverTables(NamedTuple):
    """A strategy's plan plus the table list it indexes.

    Strategies that rewrite the task's tables before planning (row-wise
    pre-processing splits oversized tables) return this instead of a bare
    plan, so the engine can score and report the plan against the list it
    actually applies to (``ShardingResponse.effective_tables``).
    """

    plan: ShardingPlan
    tables: tuple[TableConfig, ...]

#: Version tag embedded in every serialized request/response.
SCHEMA_VERSION = 1


def plan_to_dict(plan: ShardingPlan) -> dict[str, Any]:
    """Serialize a plan to plain JSON types."""
    return {
        "column_plan": list(plan.column_plan),
        "assignment": list(plan.assignment),
        "num_devices": plan.num_devices,
    }


def plan_from_dict(data: Mapping[str, Any]) -> ShardingPlan:
    """Inverse of :func:`plan_to_dict`."""
    return ShardingPlan(
        column_plan=tuple(int(i) for i in data["column_plan"]),
        assignment=tuple(int(d) for d in data["assignment"]),
        num_devices=int(data["num_devices"]),
    )


def check_version(data: Mapping[str, Any], kind: str) -> None:
    """Reject a payload whose ``schema_version`` this code cannot read.

    Raises:
        ValueError: when the version tag is missing or differs from
            :data:`SCHEMA_VERSION`.
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{kind} payload has schema version {version!r}, this code "
            f"reads {SCHEMA_VERSION}"
        )


#: Backward-compatible alias (pre-validation-layer internal name).
_check_version = check_version


def _to_finite(value: float) -> float | None:
    """JSON-safe float: non-finite values become ``None``."""
    return float(value) if math.isfinite(value) else None


def _from_finite(value: float | None, default: float) -> float:
    return default if value is None else float(value)


@dataclass(frozen=True)
class ShardingRequest:
    """One sharding question posed to the engine.

    Attributes:
        task: the sharding problem (tables, device count, memory budget).
        strategy: registry name of the algorithm to answer with; ``None``
            uses the engine's default strategy.
        request_id: caller-chosen correlation id, echoed in the response.
        options: per-request strategy keyword overrides, merged over the
            engine's construction-time ``strategy_kwargs``.
    """

    task: ShardingTask
    strategy: str | None = None
    request_id: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)

    def with_strategy(self, strategy: str) -> "ShardingRequest":
        """Copy of this request targeting another strategy."""
        return replace(self, strategy=strategy)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "request_id": self.request_id,
            "strategy": self.strategy,
            "options": dict(self.options),
            "task": {
                "task_id": self.task.task_id,
                "num_devices": self.task.num_devices,
                "memory_bytes": self.task.memory_bytes,
                "tables": [table_to_dict(t) for t in self.task.tables],
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardingRequest":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "request")
        task_data = data["task"]
        task = ShardingTask(
            tables=tuple(table_from_dict(t) for t in task_data["tables"]),
            num_devices=int(task_data["num_devices"]),
            memory_bytes=int(task_data["memory_bytes"]),
            task_id=int(task_data.get("task_id", 0)),
        )
        return cls(
            task=task,
            strategy=data.get("strategy"),
            request_id=str(data.get("request_id", "")),
            options=dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class ShardingResponse:
    """Uniform answer of any strategy to a :class:`ShardingRequest`.

    Attributes:
        request_id: echo of the request's correlation id.
        strategy: registry name that produced this answer.
        feasible: a memory-legal plan was found.
        plan: the plan (``None`` when infeasible or on error).
        simulated_cost_ms: the cost models' estimate of the plan's
            embedding cost (``nan`` when no bundle can score the plan,
            ``inf`` when infeasible).
        sharding_time_s: wall-clock planning time.
        cache_hit_rate: computation-cost cache hit rate of the search
            (0.0 for strategies that do not use the cache).
        evaluations: inner-loop invocations (0 when not reported).
        error: diagnostic message when the strategy raised; a response
            with an error is always infeasible.
        effective_tables: when set, the plan indexes this table list
            instead of the request task's (strategies that rewrite the
            task first, e.g. row-wise splitting of oversized tables).
        profile: serialized :class:`~repro.perf.SearchProfile` (stage
            timers and work counters of the search) when the serving
            strategy ran with profiling enabled (request option
            ``{"profile": True}`` on the core strategies); ``None``
            otherwise.
    """

    request_id: str
    strategy: str
    feasible: bool
    plan: ShardingPlan | None
    simulated_cost_ms: float
    sharding_time_s: float
    cache_hit_rate: float = 0.0
    evaluations: int = 0
    error: str | None = None
    effective_tables: tuple[TableConfig, ...] | None = None
    profile: Mapping[str, Any] | None = None

    def plan_tables(self, task: ShardingTask) -> tuple[TableConfig, ...]:
        """The table list :attr:`plan` assigns, for ``task``."""
        return self.effective_tables or task.tables

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "request_id": self.request_id,
            "strategy": self.strategy,
            "feasible": self.feasible,
            "plan": None if self.plan is None else plan_to_dict(self.plan),
            "simulated_cost_ms": _to_finite(self.simulated_cost_ms),
            "sharding_time_s": float(self.sharding_time_s),
            "cache_hit_rate": float(self.cache_hit_rate),
            "evaluations": int(self.evaluations),
            "error": self.error,
            "effective_tables": (
                None
                if self.effective_tables is None
                else [table_to_dict(t) for t in self.effective_tables]
            ),
            "profile": None if self.profile is None else dict(self.profile),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardingResponse":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "response")
        plan_data = data.get("plan")
        feasible = bool(data["feasible"])
        tables_data = data.get("effective_tables")
        return cls(
            request_id=str(data.get("request_id", "")),
            strategy=str(data["strategy"]),
            feasible=feasible,
            plan=None if plan_data is None else plan_from_dict(plan_data),
            simulated_cost_ms=_from_finite(
                data.get("simulated_cost_ms"),
                math.inf if not feasible else math.nan,
            ),
            sharding_time_s=float(data.get("sharding_time_s", 0.0)),
            cache_hit_rate=float(data.get("cache_hit_rate", 0.0)),
            evaluations=int(data.get("evaluations", 0)),
            error=data.get("error"),
            effective_tables=(
                None
                if tables_data is None
                else tuple(table_from_dict(t) for t in tables_data)
            ),
            profile=data.get("profile"),
        )

    def deterministic_dict(self) -> dict[str, Any]:
        """The serialized response minus its wall-clock measurements.

        Everything the engine computes is deterministic except
        ``sharding_time_s`` and the profile's stage timers; this view is
        what batch-vs-sequential equivalence is defined (and tested)
        over.
        """
        payload = self.to_dict()
        payload.pop("sharding_time_s")
        payload.pop("profile")
        return payload
