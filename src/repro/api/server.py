"""Async HTTP front-end of the plan-lifecycle service (stdlib only).

A thin JSON-over-HTTP layer on :class:`~repro.api.service
.ShardingService`, built on :class:`http.server.ThreadingHTTPServer`
(one handler thread per connection) plus a **micro-batching queue** for
the hot endpoint: concurrent ``plan`` requests are collected for a few
milliseconds and flushed through the engine's concurrent
:meth:`~repro.api.engine.ShardingEngine.shard_batch` path, so a burst of
``B`` clients costs one batched dispatch instead of ``B`` engine
round-trips — and, because the batch path is sequential-deterministic,
every client still gets exactly the response a lone
:meth:`~repro.api.engine.ShardingEngine.shard` call would have produced.

Endpoints (all bodies and responses are JSON)::

    GET  /v1/strategies                       registry listing
    GET  /v1/deployments                      deployment names
    POST /v1/deployments                      create {name, tables, ...}
    GET  /v1/deployments/<name>/status
    GET  /v1/deployments/<name>/history
    GET  /v1/deployments/<name>/validate      run the invariant suite
    GET  /v1/deployments/<name>/audit         verify the provenance chain
    POST /v1/deployments/<name>/plan          {strategy?, options?, request_id?}
    POST /v1/deployments/<name>/apply         {version?}
    POST /v1/deployments/<name>/reshard       {delta, config?, strategy?, apply?}
    POST /v1/deployments/<name>/rollback

Errors map to HTTP statuses: unknown deployment → 404, invalid input →
400, handler crash → 500; every error body is ``{"error": "..."}``.

Start one with :func:`serve` (blocking, the CLI's ``repro serve``) or
:class:`ShardingHTTPServer` directly (tests embed it)::

    server = ShardingHTTPServer(service, engine, host="127.0.0.1", port=0)
    server.start()           # background thread
    ...                      # http://127.0.0.1:{server.port}/v1/...
    server.close()
"""

from __future__ import annotations

import json
import queue
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.api.engine import ShardingEngine
from repro.api.registry import iter_strategies
from repro.api.reshard import ReshardConfig, WorkloadDelta
from repro.api.service import (
    DeploymentNotFoundError,
    PlanRecord,
    ShardingService,
)
from repro.data.io import table_from_dict

__all__ = ["ShardingHTTPServer", "serve"]

_DEPLOYMENT_PATH = re.compile(
    r"^/v1/deployments/(?P<name>[^/]+)/(?P<verb>[a-z]+)$"
)

#: Upper bound a handler thread waits for its micro-batch to be served.
_PLAN_TIMEOUT_S = 600.0


class _PlanJob:
    """One queued ``plan`` request awaiting its micro-batch."""

    def __init__(
        self,
        deployment: str,
        spec: tuple[str | None, Mapping[str, Any] | None, str],
    ) -> None:
        self.deployment = deployment
        self.spec = spec
        self.event = threading.Event()
        self.record: PlanRecord | None = None
        self.error: Exception | None = None

    def resolve(self, record: PlanRecord) -> None:
        """Deliver the finished record and wake the waiting handler."""
        self.record = record
        self.event.set()

    def fail(self, error: Exception) -> None:
        """Deliver a planning failure and wake the waiting handler."""
        self.error = error
        self.event.set()


class _PlanBatcher(threading.Thread):
    """Collect concurrent plan jobs and flush them through ``plan_batch``.

    The first job of a batch is taken blocking; further jobs are drained
    for at most ``batch_wait_s`` (or until ``max_batch`` are in hand),
    then the batch is grouped by deployment and each group dispatched on
    its own worker thread.  Within one micro-batch a deployment's jobs
    keep their arrival order (spec order = version order); requests
    racing across micro-batches are ordered by the deployment lock, as
    for any concurrent clients.
    """

    def __init__(
        self,
        service: ShardingService,
        max_batch: int = 8,
        batch_wait_s: float = 0.01,
    ) -> None:
        super().__init__(name="plan-batcher", daemon=True)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.max_batch = max_batch
        self.batch_wait_s = batch_wait_s
        self._queue: queue.Queue[_PlanJob | None] = queue.Queue()
        self._closed = False
        # In-flight accounting for the graceful drain: a job counts from
        # submit() until resolve()/fail() delivers its outcome.
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    def submit(self, job: _PlanJob) -> None:
        """Enqueue one plan job for the next micro-batch."""
        if self._closed:
            raise RuntimeError("server is shutting down")
        with self._inflight_cv:
            self._inflight += 1
        self._queue.put(job)

    def _settle(self, jobs: list[_PlanJob]) -> None:
        """Mark delivered jobs no longer in flight."""
        with self._inflight_cv:
            self._inflight -= len(jobs)
            self._inflight_cv.notify_all()

    def stop(self, drain_s: float = 0.0) -> None:
        """Stop accepting jobs, then (optionally) drain the in-flight ones.

        With ``drain_s > 0`` the call blocks — up to the deadline —
        until every accepted plan job has been delivered an outcome, so
        a graceful shutdown never strands a client that was already
        promised an answer.  Jobs that raced past the close flag into
        the queue after the batcher thread exited are failed explicitly
        rather than left waiting out their HTTP timeout.
        """
        deadline = time.monotonic() + max(drain_s, 0.0)
        self._closed = True
        self._queue.put(None)
        if drain_s <= 0:
            return
        if self.is_alive():
            self.join(timeout=max(deadline - time.monotonic(), 0.0))
        # The batcher thread is gone; anything still queued will never
        # be dispatched — deliver the failure now.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                job.fail(RuntimeError("server is shutting down"))
                self._settle([job])
        with self._inflight_cv:
            self._inflight_cv.wait_for(
                lambda: self._inflight <= 0,
                timeout=max(deadline - time.monotonic(), 0.0),
            )

    def run(self) -> None:  # pragma: no cover — exercised via HTTP tests
        """Collect jobs into micro-batches and dispatch them."""
        while True:
            job = self._queue.get()
            if job is None:
                return
            batch = [job]
            deadline = time.monotonic() + self.batch_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    self._dispatch(batch)
                    return
                batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_PlanJob]) -> None:
        groups: dict[str, list[_PlanJob]] = {}
        for job in batch:
            groups.setdefault(job.deployment, []).append(job)
        # One worker thread per deployment group, not joined: planning
        # stays serialized *per deployment* (the service's deployment
        # lock orders versions), but deployment B never waits behind
        # deployment A's slow search, and the batcher loop is free to
        # collect the next micro-batch immediately.
        for name, jobs in groups.items():
            threading.Thread(
                target=self._dispatch_group,
                args=(name, jobs),
                name=f"plan-batch-{name}",
                daemon=True,
            ).start()

    def _dispatch_group(self, name: str, jobs: list[_PlanJob]) -> None:
        try:
            records = self.service.plan_batch(name, [job.spec for job in jobs])
        except Exception as exc:  # noqa: BLE001 — service boundary
            for job in jobs:
                job.fail(exc)
        else:
            for job, record in zip(jobs, records):
                job.resolve(record)
        finally:
            self._settle(jobs)


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the service (one thread per connection)."""

    protocol_version = "HTTP/1.1"
    server: "ShardingHTTPServer"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Arm the per-request socket timeout before reading anything.

        One stalled or half-open client must not pin a handler thread
        forever: ``BaseRequestHandler`` applies :attr:`timeout` to the
        connection socket, so a read that sits idle past the server's
        ``request_timeout_s`` raises ``TimeoutError`` and the connection
        is torn down instead of leaking the thread.
        """
        self.timeout = self.server.request_timeout_s
        super().setup()

    def handle(self) -> None:
        """Serve the connection; a mid-body stall tears it down.

        ``BaseHTTPRequestHandler`` only maps a timeout on the *request
        line* to a clean close; a client that stalls mid-headers or
        mid-body instead raises ``TimeoutError`` out of the read.  Catch
        it here so the handler thread always exits.
        """
        try:
            super().handle()
        except TimeoutError:
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Log one line per request only in ``--verbose`` mode."""
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _drain_body(self) -> bytes:
        """Consume the request body (if any) without interpreting it.

        Connections are keep-alive (HTTP/1.1): an error response that
        leaves body bytes unread would desynchronize the next request on
        the same connection, so every path — including 404s — must drain
        before replying.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _read_body(self) -> dict[str, Any]:
        raw = self._drain_body()
        if not raw:
            return {}
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _guard(self, fn, *args) -> None:
        """Run a route handler, mapping exceptions to HTTP statuses."""
        try:
            fn(*args)
        except DeploymentNotFoundError as exc:
            self._send_error_json(404, str(exc.args[0] if exc.args else exc))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — service boundary
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        """Route the read-only endpoints (strategies/deployments/status/...)."""
        self._drain_body()  # GET handlers never use a body; keep the
        # connection synchronized if a client sent one anyway
        if self.path == "/v1/strategies":
            self._guard(self._get_strategies)
            return
        if self.path == "/v1/deployments":
            self._guard(self._get_deployments)
            return
        match = _DEPLOYMENT_PATH.match(self.path)
        if match and match["verb"] == "status":
            self._guard(self._get_status, match["name"])
            return
        if match and match["verb"] == "history":
            self._guard(self._get_history, match["name"])
            return
        if match and match["verb"] == "validate":
            self._guard(self._get_validate, match["name"])
            return
        if match and match["verb"] == "audit":
            self._guard(self._get_audit, match["name"])
            return
        self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        """Route the mutating endpoints (create/plan/apply/reshard/rollback)."""
        if self.path == "/v1/deployments":
            self._guard(self._post_create)
            return
        match = _DEPLOYMENT_PATH.match(self.path)
        if match:
            verb = match["verb"]
            handlers = {
                "plan": self._post_plan,
                "apply": self._post_apply,
                "reshard": self._post_reshard,
                "rollback": self._post_rollback,
            }
            if verb in handlers:
                self._guard(handlers[verb], match["name"])
                return
        self._drain_body()
        self._send_error_json(404, f"unknown path {self.path!r}")

    # ------------------------------------------------------------------
    # GET routes
    # ------------------------------------------------------------------

    def _get_strategies(self) -> None:
        self._send_json(
            200,
            {
                "strategies": [
                    {
                        "name": info.name,
                        "category": info.category,
                        "needs_bundle": info.needs_bundle,
                        "aliases": list(info.aliases),
                        "description": info.description,
                    }
                    for info in iter_strategies()
                ]
            },
        )

    def _get_deployments(self) -> None:
        self._send_json(200, {"deployments": self.server.service.deployments()})

    def _get_status(self, name: str) -> None:
        self._send_json(200, self.server.service.status(name))

    def _get_history(self, name: str) -> None:
        self._send_json(200, {"history": self.server.service.history(name)})

    def _get_validate(self, name: str) -> None:
        # Violations are reported in the body, not as an HTTP error:
        # the validation *ran* successfully either way.
        self._send_json(
            200, self.server.service.validate_deployment(name).to_dict()
        )

    def _get_audit(self, name: str) -> None:
        # As with validate: findings live in the body; the audit itself
        # ran.  A memory-only service has no store to audit → 400.
        try:
            report = self.server.service.audit_deployment(name)
        except FileNotFoundError as exc:
            raise DeploymentNotFoundError(str(exc)) from None
        self._send_json(200, report.to_dict())

    # ------------------------------------------------------------------
    # POST routes
    # ------------------------------------------------------------------

    def _post_create(self) -> None:
        body = self._read_body()
        name = body.get("name")
        if not name:
            raise ValueError("create needs a 'name'")
        tables_data = body.get("tables")
        if not tables_data:
            raise ValueError("create needs a non-empty 'tables' list")
        engine = self.server.engine
        if engine is None:
            raise ValueError(
                "this server was started without an engine; create "
                "deployments through the service API instead"
            )
        status = self.server.service.create_deployment(
            name,
            engine,
            tables=tuple(table_from_dict(t) for t in tables_data),
            memory_bytes=(
                int(body["memory_bytes"]) if "memory_bytes" in body else None
            ),
            bundle_ref=self.server.bundle_ref,
        )
        self._send_json(200, status)

    def _post_plan(self, name: str) -> None:
        body = self._read_body()
        job = _PlanJob(
            name,
            (
                body.get("strategy"),
                body.get("options") or {},
                str(body.get("request_id", "")),
            ),
        )
        self.server.batcher.submit(job)
        if not job.event.wait(timeout=_PLAN_TIMEOUT_S):
            self._send_error_json(500, "plan request timed out")
            return
        if job.error is not None:
            raise job.error
        assert job.record is not None
        self._send_json(200, job.record.to_dict())

    def _post_apply(self, name: str) -> None:
        body = self._read_body()
        version = body.get("version")
        record = self.server.service.apply(
            name, None if version is None else int(version)
        )
        self._send_json(200, record.to_dict())

    def _post_reshard(self, name: str) -> None:
        body = self._read_body()
        delta_data = body.get("delta")
        if not delta_data:
            raise ValueError("reshard needs a 'delta' object")
        delta = WorkloadDelta.from_dict(delta_data)
        config_data = body.get("config")
        config = (
            None if config_data is None else ReshardConfig.from_dict(config_data)
        )
        record = self.server.service.reshard(
            name,
            delta,
            config=config,
            strategy=body.get("strategy"),
            apply=bool(body.get("apply", True)),
            request_id=str(body.get("request_id", "")),
        )
        self._send_json(200, record.to_dict())

    def _post_rollback(self, name: str) -> None:
        self._drain_body()  # rollback takes no parameters
        record = self.server.service.rollback(name)
        self._send_json(200, record.to_dict())


class ShardingHTTPServer(ThreadingHTTPServer):
    """Threaded JSON server over a :class:`ShardingService`.

    Args:
        service: the lifecycle service to expose.
        engine: engine used by the HTTP ``create`` endpoint for new
            deployments (``None`` disables HTTP creation).
        host / port: bind address (``port=0`` picks a free port).
        max_batch / batch_wait_s: micro-batching knobs of the ``plan``
            endpoint.
        bundle_ref: bundle pointer recorded on HTTP-created deployments.
        verbose: log one line per request to stderr.
        request_timeout_s: per-connection socket timeout — a client that
            stalls (half-open connection, abandoned upload) is torn down
            after this instead of pinning its handler thread forever.
            Conservative by default; it bounds *socket idle time*, not
            planning time (a slow search keeps the handler legitimately
            busy and is bounded separately by the plan-job timeout).
        drain_s: graceful-drain budget of :meth:`close` — how long to
            wait for already-accepted plan jobs to finish before the
            socket goes away (``0`` restores the old drop-everything
            shutdown).
    """

    daemon_threads = True

    def __init__(
        self,
        service: ShardingService,
        engine: ShardingEngine | None = None,
        host: str = "127.0.0.1",
        port: int = 8731,
        max_batch: int = 8,
        batch_wait_s: float = 0.01,
        bundle_ref: str | None = None,
        verbose: bool = False,
        request_timeout_s: float = 60.0,
        drain_s: float = 30.0,
    ) -> None:
        if request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if drain_s < 0:
            raise ValueError(f"drain_s must be >= 0, got {drain_s}")
        super().__init__((host, port), _Handler)
        self.service = service
        self.engine = engine
        self.bundle_ref = bundle_ref
        self.verbose = verbose
        self.request_timeout_s = request_timeout_s
        self.drain_s = drain_s
        self.batcher = _PlanBatcher(
            service, max_batch=max_batch, batch_wait_s=batch_wait_s
        )
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self.server_address[1]

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self.batcher.start()
        self._thread = threading.Thread(
            target=self.serve_forever, name="sharding-http", daemon=True
        )
        self._thread.start()

    def run(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self.batcher.start()
        try:
            self.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop serving and release the socket, draining in-flight work.

        Shutdown order is deliberate: first stop *accepting* plan jobs
        and wait (up to :attr:`drain_s`) for the accepted ones to
        deliver their outcome — their handler threads are still writing
        responses on live connections — then stop the accept loop and
        release the listening socket.
        """
        self.batcher.stop(drain_s=self.drain_s)
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve(
    service: ShardingService,
    engine: ShardingEngine | None = None,
    host: str = "127.0.0.1",
    port: int = 8731,
    **kwargs: Any,
) -> None:
    """Blocking convenience wrapper: build the server and run it."""
    ShardingHTTPServer(service, engine, host=host, port=port, **kwargs).run()
