"""Incremental resharding: keep a live plan good under a moving workload.

The one-shot search answers "what is the best plan for this task?"; a
deployment needs the answer to "the workload changed — what is the best
plan *reachable from the one currently applied*?".  Re-searching from
scratch typically reshuffles most shards, and every moved shard is live
state that must travel (:mod:`repro.api.diff`), so the right objective
is the paper's simulated embedding cost plus an amortized migration
term:

    objective = simulated_cost_ms + lambda * migration_cost_ms

where ``lambda`` converts a one-time migration into per-iteration cost
(roughly ``1 / iterations-until-the-next-reshard``).

:func:`incremental_reshard` evaluates two candidates under that
objective and a hard ``migration_budget_ms``:

1. **warm start** — surviving shards keep their devices, added tables
   (column-split until they fit a device) are placed greedily by the
   cost models, then a bounded local search moves bottleneck-device
   shards while the objective improves and the budget holds;
2. **full re-search** — the engine's regular strategy on the new task,
   considered when ``allow_full_search`` and its migration cost fits the
   budget ("fall back to full re-search when the budget allows").

Workload deltas (:class:`WorkloadDelta`) carry added/removed tables,
in-place access-statistics updates (``update_stats`` — pooling/skew
changes that move no bytes by themselves), and optionally the
:class:`~repro.costmodel.drift.DriftReport` that triggered the reshard,
so drift-driven replans are recorded with their evidence.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.diff import MigrationCostModel, PlanDiff
from repro.api.schema import SCHEMA_VERSION, ShardingRequest, ShardingResponse, _check_version
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.drift import DriftReport
from repro.data.io import table_from_dict, table_to_dict
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = [
    "ReshardConfig",
    "ReshardResult",
    "WorkloadDelta",
    "apply_stats_updates",
    "incremental_reshard",
]


def apply_stats_updates(
    tables: Sequence[TableConfig], updates: Sequence[TableConfig]
) -> tuple[TableConfig, ...]:
    """Rewrite tables' access statistics in place (zero bytes moved).

    Each update is matched by ``table_id`` and replaces only the
    cost-statistics fields (``pooling_factor``, ``zipf_alpha``) of every
    matching table — the stored weights (``dim``, ``hash_size``,
    ``bytes_per_element``) are untouched, which is what makes a stats
    update migration-free by construction.  Shared by the incremental
    reshard (applying a :attr:`WorkloadDelta.update_stats`) and the
    validation layer (recomputing transition diffs against the same
    stat-updated base the reshard searched from).

    Raises:
        ValueError: when an update references a ``table_id`` absent from
            ``tables``.
    """
    present = {t.table_id for t in tables}
    missing = sorted(
        t.table_id for t in updates if t.table_id not in present
    )
    if missing:
        raise ValueError(
            f"update_stats references table ids {missing} that are not "
            "in the applied workload"
        )
    stats = {t.table_id: t for t in updates}
    return tuple(
        t
        if t.table_id not in stats
        else dataclasses.replace(
            t,
            pooling_factor=stats[t.table_id].pooling_factor,
            zipf_alpha=stats[t.table_id].zipf_alpha,
        )
        for t in tables
    )


@dataclass(frozen=True)
class WorkloadDelta:
    """A workload change between the applied plan and now.

    Attributes:
        add_tables: tables the model gained.
        remove_table_ids: ``table_id``s the model dropped (every shard of
            a removed table disappears).
        update_stats: tables (matched by ``table_id`` against the applied
            workload) whose *access statistics* — ``pooling_factor`` and
            ``zipf_alpha`` — changed while the stored weights did not.
            The reshard rewrites the surviving shards' statistics in
            place, so a stats update moves no bytes by itself; only
            rebalancing the search then chooses to do is priced.  A
            storage change (``dim``, ``hash_size``) must instead be
            expressed as remove + add of the same id, which prices the
            re-materialization.
        drift: the drift probe that motivated the reshard, when one did
            (see :class:`~repro.costmodel.drift.DriftMonitor`).

    Raises:
        ValueError: when one ``table_id`` appears in more than one of
            ``add_tables`` / ``remove_table_ids`` / ``update_stats`` in a
            contradictory way (an id both updated and removed, or both
            updated and re-added).
    """

    add_tables: tuple[TableConfig, ...] = ()
    remove_table_ids: tuple[int, ...] = ()
    update_stats: tuple[TableConfig, ...] = ()
    drift: DriftReport | None = None

    def __post_init__(self) -> None:
        updated = {t.table_id for t in self.update_stats}
        if len(updated) != len(self.update_stats):
            raise ValueError("update_stats repeats a table_id")
        clashes = updated & (
            set(self.remove_table_ids) | {t.table_id for t in self.add_tables}
        )
        if clashes:
            raise ValueError(
                f"table ids {sorted(clashes)} appear in update_stats and in "
                "add_tables/remove_table_ids of the same delta"
            )

    @property
    def is_empty(self) -> bool:
        """Whether the delta changes nothing about the workload."""
        return (
            not self.add_tables
            and not self.remove_table_ids
            and not self.update_stats
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "add_tables": [table_to_dict(t) for t in self.add_tables],
            "remove_table_ids": list(self.remove_table_ids),
            "update_stats": [table_to_dict(t) for t in self.update_stats],
            "drift": None if self.drift is None else self.drift.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadDelta":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "workload delta")
        drift = data.get("drift")
        return cls(
            add_tables=tuple(
                table_from_dict(t) for t in data.get("add_tables", ())
            ),
            remove_table_ids=tuple(
                int(i) for i in data.get("remove_table_ids", ())
            ),
            update_stats=tuple(
                table_from_dict(t) for t in data.get("update_stats", ())
            ),
            drift=None if drift is None else DriftReport.from_dict(drift),
        )


@dataclass(frozen=True)
class ReshardConfig:
    """Knobs of the incremental reshard search.

    Attributes:
        migration_budget_ms: hard cap on the chosen plan's migration cost
            (``None`` = unbounded).
        migration_lambda: weight of the migration term in the objective —
            the amortization rate of a one-time migration into the
            per-iteration cost (``1e-4`` ≈ "the plan will live for ten
            thousand iterations").
        allow_full_search: also evaluate the engine's from-scratch search
            and adopt it when it wins the objective within budget.
        max_refine_steps: bound on local-search move acceptances.
    """

    migration_budget_ms: float | None = None
    migration_lambda: float = 1e-4
    allow_full_search: bool = True
    max_refine_steps: int = 64

    def __post_init__(self) -> None:
        if self.migration_budget_ms is not None and self.migration_budget_ms < 0:
            raise ValueError(
                f"migration_budget_ms must be >= 0, got {self.migration_budget_ms}"
            )
        if self.migration_lambda < 0:
            raise ValueError(
                f"migration_lambda must be >= 0, got {self.migration_lambda}"
            )
        if self.max_refine_steps < 0:
            raise ValueError(
                f"max_refine_steps must be >= 0, got {self.max_refine_steps}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the knobs."""
        return {
            "migration_budget_ms": self.migration_budget_ms,
            "migration_lambda": self.migration_lambda,
            "allow_full_search": self.allow_full_search,
            "max_refine_steps": self.max_refine_steps,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReshardConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            migration_budget_ms=data.get("migration_budget_ms"),
            migration_lambda=float(data.get("migration_lambda", 1e-4)),
            allow_full_search=bool(data.get("allow_full_search", True)),
            max_refine_steps=int(data.get("max_refine_steps", 64)),
        )


@dataclass(frozen=True)
class ReshardResult:
    """Outcome of one incremental reshard.

    Attributes:
        response: the chosen plan as a regular engine response
            (``effective_tables`` set when the plan indexes a table list
            other than the new task's).
        new_task: the post-delta task both candidates answered
            (``response.plan_tables(new_task)`` is the list the chosen
            plan indexes).
        diff: shard-level difference of the chosen plan vs the applied
            plan, migration cost included.
        chosen: ``"incremental"`` or ``"full"``.
        objective_ms: the chosen candidate's combined objective.
        within_budget: the chosen plan's migration cost respects the
            budget (``False`` only when *no* candidate could).
        drift_triggered: the delta carried a drift report that demanded
            re-training.
        full_response / full_diff: the from-scratch candidate, when it
            was evaluated (for migration-savings reporting).
    """

    response: ShardingResponse
    new_task: ShardingTask
    diff: PlanDiff
    chosen: str
    objective_ms: float
    within_budget: bool
    drift_triggered: bool = False
    full_response: ShardingResponse | None = None
    full_diff: PlanDiff | None = None


def _split_to_fit(
    table: TableConfig, memory: MemoryModel
) -> list[TableConfig]:
    """Column-split ``table`` until each shard fits an empty device."""
    shards = [table]
    while True:
        oversized = [t for t in shards if memory.table_bytes(t) > memory.memory_bytes]
        if not oversized or not all(t.can_halve for t in oversized):
            return shards
        next_shards: list[TableConfig] = []
        for t in shards:
            if memory.table_bytes(t) > memory.memory_bytes:
                next_shards.extend(t.halved())
            else:
                next_shards.append(t)
        shards = next_shards


def _place_added(
    added: Sequence[TableConfig],
    per_device: list[list[TableConfig]],
    device_bytes: list[int],
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
) -> list[int] | None:
    """Greedily place ``added`` tables onto the warm per-device state.

    Returns the device chosen per added table (in input order), or
    ``None`` when some table fits no device.  Mirrors the inner search's
    greedy rule: costliest tables first, cheapest resulting device wins.
    """
    singles = simulator.single_table_costs(added)
    order = sorted(range(len(added)), key=lambda i: -singles[i])
    devices: list[int] = [0] * len(added)
    for i in order:
        table = added[i]
        t_bytes = memory.table_bytes(table)
        candidates = [
            d
            for d in range(len(per_device))
            if device_bytes[d] + t_bytes <= memory.memory_bytes
        ]
        if not candidates:
            return None
        costs = simulator.device_compute_costs(
            [[*per_device[d], table] for d in candidates]
        )
        best = candidates[min(range(len(costs)), key=costs.__getitem__)]
        per_device[best].append(table)
        device_bytes[best] += t_bytes
        devices[i] = best
    return devices


def _plan_metrics(
    plan: ShardingPlan,
    base_tables: Sequence[TableConfig],
    applied_plan: ShardingPlan,
    applied_base: Sequence[TableConfig],
    simulator: NeuroShardSimulator,
    cost_model: MigrationCostModel,
) -> tuple[float, PlanDiff]:
    """Simulated cost and diff-vs-applied of a candidate plan."""
    cost = simulator.plan_cost(plan.per_device_tables(base_tables)).max_cost_ms
    diff = PlanDiff.between(
        applied_plan, applied_base, plan, base_tables, cost_model
    )
    return cost, diff


def _refine(
    assignment: list[int],
    tables: Sequence[TableConfig],
    applied_plan: ShardingPlan,
    applied_base: Sequence[TableConfig],
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    cost_model: MigrationCostModel,
    config: ReshardConfig,
) -> tuple[list[TableConfig], list[int]]:
    """Bounded local search around the warm-started placement.

    Three move families, tried cheapest-disruption first on the
    bottleneck device (the max-cost objective can only improve by
    changing the bottleneck):

    1. **move** a shard to another device,
    2. **swap** a shard with one on another device (escapes the
       partition local optima single moves hit),
    3. **split** a shard column-wise and place the halves (the paper's
       compute/balance trade, Observation 1, in incremental form).

    A mutation is accepted only when it improves ``simulated + lambda *
    migration`` and its migration cost respects the budget; the loop
    stops at a local optimum or after ``max_refine_steps`` acceptances.
    Returns the (possibly grown) table list and its assignment.
    """
    num_devices = applied_plan.num_devices
    working = list(tables)
    lam = config.migration_lambda
    budget = config.migration_budget_ms

    def metrics(
        tbls: Sequence[TableConfig], assign: Sequence[int]
    ) -> tuple[float, PlanDiff]:
        """Simulated cost + diff-vs-applied of one candidate state."""
        plan = ShardingPlan(
            column_plan=(), assignment=tuple(assign), num_devices=num_devices
        )
        return _plan_metrics(
            plan, tbls, applied_plan, applied_base, simulator, cost_model
        )

    cost, diff = metrics(working, assignment)
    objective = cost + lam * diff.migration_cost_ms
    for _ in range(config.max_refine_steps):
        table_bytes = [memory.table_bytes(t) for t in working]
        device_bytes = [0] * num_devices
        for ti, d in enumerate(assignment):
            device_bytes[d] += table_bytes[ti]
        breakdown = simulator.plan_cost(
            ShardingPlan(
                column_plan=(),
                assignment=tuple(assignment),
                num_devices=num_devices,
            ).per_device_tables(working)
        )
        bottleneck = max(
            range(num_devices), key=lambda d: breakdown.device_costs_ms[d]
        )
        movers = [ti for ti, d in enumerate(assignment) if d == bottleneck]
        others = [ti for ti, d in enumerate(assignment) if d != bottleneck]

        # Each candidate: (tables, assignment) after the mutation.
        candidates: list[tuple[list[TableConfig], list[int]]] = []

        def stage(candidate_tables, candidate_assignment) -> None:
            candidates.append((candidate_tables, candidate_assignment))

        for ti in movers:
            for target in range(num_devices):
                if target == bottleneck:
                    continue
                if device_bytes[target] + table_bytes[ti] > memory.memory_bytes:
                    continue
                moved = list(assignment)
                moved[ti] = target
                stage(working, moved)
        for ti in movers:
            for tj in others:
                d_j = assignment[tj]
                fits_j = (
                    device_bytes[d_j] - table_bytes[tj] + table_bytes[ti]
                    <= memory.memory_bytes
                )
                fits_b = (
                    device_bytes[bottleneck]
                    - table_bytes[ti]
                    + table_bytes[tj]
                    <= memory.memory_bytes
                )
                if fits_j and fits_b:
                    swapped = list(assignment)
                    swapped[ti], swapped[tj] = d_j, bottleneck
                    stage(working, swapped)
        for ti in movers:
            if not working[ti].can_halve:
                continue
            first, second = working[ti].halved()
            half_bytes = memory.table_bytes(first)
            freed = device_bytes[bottleneck] - table_bytes[ti]
            for target in range(num_devices):
                on_bottleneck = half_bytes + (
                    half_bytes if target == bottleneck else 0
                )
                if freed + on_bottleneck > memory.memory_bytes:
                    continue
                if (
                    target != bottleneck
                    and device_bytes[target] + half_bytes > memory.memory_bytes
                ):
                    continue
                split_tables = list(working)
                split_tables[ti] = first
                split_tables.append(second)
                split_assignment = list(assignment)
                split_assignment.append(target)
                stage(split_tables, split_assignment)

        best: tuple[float, tuple[list[TableConfig], list[int]] | None] = (
            objective,
            None,
        )
        for candidate_tables, candidate_assignment in candidates:
            c, m_diff = metrics(candidate_tables, candidate_assignment)
            if budget is not None and m_diff.migration_cost_ms > budget:
                continue
            candidate_objective = c + lam * m_diff.migration_cost_ms
            if candidate_objective < best[0] - 1e-12:
                best = (candidate_objective, (candidate_tables, candidate_assignment))
        if best[1] is None:
            break
        working, assignment = best[1]
        objective = best[0]
    return working, assignment


def incremental_reshard(
    engine,
    applied_plan: ShardingPlan,
    applied_base_tables: Sequence[TableConfig],
    delta: WorkloadDelta,
    config: ReshardConfig | None = None,
    strategy: str | None = None,
    memory_bytes: int | None = None,
    request_id: str = "",
) -> ReshardResult:
    """Search for the best budget-respecting plan for the changed workload.

    Args:
        engine: a :class:`~repro.api.engine.ShardingEngine` with a bundle
            (the cost models score candidates and drive the full search).
        applied_plan: the deployment's currently applied plan.
        applied_base_tables: the base table list ``applied_plan`` was
            planned over.
        delta: tables added/removed, in-place stats updates, and
            optionally the drift report.
        config: budget / lambda / refinement knobs.
        strategy: full-search strategy name (engine default when omitted).
        memory_bytes: per-device budget (engine cluster's when omitted).
        request_id: correlation id echoed in the chosen response.

    Raises:
        ValueError: when the engine has no cost-model bundle, or the
            delta removes every table.
    """
    if engine.bundle is None:
        raise ValueError(
            "incremental resharding needs an engine with a cost-model "
            "bundle to score candidate plans"
        )
    config = config or ReshardConfig()
    memory = MemoryModel(
        memory_bytes
        if memory_bytes is not None
        else engine.cluster.config.memory_bytes
    )
    num_devices = applied_plan.num_devices
    cost_model = MigrationCostModel(engine.cluster.spec)
    simulator = engine.simulator
    removed = set(delta.remove_table_ids)
    drift_triggered = bool(delta.drift is not None and delta.drift.needs_retraining)

    # Stats updates rewrite the surviving shards' access statistics in
    # place *before* anything is diffed or scored: the stored weights are
    # unchanged, so the update itself moves no bytes — both candidates
    # are searched and priced against the stat-updated applied state.
    if delta.update_stats:
        applied_base_tables = apply_stats_updates(
            applied_base_tables, delta.update_stats
        )

    # The new task as the full search sees it: applied base tables minus
    # removals, plus the added tables (unsplit — the search decides).
    new_base = tuple(
        t for t in applied_base_tables if t.table_id not in removed
    ) + tuple(delta.add_tables)
    if not new_base:
        raise ValueError("the workload delta removes every table")
    new_task = ShardingTask(
        tables=new_base,
        num_devices=num_devices,
        memory_bytes=memory.memory_bytes,
    )

    # ------------------------------------------------------------------
    # candidate 1: warm start + bounded local refinement
    # ------------------------------------------------------------------
    started = time.perf_counter()
    old_sharded = applied_plan.sharded_tables(applied_base_tables)
    surviving = [
        (t, d)
        for t, d in zip(old_sharded, applied_plan.assignment)
        if t.table_id not in removed
    ]
    added: list[TableConfig] = []
    for table in delta.add_tables:
        added.extend(_split_to_fit(table, memory))

    warm_tables = tuple(t for t, _ in surviving) + tuple(added)
    per_device: list[list[TableConfig]] = [[] for _ in range(num_devices)]
    device_bytes = [0] * num_devices
    for t, d in surviving:
        per_device[d].append(t)
        device_bytes[d] += memory.table_bytes(t)
    warm_feasible = all(b <= memory.memory_bytes for b in device_bytes)
    warm_assignment: list[int] | None = None
    if warm_feasible:
        placed = _place_added(added, per_device, device_bytes, simulator, memory)
        if placed is None:
            warm_feasible = False
        else:
            warm_assignment = [d for _, d in surviving] + placed

    warm_response: ShardingResponse | None = None
    warm_diff: PlanDiff | None = None
    if warm_feasible and warm_assignment is not None:
        refined_tables, warm_assignment = _refine(
            warm_assignment,
            warm_tables,
            applied_plan,
            applied_base_tables,
            simulator,
            memory,
            cost_model,
            config,
        )
        warm_tables = tuple(refined_tables)
        warm_plan = ShardingPlan(
            column_plan=(),
            assignment=tuple(warm_assignment),
            num_devices=num_devices,
        )
        warm_cost, warm_diff = _plan_metrics(
            warm_plan,
            warm_tables,
            applied_plan,
            applied_base_tables,
            simulator,
            cost_model,
        )
        warm_response = ShardingResponse(
            request_id=request_id,
            strategy="reshard-incremental",
            feasible=True,
            plan=warm_plan,
            simulated_cost_ms=warm_cost,
            sharding_time_s=time.perf_counter() - started,
            effective_tables=(
                warm_tables if warm_tables != new_task.tables else None
            ),
        )

    # ------------------------------------------------------------------
    # candidate 2: full re-search (only when allowed — with the warm
    # candidate infeasible and the full search disabled, the reshard is
    # honestly infeasible rather than silently overriding the flag)
    # ------------------------------------------------------------------
    full_response: ShardingResponse | None = None
    full_diff: PlanDiff | None = None
    if config.allow_full_search:
        resp = engine.shard(
            ShardingRequest(new_task, strategy=strategy, request_id=request_id)
        )
        if resp.feasible and resp.plan is not None:
            full_response = resp
            full_diff = PlanDiff.between(
                applied_plan,
                applied_base_tables,
                resp.plan,
                resp.plan_tables(new_task),
                cost_model,
            )

    # ------------------------------------------------------------------
    # selection under the objective + budget
    # ------------------------------------------------------------------
    lam = config.migration_lambda
    budget = config.migration_budget_ms
    candidates: list[tuple[str, ShardingResponse, PlanDiff]] = []
    if warm_response is not None and warm_diff is not None:
        candidates.append(("incremental", warm_response, warm_diff))
    if full_response is not None and full_diff is not None:
        candidates.append(("full", full_response, full_diff))
    if not candidates:
        infeasible = full_response or ShardingResponse(
            request_id=request_id,
            strategy="reshard-incremental",
            feasible=False,
            plan=None,
            simulated_cost_ms=math.inf,
            sharding_time_s=time.perf_counter() - started,
            error="no feasible reshard candidate",
        )
        return ReshardResult(
            response=infeasible,
            new_task=new_task,
            diff=PlanDiff(num_devices=num_devices),
            chosen="none",
            objective_ms=math.inf,
            within_budget=False,
            drift_triggered=drift_triggered,
        )

    def objective(item: tuple[str, ShardingResponse, PlanDiff]) -> float:
        """The combined simulated + amortized-migration objective."""
        _, resp, diff = item
        return resp.simulated_cost_ms + lam * diff.migration_cost_ms

    in_budget = [
        c for c in candidates
        if budget is None or c[2].migration_cost_ms <= budget
    ]
    pool = in_budget or candidates
    if not in_budget:
        # Nothing fits the budget; take the cheapest migration so the
        # deployment overshoots by as little as possible.
        pool = [min(candidates, key=lambda c: c[2].migration_cost_ms)]
    name, response, diff = min(pool, key=objective)
    return ReshardResult(
        response=response,
        new_task=new_task,
        diff=diff,
        chosen=name,
        objective_ms=objective((name, response, diff)),
        within_budget=bool(
            budget is None or diff.migration_cost_ms <= budget
        ),
        drift_triggered=drift_triggered,
        full_response=full_response,
        full_diff=full_diff,
    )
