"""Plan diffs and migration pricing: what it costs to *change* a plan.

A deployment's applied plan is live state: embedding shards resident on
devices.  Moving to a new plan is not free — every shard that changes
device must be shipped over the same links the all-to-all uses, and every
shard that exists only in the new plan (a new table, or a different
column split) must be loaded onto its device.  This module makes that
cost first-class:

- :class:`PlanDiff` compares two plans *as shard placements*: shards are
  identified by cost-identity (:attr:`~repro.data.table.TableConfig.uid`)
  and occurrence rank, so a surviving shard that stays put costs nothing,
  a surviving shard on a new device is a :class:`TableMove`, and shards
  present on only one side are creations/removals (a re-split table shows
  up as a removal plus two creations — it genuinely must be re-laid-out).
- :class:`MigrationCostModel` prices a diff in milliseconds from the
  per-device transfer bytes and the cluster's link calibration
  (:class:`~repro.hardware.device.DeviceSpec`): device transfers overlap,
  so the cost is the bottleneck device's ``bytes / comm bandwidth`` plus
  a per-transfer latency term.

Both serialize through the same versioned JSON convention as the rest of
:mod:`repro.api.schema` (``schema_version`` checked on load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.schema import SCHEMA_VERSION, _check_version
from repro.core.plan import ShardingPlan
from repro.data.table import TableConfig
from repro.hardware.device import DeviceSpec

__all__ = ["MigrationCostModel", "PlanDiff", "ShardChange", "TableMove"]


@dataclass(frozen=True)
class TableMove:
    """One surviving shard changing device between two plans.

    Attributes:
        uid: cost-identity of the shard (see ``TableConfig.uid``).
        occurrence: rank among shards of the same uid (column splits of
            one table are uid-equal; the k-th old one maps to the k-th
            new one).
        from_device / to_device: the shard's device in the old/new plan.
        size_bytes: shard weight bytes that must travel.
    """

    uid: str
    occurrence: int
    from_device: int
    to_device: int
    size_bytes: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the move."""
        return {
            "uid": self.uid,
            "occurrence": self.occurrence,
            "from_device": self.from_device,
            "to_device": self.to_device,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TableMove":
        """Inverse of :meth:`to_dict`."""
        return cls(
            uid=str(data["uid"]),
            occurrence=int(data["occurrence"]),
            from_device=int(data["from_device"]),
            to_device=int(data["to_device"]),
            size_bytes=int(data["size_bytes"]),
        )


@dataclass(frozen=True)
class ShardChange:
    """A shard present on only one side of the diff (created or removed)."""

    uid: str
    device: int
    size_bytes: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the change."""
        return {
            "uid": self.uid,
            "device": self.device,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardChange":
        """Inverse of :meth:`to_dict`."""
        return cls(
            uid=str(data["uid"]),
            device=int(data["device"]),
            size_bytes=int(data["size_bytes"]),
        )


class MigrationCostModel:
    """Price a plan transition from per-device transfer volumes.

    Every moved shard leaves its old device and lands on its new one;
    every created shard lands on its device (loaded over the same
    fabric).  Devices transfer concurrently, so the wall-clock migration
    cost is the bottleneck device's wire time:

        cost_d = (egress_d + ingress_d) / comm_bandwidth
                 + comm_latency * transfers_d
        migration_cost_ms = max_d cost_d

    Args:
        spec: link calibration constants (defaults to the simulated
            testbed's :class:`~repro.hardware.device.DeviceSpec`).
    """

    def __init__(self, spec: DeviceSpec | None = None) -> None:
        self.spec = spec or DeviceSpec()

    def cost_ms(
        self,
        egress_bytes: Sequence[int],
        ingress_bytes: Sequence[int],
        transfers: Sequence[int],
    ) -> float:
        """Bottleneck wire time of the per-device transfer volumes."""
        if not (len(egress_bytes) == len(ingress_bytes) == len(transfers)):
            raise ValueError("per-device sequences must have equal length")
        worst = 0.0
        for out_b, in_b, n in zip(egress_bytes, ingress_bytes, transfers):
            cost = (
                (out_b + in_b) / self.spec.comm_bandwidth_bytes_per_ms
                + self.spec.comm_latency_ms * n
            )
            worst = max(worst, cost)
        return worst


@dataclass(frozen=True)
class PlanDiff:
    """Shard-level difference between an applied plan and a candidate.

    Attributes:
        num_devices: device count both plans target.
        moves: surviving shards that change device.
        created: shards only the new plan has (new tables, re-splits).
        removed: shards only the old plan had.
        egress_bytes / ingress_bytes: per-device transfer volumes implied
            by ``moves`` + ``created`` (removals are free).
        migration_cost_ms: bottleneck wire time of the transition (priced
            by :class:`MigrationCostModel` at diff time).
    """

    num_devices: int
    moves: tuple[TableMove, ...] = ()
    created: tuple[ShardChange, ...] = ()
    removed: tuple[ShardChange, ...] = ()
    egress_bytes: tuple[int, ...] = ()
    ingress_bytes: tuple[int, ...] = ()
    migration_cost_ms: float = 0.0
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def moved_bytes(self) -> int:
        """Bytes of surviving shards that change device."""
        return sum(m.size_bytes for m in self.moves)

    @property
    def created_bytes(self) -> int:
        """Bytes of shards only the new plan has."""
        return sum(c.size_bytes for c in self.created)

    @property
    def removed_bytes(self) -> int:
        """Bytes of shards only the old plan had."""
        return sum(c.size_bytes for c in self.removed)

    @property
    def transferred_bytes(self) -> int:
        """Total bytes that must land on some device (moves + creations)."""
        return self.moved_bytes + self.created_bytes

    @property
    def num_changes(self) -> int:
        """Total shard-level changes (moves + creations + removals)."""
        return len(self.moves) + len(self.created) + len(self.removed)

    @classmethod
    def between(
        cls,
        old_plan: ShardingPlan,
        old_base_tables: Sequence[TableConfig],
        new_plan: ShardingPlan,
        new_base_tables: Sequence[TableConfig],
        cost_model: MigrationCostModel | None = None,
    ) -> "PlanDiff":
        """Diff two plans over their (possibly different) base tables.

        Shards are matched by ``(uid, occurrence rank)``: uid-equal
        shards are cost- and size-identical, so matching the k-th old
        occurrence to the k-th new occurrence minimizes spurious moves
        without changing total bytes.

        Raises:
            ValueError: when the plans target different device counts.
        """
        if old_plan.num_devices != new_plan.num_devices:
            raise ValueError(
                f"cannot diff plans for {old_plan.num_devices} vs "
                f"{new_plan.num_devices} devices"
            )
        num_devices = new_plan.num_devices
        cost_model = cost_model or MigrationCostModel()

        new_sharded = new_plan.sharded_tables(new_base_tables)

        # uid -> list of (occurrence, device, size) on the old side —
        # the shard-identity convention of ShardingPlan.shard_identities,
        # shared with the validation layer.
        old_by_uid: dict[str, list[tuple[int, int, int]]] = {}
        for uid, occurrence, device, size in old_plan.shard_identities(
            old_base_tables
        ):
            old_by_uid.setdefault(uid, []).append((occurrence, device, size))

        moves: list[TableMove] = []
        created: list[ShardChange] = []
        seen: dict[str, int] = {}
        egress = [0] * num_devices
        ingress = [0] * num_devices
        transfers = [0] * num_devices
        for table, device in zip(new_sharded, new_plan.assignment):
            rank = seen.get(table.uid, 0)
            seen[table.uid] = rank + 1
            slots = old_by_uid.get(table.uid)
            if slots and rank < len(slots):
                occurrence, old_device, size = slots[rank]
                if old_device != device:
                    moves.append(
                        TableMove(
                            uid=table.uid,
                            occurrence=occurrence,
                            from_device=old_device,
                            to_device=device,
                            size_bytes=size,
                        )
                    )
                    egress[old_device] += size
                    ingress[device] += size
                    transfers[old_device] += 1
                    transfers[device] += 1
            else:
                created.append(
                    ShardChange(
                        uid=table.uid, device=device, size_bytes=table.size_bytes
                    )
                )
                ingress[device] += table.size_bytes
                transfers[device] += 1

        removed = [
            ShardChange(uid=uid, device=device, size_bytes=size)
            for uid, slots in old_by_uid.items()
            for rank, device, size in slots
            if rank >= seen.get(uid, 0)
        ]

        return cls(
            num_devices=num_devices,
            moves=tuple(moves),
            created=tuple(created),
            removed=tuple(removed),
            egress_bytes=tuple(egress),
            ingress_bytes=tuple(ingress),
            migration_cost_ms=cost_model.cost_ms(egress, ingress, transfers),
        )

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "num_devices": self.num_devices,
            "moves": [m.to_dict() for m in self.moves],
            "created": [c.to_dict() for c in self.created],
            "removed": [c.to_dict() for c in self.removed],
            "egress_bytes": list(self.egress_bytes),
            "ingress_bytes": list(self.ingress_bytes),
            "migration_cost_ms": float(self.migration_cost_ms),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanDiff":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "plan diff")
        return cls(
            num_devices=int(data["num_devices"]),
            moves=tuple(TableMove.from_dict(m) for m in data.get("moves", ())),
            created=tuple(
                ShardChange.from_dict(c) for c in data.get("created", ())
            ),
            removed=tuple(
                ShardChange.from_dict(c) for c in data.get("removed", ())
            ),
            egress_bytes=tuple(int(b) for b in data.get("egress_bytes", ())),
            ingress_bytes=tuple(int(b) for b in data.get("ingress_bytes", ())),
            migration_cost_ms=float(data.get("migration_cost_ms", 0.0)),
            metadata=dict(data.get("metadata", {})),
        )
