"""Versioned cost-model bundle storage (Section 3.2's version control).

The paper's production deployment keeps cost models under "strict
version control": a sharding plan must always be reproducible from the
exact bundle that produced it.  :class:`BundleStore` provides that
discipline on a directory tree::

    <root>/
      <name>/
        v1/   compute.npz forward_comm.npz backward_comm.npz
              metadata.json bundle_meta.json
        v2/   ...

Each version directory is a plain
:meth:`~repro.costmodel.pretrain.PretrainedCostModels.save` bundle plus a
``bundle_meta.json`` manifest (name, version, creation time, device
count, free-form metadata such as test MSEs).  Saving auto-increments
the version; loading defaults to the latest, so long-lived engines can
pick up retrained models by restarting without path changes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.costmodel.pretrain import PretrainedCostModels

__all__ = ["BundleInfo", "BundleStore"]

_MANIFEST = "bundle_meta.json"
_BUNDLE_META = "metadata.json"  # written by PretrainedCostModels.save


@dataclass(frozen=True)
class BundleInfo:
    """Manifest of one stored bundle version.

    Attributes:
        name: bundle line name (e.g. ``"prod-4gpu"``).
        version: 1-based version number within the line.
        path: the version directory holding the bundle files.
        created_at: POSIX timestamp of the save.
        num_devices / batch_size: the bundle's deployment contract.
        metadata: free-form caller metadata (e.g. test MSEs, pool seed).
    """

    name: str
    version: int
    path: str
    created_at: float
    num_devices: int
    batch_size: int
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def version_tag(self) -> str:
        """The ``name@vN`` tag used in reports and plan checkpoints."""
        return f"{self.name}@v{self.version}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "created_at": self.created_at,
            "num_devices": self.num_devices,
            "batch_size": self.batch_size,
            "metadata": self.metadata,
        }


class BundleStore:
    """Save, list and load versioned cost-model bundles under one root.

    Args:
        root: store directory (created lazily on first save).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def save(
        self,
        models: PretrainedCostModels,
        name: str = "default",
        metadata: Mapping[str, Any] | None = None,
    ) -> BundleInfo:
        """Store ``models`` as the next version of bundle line ``name``."""
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid bundle name {name!r}")
        version = self.latest_version(name) + 1
        directory = self.root / name / f"v{version}"
        models.save(directory)
        info = BundleInfo(
            name=name,
            version=version,
            path=str(directory),
            created_at=time.time(),
            num_devices=models.num_devices,
            batch_size=models.batch_size,
            metadata=dict(metadata or {}),
        )
        (directory / _MANIFEST).write_text(json.dumps(info.to_dict(), indent=2))
        return info

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def versions(self, name: str) -> list[int]:
        """Stored version numbers of bundle line ``name``, ascending."""
        line = self.root / name
        if not line.is_dir():
            return []
        found = []
        for entry in line.iterdir():
            if (
                entry.is_dir()
                and entry.name.startswith("v")
                and entry.name[1:].isdigit()
                and (entry / _BUNDLE_META).exists()
            ):
                found.append(int(entry.name[1:]))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Highest stored version of ``name`` (0 when none exist)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def names(self) -> list[str]:
        """Bundle line names with at least one stored version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def list_bundles(self) -> list[BundleInfo]:
        """Manifests of every stored version, ordered by name then version."""
        return [
            self.info(name, version)
            for name in self.names()
            for version in self.versions(name)
        ]

    def _version_dir(self, name: str, version: int | None) -> Path:
        if version is None:
            version = self.latest_version(name)
            if version == 0:
                raise FileNotFoundError(
                    f"no bundle named {name!r} in store {self.root} "
                    f"(known: {self.names() or 'none'})"
                )
        directory = self.root / name / f"v{version}"
        if not (directory / _BUNDLE_META).exists():
            raise FileNotFoundError(
                f"no version v{version} of bundle {name!r} in store "
                f"{self.root} (stored: {self.versions(name) or 'none'})"
            )
        return directory

    def info(self, name: str = "default", version: int | None = None) -> BundleInfo:
        """Manifest of one stored version (latest when unspecified)."""
        directory = self._version_dir(name, version)
        manifest_path = directory / _MANIFEST
        if manifest_path.exists():
            data = json.loads(manifest_path.read_text())
        else:  # bundle dropped in by hand — synthesize a manifest
            meta = json.loads((directory / _BUNDLE_META).read_text())
            data = {
                "name": name,
                "version": int(directory.name[1:]),
                "created_at": 0.0,
                "num_devices": meta["num_devices"],
                "batch_size": meta["batch_size"],
                "metadata": {},
            }
        return BundleInfo(path=str(directory), **data)

    def load(
        self, name: str = "default", version: int | None = None
    ) -> PretrainedCostModels:
        """Load a stored bundle (latest version when unspecified)."""
        return PretrainedCostModels.load(self._version_dir(name, version))

    @staticmethod
    def is_raw_bundle(path: str | os.PathLike) -> bool:
        """True when ``path`` is a bare ``PretrainedCostModels`` directory."""
        return (Path(path) / _BUNDLE_META).exists()
