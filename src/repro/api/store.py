"""Versioned cost-model bundle and plan-lifecycle storage.

The paper's production deployment keeps cost models under "strict
version control" (Section 3.2): a sharding plan must always be
reproducible from the exact bundle that produced it.  Two stores provide
that discipline on directory trees:

:class:`BundleStore` — cost-model bundles::

    <root>/
      <name>/
        v1/   compute.npz forward_comm.npz backward_comm.npz
              metadata.json bundle_meta.json
        v2/   ...

Each version directory is a plain
:meth:`~repro.costmodel.pretrain.PretrainedCostModels.save` bundle plus a
``bundle_meta.json`` manifest (name, version, creation time, device
count, free-form metadata such as test MSEs).  Saving auto-increments
the version; loading defaults to the latest, so long-lived engines can
pick up retrained models by restarting without path changes.

:class:`PlanStore` — plan-lifecycle records of named deployments (the
:class:`~repro.api.service.ShardingService`'s persistence)::

    <root>/
      <deployment>/
        deployment.json      # cluster shape, bundle reference
        state.json           # applied-version stack
        plans/
          v1.json  v2.json   # one immutable record per plan version

Records are stored as the versioned JSON dictionaries the service's
:class:`~repro.api.service.PlanRecord` serializes to, so a deployment's
entire history — every plan, diff and rollback — survives restarts and
is replayable byte-for-byte.  Records carry provenance chain fields
(each commits to its predecessor's digest — see
:mod:`repro.provenance`), persisted through the same exclusive-link
commit path; :meth:`PlanStore.read_record_bytes` exposes raw file bytes
so the offline auditor can digest even records that no longer parse.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.costmodel.pretrain import PretrainedCostModels

__all__ = ["BundleInfo", "BundleStore", "PlanStore"]

_MANIFEST = "bundle_meta.json"
_BUNDLE_META = "metadata.json"  # written by PretrainedCostModels.save


def _check_name(name: str, kind: str) -> None:
    if not name or "/" in name or name.startswith("."):
        raise ValueError(f"invalid {kind} name {name!r}")


@dataclass(frozen=True)
class BundleInfo:
    """Manifest of one stored bundle version.

    Attributes:
        name: bundle line name (e.g. ``"prod-4gpu"``).
        version: 1-based version number within the line.
        path: the version directory holding the bundle files.
        created_at: POSIX timestamp of the save.
        num_devices / batch_size: the bundle's deployment contract.
        metadata: free-form caller metadata (e.g. test MSEs, pool seed).
    """

    name: str
    version: int
    path: str
    created_at: float
    num_devices: int
    batch_size: int
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def version_tag(self) -> str:
        """The ``name@vN`` tag used in reports and plan checkpoints."""
        return f"{self.name}@v{self.version}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the bundle metadata."""
        return {
            "name": self.name,
            "version": self.version,
            "created_at": self.created_at,
            "num_devices": self.num_devices,
            "batch_size": self.batch_size,
            "metadata": self.metadata,
        }


class BundleStore:
    """Save, list and load versioned cost-model bundles under one root.

    Args:
        root: store directory (created lazily on first save).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def save(
        self,
        models: PretrainedCostModels,
        name: str = "default",
        metadata: Mapping[str, Any] | None = None,
    ) -> BundleInfo:
        """Store ``models`` as the next version of bundle line ``name``."""
        _check_name(name, "bundle")
        version = self.latest_version(name) + 1
        directory = self.root / name / f"v{version}"
        models.save(directory)
        info = BundleInfo(
            name=name,
            version=version,
            path=str(directory),
            created_at=time.time(),
            num_devices=models.num_devices,
            batch_size=models.batch_size,
            metadata=dict(metadata or {}),
        )
        (directory / _MANIFEST).write_text(json.dumps(info.to_dict(), indent=2))
        return info

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def versions(self, name: str) -> list[int]:
        """Stored version numbers of bundle line ``name``, ascending."""
        line = self.root / name
        if not line.is_dir():
            return []
        found = []
        for entry in line.iterdir():
            if (
                entry.is_dir()
                and entry.name.startswith("v")
                and entry.name[1:].isdigit()
                and (entry / _BUNDLE_META).exists()
            ):
                found.append(int(entry.name[1:]))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Highest stored version of ``name`` (0 when none exist)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def names(self) -> list[str]:
        """Bundle line names with at least one stored version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def list_bundles(self) -> list[BundleInfo]:
        """Manifests of every stored version, ordered by name then version."""
        return [
            self.info(name, version)
            for name in self.names()
            for version in self.versions(name)
        ]

    def _version_dir(self, name: str, version: int | None) -> Path:
        if version is None:
            version = self.latest_version(name)
            if version == 0:
                raise FileNotFoundError(
                    f"no bundle named {name!r} in store {self.root} "
                    f"(known: {self.names() or 'none'})"
                )
        directory = self.root / name / f"v{version}"
        if not (directory / _BUNDLE_META).exists():
            raise FileNotFoundError(
                f"no version v{version} of bundle {name!r} in store "
                f"{self.root} (stored: {self.versions(name) or 'none'})"
            )
        return directory

    def info(self, name: str = "default", version: int | None = None) -> BundleInfo:
        """Manifest of one stored version (latest when unspecified)."""
        directory = self._version_dir(name, version)
        manifest_path = directory / _MANIFEST
        if manifest_path.exists():
            data = json.loads(manifest_path.read_text())
        else:  # bundle dropped in by hand — synthesize a manifest
            meta = json.loads((directory / _BUNDLE_META).read_text())
            data = {
                "name": name,
                "version": int(directory.name[1:]),
                "created_at": 0.0,
                "num_devices": meta["num_devices"],
                "batch_size": meta["batch_size"],
                "metadata": {},
            }
        return BundleInfo(path=str(directory), **data)

    def load(
        self, name: str = "default", version: int | None = None
    ) -> PretrainedCostModels:
        """Load a stored bundle (latest version when unspecified)."""
        return PretrainedCostModels.load(self._version_dir(name, version))

    @staticmethod
    def is_raw_bundle(path: str | os.PathLike) -> bool:
        """True when ``path`` is a bare ``PretrainedCostModels`` directory."""
        return (Path(path) / _BUNDLE_META).exists()


class _LocalFS:
    """Direct filesystem operations (the default :class:`PlanStore` backend).

    The two-method interface exists so fault injection
    (:class:`~repro.validation.faults.FaultyFS`) can fail writes at
    named points; this default implementation ignores the point names.
    """

    def write_text(self, path: Path, text: str, point: str = "") -> None:
        """Write ``text`` to ``path``."""
        Path(path).write_text(text)

    def replace(self, src: Path, dst: Path, point: str = "") -> None:
        """Atomically rename ``src`` onto ``dst``."""
        os.replace(src, dst)

    def link(self, src: Path, dst: Path, point: str = "") -> None:
        """Atomically commit ``src`` to ``dst``, refusing to overwrite.

        Raises:
            FileExistsError: when ``dst`` already exists — the atomic
                claim-and-commit that keeps concurrent writers from
                silently clobbering each other's immutable records.
        """
        os.link(src, dst)


#: Disambiguates concurrent temp files within one process; the pid in
#: the name disambiguates across processes.
_TMP_COUNTER = itertools.count()


class PlanStore:
    """Persist named deployments' plan-version histories under one root.

    The store holds plain JSON dictionaries; the semantics (what a plan
    record contains, what the state means) belong to
    :class:`~repro.api.service.ShardingService`.  Records are immutable:
    ``save_record`` refuses to overwrite an existing version, so history
    can only grow — rollbacks are state changes, not record rewrites.

    Every write is **crash-atomic**: the payload lands in a same-directory
    temp file first and is committed into place atomically, so a crash at
    any point leaves the destination either untouched or fully written —
    never torn.  The write sites are named (:data:`WRITE_POINTS`) so a
    fault injector can crash each one and a recovery test can sweep them
    all.

    The store is also safe for **multiple writers** — several service
    handles (threads or processes) sharing one root: temp names are
    writer-unique, mutable files (metadata, applied-stack state) commit
    by rename with last-writer-wins semantics, and immutable plan
    records commit by *exclusive* link, so racing writers can never
    silently clobber a version — the loser gets ``FileExistsError`` and
    allocates a fresh one.

    Args:
        root: store directory (created lazily on first save).
        fs: filesystem shim (``write_text`` / ``replace``); the real
            filesystem when omitted.  Tests inject
            :class:`~repro.validation.faults.FaultyFS` here.
    """

    _DEPLOYMENT = "deployment.json"
    _STATE = "state.json"
    _PLANS = "plans"

    #: Every named atomic-write point, ``"<kind>#<phase>"``: the logical
    #: write site (deployment metadata / applied-stack state / plan
    #: record) crossed with the atomic-write step (temp-file write /
    #: rename into place).  A crash injected at any of these must leave
    #: :meth:`~repro.api.service.ShardingService.open` recovering the
    #: last consistent applied version.
    WRITE_POINTS = (
        "meta#write",
        "meta#rename",
        "state#write",
        "state#rename",
        "record#write",
        "record#rename",
    )

    def __init__(self, root: str | os.PathLike, fs: Any | None = None) -> None:
        self.root = Path(root)
        self.fs = fs if fs is not None else _LocalFS()

    def _tmp_path(self, path: Path) -> Path:
        """A writer-unique same-directory temp name.

        The pid + counter suffix keeps concurrent writers — service
        handles in different processes sharing one store — from writing
        through the same temp file and renaming each other's bytes.
        """
        return path.parent / (
            f".{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )

    def _write_json(
        self, path: Path, payload: Mapping[str, Any], point: str, indent: int
    ) -> None:
        """Crash-atomic JSON write: same-directory temp file + rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        self.fs.write_text(
            tmp, json.dumps(dict(payload), indent=indent), point=f"{point}#write"
        )
        self.fs.replace(tmp, path, point=f"{point}#rename")

    def _deployment_dir(self, name: str) -> Path:
        _check_name(name, "deployment")
        return self.root / name

    # ------------------------------------------------------------------
    # deployments
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Deployment names with stored metadata."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / self._DEPLOYMENT).exists()
        )

    def has_deployment(self, name: str) -> bool:
        """Whether the store holds a deployment named ``name``."""
        return (self._deployment_dir(name) / self._DEPLOYMENT).exists()

    def save_meta(self, name: str, meta: Mapping[str, Any]) -> None:
        """Write a deployment's metadata (cluster shape, bundle ref)."""
        directory = self._deployment_dir(name)
        self._write_json(directory / self._DEPLOYMENT, meta, "meta", indent=2)

    def load_meta(self, name: str) -> dict[str, Any]:
        """Read a deployment's metadata.

        Raises:
            FileNotFoundError: when the deployment does not exist.
        """
        path = self._deployment_dir(name) / self._DEPLOYMENT
        if not path.exists():
            raise FileNotFoundError(
                f"no deployment named {name!r} in store {self.root} "
                f"(known: {self.names() or 'none'})"
            )
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # plan records
    # ------------------------------------------------------------------

    def versions(self, name: str) -> list[int]:
        """Stored plan-record versions of ``name``, ascending."""
        plans = self._deployment_dir(name) / self._PLANS
        if not plans.is_dir():
            return []
        found = []
        for entry in plans.iterdir():
            stem, suffix = entry.name[:-5], entry.name[-5:]
            if (
                entry.is_file()
                and suffix == ".json"
                and stem.startswith("v")
                and stem[1:].isdigit()
            ):
                found.append(int(stem[1:]))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Highest stored plan version of ``name`` (0 when none exist)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def save_record(self, name: str, record: Mapping[str, Any]) -> None:
        """Append one immutable plan record (its ``version`` keys it).

        The commit is an atomic *exclusive* link, not a rename: a rename
        overwrites, so two service handles racing on the same version —
        e.g. two processes serving one store directory — would silently
        clobber each other's records.  The loser gets
        ``FileExistsError`` instead and re-allocates a fresh version.

        Raises:
            FileExistsError: when the version is already stored; records
                are immutable, so the caller must allocate a new one.
        """
        version = int(record["version"])
        if version < 1:
            raise ValueError(f"record version must be >= 1, got {version}")
        plans = self._deployment_dir(name) / self._PLANS
        path = plans / f"v{version}.json"
        if path.exists():
            raise FileExistsError(
                f"plan record v{version} of deployment {name!r} already "
                "exists; records are immutable"
            )
        plans.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            self.fs.write_text(
                tmp, json.dumps(dict(record), indent=1), point="record#write"
            )
            try:
                self.fs.link(tmp, path, point="record#rename")
            except FileExistsError:
                raise FileExistsError(
                    f"plan record v{version} of deployment {name!r} already "
                    "exists; records are immutable"
                ) from None
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def load_record(self, name: str, version: int) -> dict[str, Any]:
        """Read one stored plan record.

        Raises:
            FileNotFoundError: when the version is not stored.
        """
        path = self._deployment_dir(name) / self._PLANS / f"v{version}.json"
        if not path.exists():
            raise FileNotFoundError(
                f"no plan record v{version} of deployment {name!r} in store "
                f"{self.root} (stored: {self.versions(name) or 'none'})"
            )
        return json.loads(path.read_text())

    def read_record_bytes(self, name: str, version: int) -> bytes:
        """Read one stored plan record's raw file bytes, unparsed.

        The provenance layer (:mod:`repro.provenance`) uses this to
        digest record files that no longer parse — a torn write the
        chain must still account for.

        Raises:
            FileNotFoundError: when the version is not stored.
        """
        path = self._deployment_dir(name) / self._PLANS / f"v{version}.json"
        if not path.exists():
            raise FileNotFoundError(
                f"no plan record v{version} of deployment {name!r} in store "
                f"{self.root} (stored: {self.versions(name) or 'none'})"
            )
        return path.read_bytes()

    # ------------------------------------------------------------------
    # mutable deployment state (applied stack)
    # ------------------------------------------------------------------

    def save_state(self, name: str, state: Mapping[str, Any]) -> None:
        """Write the mutable deployment state (the applied stack)."""
        directory = self._deployment_dir(name)
        self._write_json(directory / self._STATE, state, "state", indent=2)

    def load_state(self, name: str) -> dict[str, Any]:
        """Read the mutable deployment state (empty when never saved)."""
        path = self._deployment_dir(name) / self._STATE
        if not path.exists():
            return {}
        return json.loads(path.read_text())
