"""The service API: registry-driven sharding behind one engine.

This package is the stable public surface of the reproduction.  Instead
of one constructor per algorithm, every sharding strategy registers in a
:mod:`~repro.api.registry` and is served by a
:class:`~repro.api.engine.ShardingEngine` with uniform
:class:`~repro.api.schema.ShardingRequest` /
:class:`~repro.api.schema.ShardingResponse` types::

    from repro.api import BundleStore, ShardingEngine, ShardingRequest

    store = BundleStore("bundles/")
    engine = ShardingEngine(cluster, store.load("prod-4gpu"))
    response = engine.shard(ShardingRequest(task))            # NeuroShard
    batch = engine.shard_batch(
        [ShardingRequest(t, strategy="beam") for t in tasks], max_workers=4
    )
    roster = engine.compare(ShardingRequest(task))            # vs baselines

Modules:

- :mod:`~repro.api.registry` — ``@register_strategy`` + ``make_sharder``.
- :mod:`~repro.api.strategies` — the built-in registrations.
- :mod:`~repro.api.schema` — versioned request/response dataclasses.
- :mod:`~repro.api.engine` — single/batched/compare serving.
- :mod:`~repro.api.store` — versioned cost-model bundle storage.
"""

from repro.api.registry import (
    StrategyInfo,
    UnknownStrategyError,
    all_names,
    available_strategies,
    iter_strategies,
    make_sharder,
    register_strategy,
    strategy_info,
)
from repro.api import strategies as _strategies  # noqa: F401 — populates registry
from repro.api.schema import (
    SCHEMA_VERSION,
    PlanOverTables,
    ShardingRequest,
    ShardingResponse,
    plan_from_dict,
    plan_to_dict,
)
from repro.api.engine import ShardingEngine
from repro.api.store import BundleInfo, BundleStore

__all__ = [
    "SCHEMA_VERSION",
    "BundleInfo",
    "BundleStore",
    "PlanOverTables",
    "ShardingEngine",
    "ShardingRequest",
    "ShardingResponse",
    "StrategyInfo",
    "UnknownStrategyError",
    "all_names",
    "available_strategies",
    "iter_strategies",
    "make_sharder",
    "plan_from_dict",
    "plan_to_dict",
    "register_strategy",
    "strategy_info",
]
