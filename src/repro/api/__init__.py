"""The service API: registry-driven sharding behind one stateful service.

This package is the stable public surface of the reproduction.  Two
layers:

**Stateless serving** — every sharding strategy registers in a
:mod:`~repro.api.registry` and is served by a
:class:`~repro.api.engine.ShardingEngine` with uniform
:class:`~repro.api.schema.ShardingRequest` /
:class:`~repro.api.schema.ShardingResponse` types::

    from repro.api import BundleStore, ShardingEngine, ShardingRequest

    store = BundleStore("bundles/")
    engine = ShardingEngine(cluster, store.load("prod-4gpu"))
    response = engine.shard(ShardingRequest(task))            # NeuroShard
    batch = engine.shard_batch(
        [ShardingRequest(t, strategy="beam") for t in tasks], max_workers=4
    )
    roster = engine.compare(ShardingRequest(task))            # vs baselines

**Plan lifecycle** — a :class:`~repro.api.service.ShardingService` owns
named deployments whose applied plans are live, versioned state: plans
are applied, diffed (:class:`~repro.api.diff.PlanDiff`), incrementally
resharded under a migration budget when the workload drifts
(:func:`~repro.api.reshard.incremental_reshard`), and rolled back —
persisted through a :class:`~repro.api.store.PlanStore` and served over
HTTP by :class:`~repro.api.server.ShardingHTTPServer`::

    from repro.api import PlanStore, ShardingService, WorkloadDelta

    service = ShardingService(PlanStore("deployments/"))
    service.create_deployment("prod", engine, tables=task.tables)
    service.plan("prod"); service.apply("prod")
    service.reshard("prod", WorkloadDelta(add_tables=new_tables),
                    ReshardConfig(migration_budget_ms=5_000))
    service.rollback("prod")

Modules:

- :mod:`~repro.api.registry` — ``@register_strategy`` + ``make_sharder``.
- :mod:`~repro.api.strategies` — the built-in registrations.
- :mod:`~repro.api.schema` — versioned request/response dataclasses.
- :mod:`~repro.api.engine` — single/batched/compare serving.
- :mod:`~repro.api.workers` — shared-nothing process-pool execution.
- :mod:`~repro.api.store` — versioned bundle + plan-lifecycle storage.
- :mod:`~repro.api.diff` — plan diffs and migration pricing.
- :mod:`~repro.api.reshard` — budgeted incremental resharding.
- :mod:`~repro.api.service` — named deployments, apply/rollback/history.
- :mod:`~repro.api.server` — the threaded micro-batching HTTP front-end.
"""

from repro.api.registry import (
    StrategyInfo,
    UnknownStrategyError,
    all_names,
    available_strategies,
    iter_strategies,
    make_sharder,
    register_strategy,
    strategy_info,
)
from repro.api import strategies as _strategies  # noqa: F401 — populates registry
from repro.api.schema import (
    SCHEMA_VERSION,
    PlanOverTables,
    ShardingRequest,
    ShardingResponse,
    check_version,
    plan_from_dict,
    plan_to_dict,
)
from repro.api.engine import ShardingEngine
from repro.api.workers import EngineSpec, WorkerPool
from repro.api.store import BundleInfo, BundleStore, PlanStore
from repro.api.diff import MigrationCostModel, PlanDiff, ShardChange, TableMove
from repro.api.reshard import (
    ReshardConfig,
    ReshardResult,
    WorkloadDelta,
    incremental_reshard,
)
from repro.api.service import (
    DeploymentNotFoundError,
    PlanRecord,
    PlanValidationError,
    ShardingService,
)
from repro.api.server import ShardingHTTPServer, serve

__all__ = [
    "SCHEMA_VERSION",
    "BundleInfo",
    "BundleStore",
    "DeploymentNotFoundError",
    "EngineSpec",
    "MigrationCostModel",
    "PlanDiff",
    "PlanOverTables",
    "PlanRecord",
    "PlanStore",
    "PlanValidationError",
    "ReshardConfig",
    "ReshardResult",
    "ShardChange",
    "ShardingEngine",
    "ShardingHTTPServer",
    "ShardingRequest",
    "ShardingResponse",
    "ShardingService",
    "StrategyInfo",
    "TableMove",
    "UnknownStrategyError",
    "WorkerPool",
    "WorkloadDelta",
    "all_names",
    "available_strategies",
    "check_version",
    "incremental_reshard",
    "iter_strategies",
    "make_sharder",
    "plan_from_dict",
    "plan_to_dict",
    "register_strategy",
    "serve",
    "strategy_info",
]
