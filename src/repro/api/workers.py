"""Shared-nothing process-pool execution of sharding searches.

The search hot loop is pure Python: a :class:`~repro.api.engine
.ShardingEngine` running ``shard_batch`` on a thread pool merely
time-slices one core across requests (the GIL serializes the scoring
work), so a serving process cannot scale past a single core no matter
how many clients it accepts.  This module is the horizontal escape
hatch: a :class:`WorkerPool` executes requests on a
``concurrent.futures.ProcessPoolExecutor`` of **shared-nothing
workers** — each worker process bootstraps its own engine exactly once
(bundle loaded from disk, featurizer built, a private warm
:class:`~repro.core.cache.CostCache`; nothing is shared or synchronized
across processes) and then answers requests for the life of the pool.

Everything that crosses the process boundary is a plain, picklable
payload: requests travel as :meth:`~repro.api.schema.ShardingRequest
.to_dict` dictionaries, responses come back as
:meth:`~repro.api.schema.ShardingResponse.to_dict` dictionaries and are
re-hydrated on the caller's side.  Because every worker constructs its
engine from the same :class:`EngineSpec` — and the search is
deterministic given the bundle bytes and the request — pool execution is
**bit-identical** to in-process execution under
:meth:`~repro.api.schema.ShardingResponse.deterministic_dict`: the
equivalence guarantees of the optimized search survive the process
boundary (``tests/test_api_workers.py`` pins this across every
registered strategy).

Typical use, directly or through an engine::

    spec = EngineSpec(cluster=ClusterConfig(num_devices=4),
                      bundle_path="bundles/prod/v3")
    with WorkerPool(spec, max_workers=4) as pool:
        responses = pool.shard_batch(requests)          # fan out

    engine = ShardingEngine(cluster, bundle, worker_pool=pool)
    engine.shard_batch(requests)                        # routed to the pool

One pool may back many engines (``repro serve --workers N`` shares one
pool across every deployment's engine): results depend only on the
request task, the bundle and the search configuration, so any engine
with the same device count can fan out to the same workers.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.schema import ShardingRequest, ShardingResponse
from repro.config import ClusterConfig, SearchConfig

__all__ = ["EngineSpec", "WorkerPool"]


@dataclass(frozen=True)
class EngineSpec:
    """A picklable recipe for constructing a :class:`ShardingEngine`.

    The spec is everything a worker process needs to bootstrap its own
    engine — no live objects, so it crosses the process boundary and the
    resulting engines are constructed *identically* everywhere (the
    caller's in-process reference engine and every pool worker build
    from the same recipe, which is what makes pool execution
    bit-identical to in-process execution).

    Attributes:
        cluster: the deployment cluster shape.
        bundle_path: directory of a saved
            :class:`~repro.costmodel.pretrain.PretrainedCostModels`
            bundle, loaded once per worker process (``None`` builds a
            bundle-less engine serving only the heuristic strategies).
        search: default search hyperparameters.
        default_strategy: served when a request names no strategy.
        strategy_kwargs: per-strategy construction keywords.  Values
            must be picklable — a fitted policy object is fine, an open
            file handle is not.
        cache_max_entries: LRU bound of each worker's private cost cache.
    """

    cluster: ClusterConfig
    bundle_path: str | None = None
    search: SearchConfig | None = None
    default_strategy: str | None = None
    strategy_kwargs: dict[str, dict[str, Any]] = field(default_factory=dict)
    cache_max_entries: int | None = None

    def build_engine(self):
        """Construct the engine this spec describes (no pool attached)."""
        from repro.api.engine import ShardingEngine
        from repro.costmodel.pretrain import PretrainedCostModels
        from repro.hardware.cluster import SimulatedCluster

        bundle = (
            None
            if self.bundle_path is None
            else PretrainedCostModels.load(self.bundle_path)
        )
        return ShardingEngine(
            SimulatedCluster(self.cluster),
            bundle,
            search=self.search,
            default_strategy=self.default_strategy,
            strategy_kwargs=self.strategy_kwargs,
            cache_max_entries=self.cache_max_entries,
        )


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------

#: The engine of *this* worker process (set once by the initializer).
_worker_engine = None
#: Times the initializer ran in this process — 1 for the life of a
#: worker; observable through :meth:`WorkerPool.probe_workers` so tests
#: can pin the bootstrap-once contract.
_worker_bootstraps = 0


def _bootstrap_worker(spec: EngineSpec) -> None:
    """Process-pool initializer: build this worker's engine once."""
    global _worker_engine, _worker_bootstraps
    _worker_engine = spec.build_engine()
    _worker_bootstraps += 1


def _serve_shard(request_data: Mapping[str, Any]) -> dict[str, Any]:
    """Answer one serialized request on this worker's engine."""
    if _worker_engine is None:  # pragma: no cover — initializer contract
        raise RuntimeError("worker engine was never bootstrapped")
    response = _worker_engine.shard(ShardingRequest.from_dict(request_data))
    return response.to_dict()


def _probe_worker(_: int) -> dict[str, Any]:
    """Report this worker's identity and bootstrap/cache state."""
    if _worker_engine is None:  # pragma: no cover — initializer contract
        raise RuntimeError("worker engine was never bootstrapped")
    return {
        "pid": os.getpid(),
        "bootstraps": _worker_bootstraps,
        "cache": _worker_engine.cache_stats(),
    }


# ----------------------------------------------------------------------
# caller side
# ----------------------------------------------------------------------


class WorkerPool:
    """A pool of shard-serving worker processes built from one spec.

    The executor is created lazily on first use (so constructing a pool
    is free) and each worker runs :func:`_bootstrap_worker` exactly once
    before serving.  The pool is thread-safe: any number of caller
    threads — e.g. the HTTP server's per-deployment dispatch threads —
    may submit concurrently.

    Args:
        spec: the engine recipe every worker bootstraps from.
        max_workers: worker-process count.
        start_method: ``multiprocessing`` start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); the platform default when
            omitted.  Workers bootstrap from the spec either way — the
            method only changes how the OS process is brought up.
    """

    def __init__(
        self,
        spec: EngineSpec,
        max_workers: int = 4,
        start_method: str | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.spec = spec
        self.max_workers = max_workers
        self.start_method = start_method
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._executor is None:
                context = (
                    multiprocessing.get_context(self.start_method)
                    if self.start_method is not None
                    else multiprocessing.get_context()
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=context,
                    initializer=_bootstrap_worker,
                    initargs=(self.spec,),
                )
            return self._executor

    def close(self) -> None:
        """Shut the workers down; idempotent.  Waits for in-flight work."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def shard(self, request: ShardingRequest) -> ShardingResponse:
        """Answer one request on some worker (blocking)."""
        return self.shard_batch([request])[0]

    def shard_batch(
        self, requests: Sequence[ShardingRequest]
    ) -> list[ShardingResponse]:
        """Answer many requests across the workers, in request order.

        Strategy failures never propagate — they come back as infeasible
        responses with ``error`` set, exactly as in-process serving
        contains them.  Only infrastructure failures (a worker killed by
        the OS, an unpicklable spec) raise, as
        :class:`concurrent.futures.process.BrokenProcessPool`.
        """
        requests = list(requests)
        if not requests:
            return []
        executor = self._ensure_executor()
        payloads = [request.to_dict() for request in requests]
        return [
            ShardingResponse.from_dict(data)
            for data in executor.map(_serve_shard, payloads)
        ]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def probe_workers(self, samples: int | None = None) -> list[dict[str, Any]]:
        """Snapshot worker identities (pid, bootstrap count, cache stats).

        Submits ``samples`` probe tasks (4x the worker count when
        omitted) and returns one entry per *distinct* worker pid that
        answered.  Which workers answer depends on scheduling; with
        enough samples every live worker is typically represented.
        """
        executor = self._ensure_executor()
        if samples is None:
            samples = 4 * self.max_workers
        seen: dict[int, dict[str, Any]] = {}
        for probe in executor.map(_probe_worker, range(samples)):
            seen[probe["pid"]] = probe
        return [seen[pid] for pid in sorted(seen)]
