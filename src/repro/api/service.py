"""The plan-lifecycle service: named deployments with live, versioned plans.

:class:`~repro.api.engine.ShardingEngine` answers one-shot questions;
production serving needs *state*: a model deployment has a current
applied plan, the plan has a version history, and workload changes are
handled by migrating the live plan, not recomputing it from nothing.
:class:`ShardingService` owns that lifecycle for any number of named
deployments::

    service = ShardingService(PlanStore("deployments/"))
    service.create_deployment("dlrm-prod", engine, tables=task.tables)
    record = service.plan("dlrm-prod")            # version 1, not live yet
    service.apply("dlrm-prod")                    # version 1 goes live
    service.reshard(                              # drift + new tables
        "dlrm-prod",
        WorkloadDelta(add_tables=new, drift=report),
        ReshardConfig(migration_budget_ms=5_000),
    )                                             # version 2, applied
    service.rollback("dlrm-prod")                 # version 1 again, byte-equal

Every plan/reshard produces an immutable :class:`PlanRecord` (plan, the
table list it indexes, simulated cost, the :class:`~repro.api.diff
.PlanDiff` against the plan it replaced) persisted through
:class:`~repro.api.store.PlanStore`, and ``apply``/``rollback`` only move
the applied-version stack — so the entire history is auditable and any
applied state is reproducible byte-for-byte.  Each persisted record also
carries a hash-chain link to its predecessor and a provenance-stamped
validation report (:mod:`repro.provenance`), making the stored history
tamper-evident: :meth:`ShardingService.audit_deployment` (or ``repro
audit``) verifies it offline, no engine or bundle needed.
"""

from __future__ import annotations

import math
import re
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from repro.api.diff import MigrationCostModel, PlanDiff
from repro.api.engine import ShardingEngine
from repro.api.reshard import (
    ReshardConfig,
    WorkloadDelta,
    incremental_reshard,
)
from repro.api.schema import (
    SCHEMA_VERSION,
    ShardingRequest,
    ShardingResponse,
    _check_version,
    plan_from_dict,
    plan_to_dict,
)
from repro.api.store import PlanStore
from repro.core.plan import ShardingPlan
from repro.provenance.chain import (
    ProvenanceLink,
    genesis_digest,
    link_digest_of_payload,
    link_record,
    raw_digest,
    record_digest,
    stamp_fingerprint,
    state_stamp,
)
from repro.data.io import table_from_dict, table_to_dict
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.validation.invariants import (
    PlanValidationError,
    PlanValidator,
    ValidationReport,
)

__all__ = [
    "DeploymentNotFoundError",
    "PlanRecord",
    "PlanValidationError",
    "ShardingService",
]


class DeploymentNotFoundError(KeyError):
    """Raised when a deployment name is unknown to the service."""


@dataclass(frozen=True)
class PlanRecord:
    """One immutable version in a deployment's plan history.

    Attributes:
        version: 1-based version within the deployment.
        kind: ``"plan"`` (one-shot) or ``"reshard"`` (incremental).
        strategy: registry strategy (or reshard candidate) that produced
            the plan.
        feasible: a memory-legal plan was found.
        plan: the plan itself (``None`` when infeasible).
        base_tables: the table list ``plan``'s column plan applies to —
            the workload this version serves.
        num_devices / memory_bytes: the deployment contract the plan was
            made under.
        simulated_cost_ms: the cost models' estimate of the plan.
        sharding_time_s: wall-clock planning time.
        created_at: POSIX timestamp of record creation.
        request_id: caller correlation id.
        diff: shard-level difference against the plan that was applied
            when this record was created (``None`` for the first plan).
        metadata: free-form context (reshard objective, drift report,
            migration budget, the ``base_version`` the diff was computed
            against, ...).
        validation: the :class:`~repro.validation.invariants
            .ValidationReport` of the invariant checks run on this record
            (``None`` when the service validates nothing, or for records
            written before the validation layer existed).
        provenance: the record's hash-chain link (:class:`~repro
            .provenance.chain.ProvenanceLink`) — it commits to the
            record's own canonical content digest and its predecessor's
            chain digest, so the stored history is tamper-evident
            (``None`` for records written before the chain existed).
    """

    version: int
    kind: str
    strategy: str
    feasible: bool
    plan: ShardingPlan | None
    base_tables: tuple[TableConfig, ...]
    num_devices: int
    memory_bytes: int
    simulated_cost_ms: float
    sharding_time_s: float
    created_at: float
    request_id: str = ""
    diff: PlanDiff | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    validation: ValidationReport | None = None
    provenance: ProvenanceLink | None = None

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a versioned, JSON-compatible dictionary."""
        return {
            "schema_version": SCHEMA_VERSION,
            "version": self.version,
            "kind": self.kind,
            "strategy": self.strategy,
            "feasible": self.feasible,
            "plan": None if self.plan is None else plan_to_dict(self.plan),
            "base_tables": [table_to_dict(t) for t in self.base_tables],
            "num_devices": self.num_devices,
            "memory_bytes": self.memory_bytes,
            "simulated_cost_ms": (
                None
                if not math.isfinite(self.simulated_cost_ms)
                else float(self.simulated_cost_ms)
            ),
            "sharding_time_s": float(self.sharding_time_s),
            "created_at": float(self.created_at),
            "request_id": self.request_id,
            "diff": None if self.diff is None else self.diff.to_dict(),
            "metadata": dict(self.metadata),
            "validation": (
                None if self.validation is None else self.validation.to_dict()
            ),
            "provenance": (
                None if self.provenance is None else self.provenance.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanRecord":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        _check_version(data, "plan record")
        plan_data = data.get("plan")
        cost = data.get("simulated_cost_ms")
        diff_data = data.get("diff")
        validation_data = data.get("validation")
        provenance_data = data.get("provenance")
        return cls(
            version=int(data["version"]),
            kind=str(data["kind"]),
            strategy=str(data["strategy"]),
            feasible=bool(data["feasible"]),
            plan=None if plan_data is None else plan_from_dict(plan_data),
            base_tables=tuple(
                table_from_dict(t) for t in data.get("base_tables", ())
            ),
            num_devices=int(data["num_devices"]),
            memory_bytes=int(data["memory_bytes"]),
            simulated_cost_ms=(
                math.inf if cost is None else float(cost)
            ),
            sharding_time_s=float(data.get("sharding_time_s", 0.0)),
            created_at=float(data.get("created_at", 0.0)),
            request_id=str(data.get("request_id", "")),
            diff=None if diff_data is None else PlanDiff.from_dict(diff_data),
            metadata=dict(data.get("metadata", {})),
            validation=(
                None
                if validation_data is None
                else ValidationReport.from_dict(validation_data)
            ),
            provenance=(
                None
                if provenance_data is None
                else ProvenanceLink.from_dict(provenance_data)
            ),
        )


def _coerce_profile(profile: Any) -> "Any | None":
    """Normalize a ``profile`` argument to a validated ``TunedProfile``.

    Accepts ``None``, a :class:`repro.tuning.TunedProfile`, or its dict
    form (the persisted metadata) — the dict path re-validates every
    embedded knob, so a hand-edited profile fails loudly here.  The
    import is deferred: :mod:`repro.tuning` layers *above* the api
    package and only loads when profiles are actually used.
    """
    if profile is None:
        return None
    from collections.abc import Mapping as _Mapping

    from repro.tuning.profile import TunedProfile

    if isinstance(profile, TunedProfile):
        return profile
    if isinstance(profile, _Mapping):
        return TunedProfile.from_dict(profile)
    raise TypeError(
        "profile must be a TunedProfile or its dict form, got "
        f"{type(profile).__name__}"
    )


class _Deployment:
    """Runtime state of one named deployment."""

    def __init__(
        self,
        name: str,
        engine: ShardingEngine,
        tables: tuple[TableConfig, ...],
        memory_bytes: int,
        profile: "Any | None" = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.initial_tables = tables
        self.memory_bytes = memory_bytes
        #: Tuned profile (:class:`repro.tuning.TunedProfile`) applied at
        #: creation: its chosen search config becomes the default plan
        #: options and its reshard knobs the default reshard config.
        self.profile = profile
        self.records: dict[int, PlanRecord] = {}
        self.applied_stack: list[int] = []
        self.lock = threading.RLock()
        #: Chain anchor: digest of the deployment metadata the first
        #: record links to (see :func:`repro.provenance.chain
        #: .genesis_digest`).
        self.genesis_digest = ""
        #: version -> the digest a successor's chain link commits to
        #: (the record's stored chain digest; legacy/unreadable records
        #: get content/raw digests) — saves a disk read per new record.
        self.chain_digests: dict[int, str] = {}
        # Highest version ever handed out (>= max(records): versions are
        # reserved before their records exist, so concurrent planners
        # never collide).
        self._version_counter = 0

    @property
    def applied_version(self) -> int | None:
        """The live plan version (``None`` before the first apply)."""
        return self.applied_stack[-1] if self.applied_stack else None

    @property
    def applied_record(self) -> PlanRecord | None:
        """The live plan record (``None`` before the first apply)."""
        version = self.applied_version
        return None if version is None else self.records[version]

    @property
    def current_tables(self) -> tuple[TableConfig, ...]:
        """The workload this deployment currently serves."""
        record = self.applied_record
        return self.initial_tables if record is None else record.base_tables

    def reserve_versions(self, count: int) -> int:
        """Claim ``count`` consecutive versions; returns the first."""
        with self.lock:
            self._version_counter = max(
                self._version_counter, max(self.records, default=0)
            )
            first = self._version_counter + 1
            self._version_counter += count
            return first


class ShardingService:
    """Plan-lifecycle front-end over one or more deployments.

    Concurrency model: deployments are independent — any number may
    plan/apply/reshard concurrently (each has its own lock, and
    searches run unlocked), and one deployment's searches fan out to
    the engine's worker pool when it has one.  Store writes follow the
    **single-writer-per-deployment** rule: one service handle owns each
    deployment's version allocation, and horizontal scale comes from
    worker fan-out inside that handle, not from multiple handles.  A
    second handle on the same store directory is nevertheless *safe*:
    records are immutable (the store refuses overwrites and this
    service re-keys past foreign versions on collision), every write is
    crash-atomic, and state is last-writer-wins over records both
    writers have persisted — so contention can cost performance and
    interleaving, never a torn record or an inconsistent applied stack.

    Args:
        store: persistence for deployment metadata, plan records and the
            applied stack; ``None`` keeps everything in memory (tests,
            notebooks).
        validator: the invariant checker (a default-configured
            :class:`~repro.validation.invariants.PlanValidator` when
            omitted).
        validate: run the validator on every lifecycle verb by default
            (overridable per call).  ``plan``/``reshard`` *record* the
            validation report on the produced record;
            ``apply``/``reshard``-apply/``rollback`` additionally refuse
            to change the live plan when a check fails (raising
            :class:`~repro.validation.invariants.PlanValidationError`),
            so an invariant-violating plan can be recorded and audited
            but never serves traffic.
    """

    def __init__(
        self,
        store: PlanStore | None = None,
        validator: PlanValidator | None = None,
        validate: bool = True,
    ) -> None:
        self.store = store
        self.validator = validator or PlanValidator()
        self.validate_by_default = validate
        self._deployments: dict[str, _Deployment] = {}
        self._lock = threading.Lock()
        #: Deployments :meth:`open` left out (name -> reason), only
        #: populated with ``on_error="skip"``.
        self.skipped_deployments: dict[str, str] = {}
        #: Corrupted-tail recoveries :meth:`open` performed
        #: (deployment name -> notes), e.g. a torn plan-record file
        #: dropped or an applied stack truncated to its last consistent
        #: version.
        self.recovery_notes: dict[str, list[str]] = {}

    def _validating(self, override: bool | None) -> bool:
        return self.validate_by_default if override is None else override

    # ------------------------------------------------------------------
    # deployment management
    # ------------------------------------------------------------------

    def deployments(self) -> list[str]:
        """Names of deployments this service instance holds."""
        with self._lock:
            return sorted(self._deployments)

    def _get(self, name: str) -> _Deployment:
        with self._lock:
            try:
                return self._deployments[name]
            except KeyError:
                raise DeploymentNotFoundError(
                    f"no deployment named {name!r} "
                    f"(known: {sorted(self._deployments) or 'none'})"
                ) from None

    def create_deployment(
        self,
        name: str,
        engine: ShardingEngine,
        tables: Sequence[TableConfig],
        memory_bytes: int | None = None,
        bundle_ref: str | None = None,
        profile: "Any | None" = None,
    ) -> dict[str, Any]:
        """Register a new deployment and persist its metadata.

        Args:
            name: deployment name (also its store directory).
            engine: the serving engine (cluster + bundle) for this
                deployment.
            tables: the initial workload (the tables the model embeds).
            memory_bytes: per-device embedding budget (engine cluster's
                when omitted).
            bundle_ref: free-form pointer to the engine's bundle (path or
                ``name@vN`` tag), persisted so a restarted service can
                rebuild the engine.
            profile: a :class:`repro.tuning.TunedProfile` (or its dict
                form) to apply: the chosen search config becomes this
                deployment's default plan options, the chosen reshard
                knobs its default reshard config.  Persisted in the
                metadata, so a reopened service keeps planning with it.

        Returns:
            The deployment's status dictionary.

        Raises:
            ValueError: when the name is already in use (in memory or in
                the store), the profile's device count does not match the
                engine's, or the profile payload is invalid.
        """
        tables = tuple(tables)
        if not tables:
            raise ValueError("a deployment needs at least one table")
        profile = _coerce_profile(profile)
        if (
            profile is not None
            and profile.num_devices != engine.cluster.num_devices
        ):
            raise ValueError(
                f"tuned profile {profile.scenario!r} was tuned for "
                f"{profile.num_devices} devices but the engine serves "
                f"{engine.cluster.num_devices}"
            )
        memory = (
            memory_bytes
            if memory_bytes is not None
            else engine.cluster.config.memory_bytes
        )
        with self._lock:
            if name in self._deployments:
                raise ValueError(f"deployment {name!r} already exists")
            if self.store is not None and self.store.has_deployment(name):
                raise ValueError(
                    f"deployment {name!r} already exists in store "
                    f"{self.store.root}; use ShardingService.open"
                )
            deployment = _Deployment(name, engine, tables, memory, profile)
            self._deployments[name] = deployment
        meta = {
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "created_at": time.time(),
            "num_devices": engine.cluster.num_devices,
            "batch_size": engine.cluster.batch_size,
            "memory_bytes": memory,
            "bundle_ref": bundle_ref,
            "tables": [table_to_dict(t) for t in tables],
        }
        if profile is not None:
            meta["tuned_profile"] = profile.to_dict()
        # The chain anchor is the digest of this metadata — computed
        # here (not from a re-read) so storeless deployments chain too.
        deployment.genesis_digest = genesis_digest(meta)
        if self.store is not None:
            self.store.save_meta(name, meta)
            self._persist_state(deployment)
        return self.status(name)

    @classmethod
    def open(
        cls,
        store: PlanStore,
        engine_factory: Callable[[dict[str, Any]], ShardingEngine],
        on_error: str = "raise",
    ) -> "ShardingService":
        """Rebuild a service from a store.

        Corrupted-tail recovery: a plan-record file that no longer
        parses (a torn write from a pre-atomic store, disk corruption) is
        dropped, and an applied stack referencing a missing or invalid
        record is truncated to its longest consistent prefix — so the
        service always comes back serving the **last consistent applied
        version**.  Every such repair is recorded in
        :attr:`recovery_notes`; a clean store produces none.

        Args:
            store: the persisted deployments.
            engine_factory: builds each deployment's engine from its
                stored metadata (``meta["bundle_ref"]`` points at the
                bundle, ``meta["num_devices"]``/``memory_bytes`` describe
                the cluster).
            on_error: ``"raise"`` propagates a deployment's load/factory
                failure; ``"skip"`` leaves that deployment out (recorded
                in :attr:`skipped_deployments`) so one bad deployment —
                e.g. a device-count mismatch with the provided bundle —
                does not block listing/serving the others.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        service = cls(store)
        for name in store.names():
            notes: list[str] = []
            try:
                meta = store.load_meta(name)
                _check_version(meta, "deployment metadata")
                engine = engine_factory(meta)
                deployment = _Deployment(
                    name,
                    engine,
                    tuple(table_from_dict(t) for t in meta["tables"]),
                    int(meta["memory_bytes"]),
                    _coerce_profile(meta.get("tuned_profile")),
                )
                deployment.genesis_digest = genesis_digest(meta)
                stored_versions = store.versions(name)
                for version in stored_versions:
                    data = None
                    try:
                        data = store.load_record(name, version)
                        record = PlanRecord.from_dict(data)
                    except Exception as exc:  # noqa: BLE001 — corrupted tail
                        notes.append(
                            f"dropped unreadable plan record v{version} "
                            f"({type(exc).__name__}: {exc})"
                        )
                        # Register what a successor would chain over —
                        # the raw file bytes when the record does not
                        # parse — so new records written after this
                        # recovery stay verifiably linked past the
                        # damage instead of silently skipping it.
                        if data is not None:
                            deployment.chain_digests[version] = (
                                link_digest_of_payload(data)
                            )
                        else:
                            try:
                                deployment.chain_digests[version] = raw_digest(
                                    store.read_record_bytes(name, version)
                                )
                            except OSError:
                                pass
                        continue
                    deployment.chain_digests[version] = (
                        link_digest_of_payload(data)
                    )
                    deployment.records[record.version] = record
                # Version allocation must clear every *stored* version,
                # readable or not: a dropped corrupt v<N> still occupies
                # its file, and records are immutable — reusing N would
                # wedge every future plan on FileExistsError.
                deployment._version_counter = max(
                    stored_versions, default=0
                )
                try:
                    state = store.load_state(name)
                except Exception as exc:  # noqa: BLE001 — corrupted tail
                    notes.append(
                        f"reset unreadable deployment state "
                        f"({type(exc).__name__}: {exc})"
                    )
                    state = {}
                stack = [int(v) for v in state.get("applied_stack", [])]
                consistent: list[int] = []
                for version in stack:
                    record = deployment.records.get(version)
                    if record is None or not record.feasible or record.plan is None:
                        notes.append(
                            f"truncated applied stack at v{version} "
                            "(missing or invalid record); recovered to "
                            + (
                                f"v{consistent[-1]}"
                                if consistent
                                else "no applied version"
                            )
                        )
                        break
                    consistent.append(version)
                deployment.applied_stack = consistent
                # The budget the deployment actually runs under is
                # mutable state: reshard(memory_bytes=...) may have
                # changed it since the metadata snapshot at creation
                # time, independently of which plan is applied (capacity
                # loss survives infeasible reshards and rollbacks).
                # Stores written before the budget was state-tracked
                # fall back to the applied record's contract.
                state_memory = state.get("memory_bytes")
                if state_memory is not None:
                    deployment.memory_bytes = int(state_memory)
                elif deployment.applied_record is not None:
                    deployment.memory_bytes = (
                        deployment.applied_record.memory_bytes
                    )
            except Exception as exc:  # noqa: BLE001 — per-deployment boundary
                if on_error == "raise":
                    raise
                service.skipped_deployments[name] = f"{type(exc).__name__}: {exc}"
                continue
            if notes:
                service.recovery_notes[name] = notes
            service._deployments[name] = deployment
        return service

    # ------------------------------------------------------------------
    # lifecycle verbs
    # ------------------------------------------------------------------

    def _task(self, deployment: _Deployment, version: int) -> ShardingTask:
        return ShardingTask(
            tables=deployment.current_tables,
            num_devices=deployment.engine.cluster.num_devices,
            memory_bytes=deployment.memory_bytes,
            task_id=version,
        )

    #: Bound on version-collision retries against a store another
    #: writer is appending to (each retry allocates strictly past every
    #: stored version, so hitting the bound means something is rewriting
    #: the store far faster than any legitimate sibling service).
    _COLLISION_RETRIES = 100

    def _record_response(
        self,
        deployment: _Deployment,
        response: ShardingResponse,
        task: ShardingTask,
        version: int,
        kind: str,
        diff: PlanDiff | None = None,
        metadata: Mapping[str, Any] | None = None,
        applied: PlanRecord | None = None,
        validate: bool | None = None,
    ) -> PlanRecord:
        def build(record_version: int) -> PlanRecord:
            record = PlanRecord(
                version=record_version,
                kind=kind,
                strategy=response.strategy,
                feasible=response.feasible,
                plan=response.plan,
                base_tables=(
                    response.plan_tables(task)
                    if response.feasible
                    else task.tables
                ),
                num_devices=task.num_devices,
                memory_bytes=task.memory_bytes,
                simulated_cost_ms=response.simulated_cost_ms,
                sharding_time_s=response.sharding_time_s,
                created_at=time.time(),
                request_id=response.request_id,
                diff=diff,
                metadata=dict(metadata or {}),
            )
            if self._validating(validate):
                # Record the verdict, do not gate: an invariant-violating
                # plan may be recorded and audited — apply() is the gate
                # that keeps it from serving traffic.
                report = self.validator.validate_record(
                    record, subject=f"{deployment.name}/v{record_version}"
                )
                if (
                    applied is not None
                    and applied.plan is not None
                    and record.feasible
                ):
                    report = report.merged(
                        self.validator.validate_transition(applied, record)
                    )
                # Stamp the report with the code fingerprint that ran
                # the checks and the digest of what they checked (the
                # digest excludes the report itself, so stamping cannot
                # invalidate it).
                report = report.stamped(
                    stamp_fingerprint(), record_digest(record.to_dict())
                )
                record = replace(record, validation=report)
            # Chain link last: the content digest must cover the final
            # payload, validation stamp included.
            prev_version, prev_digest = self._chain_prev(
                deployment, record_version
            )
            return replace(
                record,
                provenance=link_record(
                    record.to_dict(), prev_version, prev_digest
                ),
            )

        record = build(version)
        # Disk before memory: a crash mid-write must never leave the
        # in-process service ahead of what a restart would recover.
        if self.store is not None:
            for _ in range(self._COLLISION_RETRIES):
                try:
                    self.store.save_record(deployment.name, record.to_dict())
                    break
                except FileExistsError:
                    # Another writer on the same store took this version.
                    # Single-writer-per-deployment is the design rule —
                    # worker fan-out happens *inside* one service handle
                    # — but a collision must stay safe, not corrupt: the
                    # store's immutable records already refused the
                    # overwrite, so re-sync allocation past every stored
                    # version and re-key the record.
                    with deployment.lock:
                        deployment._version_counter = max(
                            deployment._version_counter,
                            self.store.latest_version(deployment.name),
                        )
                        version = deployment.reserve_versions(1)
                    record = build(version)
            else:
                raise RuntimeError(
                    f"could not allocate a free plan version for deployment "
                    f"{deployment.name!r} after "
                    f"{self._COLLISION_RETRIES} collisions"
                )
        deployment.records[record.version] = record
        if record.provenance is not None:
            deployment.chain_digests[record.version] = (
                record.provenance.chain_digest
            )
        return record

    def _chain_prev(self, deployment: _Deployment, version: int) -> tuple[int, str]:
        """The predecessor a new record at ``version`` chains to.

        The highest version strictly below ``version`` that this handle
        knows (its own records) or the store holds (a sibling writer's),
        falling back to the genesis anchor when none exists.  Foreign
        records' digests are read from disk once and cached; a stored
        version whose digest cannot be derived at all (deleted between
        listing and reading) falls through to the next-lower candidate.
        """
        candidates = {
            v
            for v in (*deployment.chain_digests, *deployment.records)
            if v < version
        }
        if self.store is not None:
            candidates.update(
                v for v in self.store.versions(deployment.name) if v < version
            )
        for prev in sorted(candidates, reverse=True):
            digest = deployment.chain_digests.get(prev)
            if digest is None:
                digest = self._stored_link_digest(deployment.name, prev)
                if digest is None:
                    continue
                deployment.chain_digests[prev] = digest
            return prev, digest
        return 0, deployment.genesis_digest

    def _stored_link_digest(self, name: str, version: int) -> str | None:
        """The chain digest a successor commits to for a stored record.

        Parses the record when possible; digests its raw bytes when it
        is torn (the chain accounts for damage instead of skipping it);
        ``None`` when the file is gone entirely.
        """
        try:
            return link_digest_of_payload(self.store.load_record(name, version))
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — torn record: digest raw bytes
            try:
                return raw_digest(self.store.read_record_bytes(name, version))
            except OSError:
                return None

    @staticmethod
    def _plan_options(
        deployment: _Deployment, options: Mapping[str, Any] | None
    ) -> dict[str, Any]:
        """Request options with the deployment's tuned defaults applied.

        The tuned profile's chosen search config is injected as the
        ``search`` option (in dict form — request options must stay
        JSON-serializable for worker pools and the HTTP wire) unless the
        caller set one explicitly; an explicit per-request ``search``
        always wins.
        """
        merged = dict(options or {})
        if deployment.profile is not None and "search" not in merged:
            merged["search"] = deployment.profile.chosen.search.to_dict()
        return merged

    def plan(
        self,
        name: str,
        strategy: str | None = None,
        options: Mapping[str, Any] | None = None,
        request_id: str = "",
        validate: bool | None = None,
    ) -> PlanRecord:
        """Compute (but do not apply) a new plan for the current workload."""
        return self.plan_batch(
            name, [(strategy, options, request_id)], validate=validate
        )[0]

    def plan_batch(
        self,
        name: str,
        specs: Sequence[
            tuple[str | None, Mapping[str, Any] | None, str]
        ],
        max_workers: int | None = None,
        validate: bool | None = None,
    ) -> list[PlanRecord]:
        """Compute several plans concurrently (the serving micro-batch path).

        Each spec is ``(strategy, options, request_id)``.  Responses are
        identical to sequential :meth:`plan` calls (the engine's batch
        path is sequential-deterministic); records are versioned in spec
        order.

        The deployment lock is held only to reserve versions and to
        insert the finished records — the search itself runs unlocked,
        so ``status``/``history``/``apply`` stay responsive during a
        slow plan.  Diffs are computed against the plan applied at
        reservation time.
        """
        deployment = self._get(name)
        with deployment.lock:
            first_version = deployment.reserve_versions(len(specs))
            task_by_version = {
                first_version + i: self._task(deployment, first_version + i)
                for i in range(len(specs))
            }
            applied = deployment.applied_record
        requests = [
            ShardingRequest(
                task=task_by_version[first_version + i],
                strategy=spec[0],
                request_id=spec[2],
                options=self._plan_options(deployment, spec[1]),
            )
            for i, spec in enumerate(specs)
        ]
        responses = deployment.engine.shard_batch(
            requests, max_workers=max_workers
        )
        records = []
        with deployment.lock:
            for i, response in enumerate(responses):
                version = first_version + i
                task = task_by_version[version]
                diff = None
                metadata: dict[str, Any] = {}
                if applied is not None:
                    # Anchor the diff (and its validation) to the base
                    # it was computed against.
                    metadata["base_version"] = applied.version
                if (
                    applied is not None
                    and applied.plan is not None
                    and response.feasible
                    and response.plan is not None
                ):
                    diff = PlanDiff.between(
                        applied.plan,
                        applied.base_tables,
                        response.plan,
                        response.plan_tables(task),
                        # Price with the deployment's actual links, as
                        # reshard does — one spec per history.
                        MigrationCostModel(deployment.engine.cluster.spec),
                    )
                records.append(
                    self._record_response(
                        deployment,
                        response,
                        task,
                        version,
                        "plan",
                        diff,
                        metadata=metadata,
                        applied=applied,
                        validate=validate,
                    )
                )
        return records

    def apply(
        self, name: str, version: int | None = None, validate: bool | None = None
    ) -> PlanRecord:
        """Make a stored plan version the deployment's live plan.

        With validation on (the default), the record's structural
        invariants — and the conservation laws of the transition from the
        currently applied plan — are checked *before* the stack moves: an
        invariant-violating plan never goes live.  Memory feasibility is
        checked against the deployment's *current* per-device budget, not
        the record's creation-time snapshot — capacity lost to a later
        ``reshard(memory_bytes=...)`` makes an old plan's own snapshot a
        stale contract.

        Args:
            name: the deployment.
            version: the record to apply; defaults to the latest feasible
                record.
            validate: override the service's ``validate`` default.

        Returns:
            The applied record, byte-identical to how it was recorded
            (its ``validation`` field is the creation-time report).

        Raises:
            ValueError: when the version is unknown, infeasible, or no
                feasible record exists.
            PlanValidationError: when validation finds a violation.
        """
        deployment = self._get(name)
        with deployment.lock:
            if version is None:
                feasible = [
                    v
                    for v, r in sorted(deployment.records.items())
                    if r.feasible
                ]
                if not feasible:
                    raise ValueError(
                        f"deployment {name!r} has no feasible plan record to "
                        "apply"
                    )
                version = feasible[-1]
            record = deployment.records.get(version)
            if record is None:
                raise ValueError(
                    f"deployment {name!r} has no plan record v{version} "
                    f"(stored: {sorted(deployment.records) or 'none'})"
                )
            if not record.feasible or record.plan is None:
                raise ValueError(
                    f"plan record v{version} of deployment {name!r} is "
                    "infeasible and cannot be applied"
                )
            return self._apply_locked(deployment, record, validate)

    def _apply_locked(
        self,
        deployment: _Deployment,
        record: PlanRecord,
        validate: bool | None,
        report: ValidationReport | None = None,
    ) -> PlanRecord:
        """Gate ``record`` and push it onto the applied stack.

        Caller holds ``deployment.lock`` and has vetted feasibility.
        ``report`` lets :meth:`reshard` reuse the report stamped on the
        record it just created — same base, same budget, same lock hold —
        instead of re-running the full suite.
        """
        if self._validating(validate):
            if report is None:
                previous = deployment.applied_record
                report = self.validator.validate_record(
                    record,
                    subject=f"{deployment.name}/v{record.version}",
                    memory_bytes=deployment.memory_bytes,
                )
                if previous is not None and previous.plan is not None:
                    report = report.merged(
                        self.validator.validate_transition(previous, record)
                    )
            # Gate, but return the record unchanged: what apply hands
            # back must be byte-identical to what was recorded.
            report.raise_if_failed()
        # Disk before memory: persist the post-apply stack first, so a
        # crashed/failed state write leaves the in-process service on
        # the same version a restart would recover.
        self._persist_state(
            deployment,
            applied_stack=[*deployment.applied_stack, record.version],
        )
        deployment.applied_stack.append(record.version)
        return record

    def rollback(self, name: str, validate: bool | None = None) -> PlanRecord:
        """Restore the previously applied plan version.

        With validation on (the default), the record being restored is
        checked for byte-identity against its stored serialization —
        rollback replays history, it must never rewrite it — *before*
        the stack moves.

        Args:
            name: the deployment.
            validate: override the service's ``validate`` default.

        Returns:
            The record that is live after the rollback.

        Raises:
            ValueError: when fewer than two versions have been applied.
            PlanValidationError: when validation finds a violation.
        """
        deployment = self._get(name)
        with deployment.lock:
            if len(deployment.applied_stack) < 2:
                raise ValueError(
                    f"deployment {name!r} has no earlier applied version to "
                    "roll back to"
                )
            target = deployment.applied_stack[-2]
            record = deployment.records[target]
            if self._validating(validate):
                stored = None
                if self.store is not None:
                    try:
                        stored = self.store.load_record(deployment.name, target)
                    except Exception:  # noqa: BLE001 — missing/unreadable
                        # Either way the file cannot vouch for the
                        # record's bytes; the validator reports it.
                        stored = {}
                # The restored plan serves under the deployment's current
                # budget, not the (possibly larger) one it was created
                # under — degradation survives rollbacks.
                report = self.validator.validate_record(
                    record,
                    subject=f"{name}/v{target}",
                    memory_bytes=deployment.memory_bytes,
                ).merged(self.validator.validate_rollback(record, stored))
                # Gate, but return the record unchanged: rollback must
                # restore v{target} byte-identically, validation report
                # included.
                report.raise_if_failed()
            # Disk before memory, as in apply: a failed state write must
            # not leave the in-process service behind the stack a
            # restart would recover.
            self._persist_state(
                deployment, applied_stack=deployment.applied_stack[:-1]
            )
            deployment.applied_stack.pop()
            return record

    def reshard(
        self,
        name: str,
        delta: WorkloadDelta,
        config: ReshardConfig | None = None,
        strategy: str | None = None,
        apply: bool = True,
        request_id: str = "",
        memory_bytes: int | None = None,
        validate: bool | None = None,
    ) -> PlanRecord:
        """Re-plan the deployment for a changed workload, migration-aware.

        Runs :func:`~repro.api.reshard.incremental_reshard` from the
        applied plan, records the chosen candidate (diff included), and —
        by default — applies it.

        Args:
            name: the deployment.
            delta: tables added/removed/stat-updated since the applied
                plan.
            config: budget / lambda / refinement knobs.
            strategy: full-search strategy (engine default when omitted).
            apply: make the chosen plan live when it is feasible.
            memory_bytes: new per-device budget for this deployment from
                this reshard on (device degradation / capacity changes).
                The deployment keeps the new budget even when the reshard
                finds no feasible plan — lost capacity stays lost.
            request_id: caller correlation id.
            validate: override the service's ``validate`` default.

        Raises:
            ValueError: when no plan is applied yet, or ``memory_bytes``
                is not positive.
            PlanValidationError: when validation rejects the chosen plan
                at apply time (the record is still persisted for audit;
                it just does not go live).
        """
        deployment = self._get(name)
        if config is None:
            # The tuned profile's reshard knobs are the deployment
            # default; an explicit config always wins.
            config = (
                deployment.profile.chosen.reshard
                if deployment.profile is not None
                else ReshardConfig()
            )
        with deployment.lock:
            applied = deployment.applied_record
            if applied is None or applied.plan is None:
                raise ValueError(
                    f"deployment {name!r} has no applied plan; call plan() "
                    "and apply() first"
                )
            if memory_bytes is not None:
                if memory_bytes <= 0:
                    raise ValueError(
                        f"memory_bytes must be > 0, got {memory_bytes}"
                    )
                # Budget changes are deployment state, not plan state:
                # persist immediately (disk before memory) so the new
                # budget survives a restart even when this reshard finds
                # no feasible plan, and is not reverted by a later
                # rollback.
                self._persist_state(deployment, memory_bytes=int(memory_bytes))
                deployment.memory_bytes = int(memory_bytes)
            version = deployment.reserve_versions(1)
            result = incremental_reshard(
                deployment.engine,
                applied.plan,
                applied.base_tables,
                delta,
                config=config,
                strategy=strategy,
                memory_bytes=deployment.memory_bytes,
                request_id=request_id,
            )
            task = result.new_task
            metadata: dict[str, Any] = {
                "base_version": applied.version,
                "delta": delta.to_dict(),
                "reshard_config": config.to_dict(),
                "chosen": result.chosen,
                "objective_ms": (
                    None
                    if not math.isfinite(result.objective_ms)
                    else result.objective_ms
                ),
                "within_budget": result.within_budget,
                "drift_triggered": result.drift_triggered,
            }
            if result.full_response is not None and result.full_diff is not None:
                metadata["full_search"] = {
                    "strategy": result.full_response.strategy,
                    "simulated_cost_ms": result.full_response.simulated_cost_ms,
                    "migration_cost_ms": result.full_diff.migration_cost_ms,
                    "moved_bytes": result.full_diff.moved_bytes,
                    "transferred_bytes": result.full_diff.transferred_bytes,
                }
            record = self._record_response(
                deployment,
                result.response,
                task,
                version,
                "reshard",
                diff=result.diff,
                metadata=metadata,
                applied=applied,
                validate=validate,
            )
            if apply and record.feasible:
                # Reuse the report stamped moments ago under this same
                # lock: the base plan and budget are unchanged, so
                # re-running validate_record + validate_transition here
                # would double the validator cost of every default
                # reshard for no new information.
                self._apply_locked(
                    deployment, record, validate, report=record.validation
                )
            return record

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def get_record(self, name: str, version: int) -> PlanRecord:
        """One stored plan record of ``name``.

        Raises:
            ValueError: when the version does not exist.
        """
        deployment = self._get(name)
        with deployment.lock:
            record = deployment.records.get(version)
            if record is None:
                raise ValueError(
                    f"deployment {name!r} has no plan record v{version}"
                )
            return record

    def applied_record(self, name: str) -> PlanRecord | None:
        """The live plan record of ``name`` (``None`` before apply)."""
        deployment = self._get(name)
        with deployment.lock:
            return deployment.applied_record

    def history(self, name: str) -> list[dict[str, Any]]:
        """All plan records of ``name``, version-ascending, as dicts."""
        deployment = self._get(name)
        with deployment.lock:
            return [
                deployment.records[v].to_dict()
                for v in sorted(deployment.records)
            ]

    def validate_deployment(self, name: str) -> ValidationReport:
        """Run the full invariant suite over one deployment's history.

        Checks every stored record (structure, memory, coherence), every
        transition along the applied stack (diff conservation laws), the
        applied stack itself, and — for store-backed services — that the
        in-memory records are byte-identical to their stored
        serializations.  Never raises on violations; the report carries
        them.
        """
        deployment = self._get(name)
        with deployment.lock:
            records = [
                deployment.records[v] for v in sorted(deployment.records)
            ]
            stack = list(deployment.applied_stack)
            budget = deployment.memory_bytes
        stored: dict[int, dict[str, Any]] | None = None
        if self.store is not None:
            stored = {}
            for version in self.store.versions(name):
                try:
                    stored[version] = self.store.load_record(name, version)
                except Exception:  # noqa: BLE001 — unreadable = missing
                    continue  # validate_history flags the byte mismatch
        return self.validator.validate_history(
            records,
            stack,
            stored=stored,
            subject=f"deployment:{name}",
            memory_bytes=budget,
        )

    def audit_deployment(self, name: str) -> Any:
        """Audit one deployment's stored provenance chain offline.

        Runs :func:`repro.provenance.audit.audit_deployment` over the
        service's store — verifying the hash chain, the validation
        stamps, and the state anchor, and re-running the validator —
        then cross-checks this handle's :attr:`recovery_notes` against
        the findings: every version a recovery note blames must carry a
        corresponding audit finding (damage :meth:`open` repaired in
        memory is still on disk and must be visible to a third party).
        An unconfirmed note is reported as a ``chain/recovery-unconfirmed``
        advisory.

        Returns:
            The :class:`repro.provenance.audit.AuditReport`.

        Raises:
            ValueError: when the service has no store (there is nothing
                on disk to audit).
            FileNotFoundError: when the store has no such deployment.
        """
        if self.store is None:
            raise ValueError(
                "audit requires a store-backed service; this service "
                "holds deployments in memory only"
            )
        from repro.provenance.audit import AuditFinding
        from repro.provenance.audit import audit_deployment as _audit

        report = _audit(self.store, name, validator=self.validator)
        flagged = {f.version for f in report.findings if f.version is not None}
        state_flagged = any(
            f.code.startswith("chain/state") or f.code.startswith("state/")
            for f in report.findings
        )
        extra = []
        for note in self.recovery_notes.get(name, []):
            match = re.search(r"v(\d+)", note)
            if match is not None:
                version = int(match.group(1))
                if version not in flagged:
                    extra.append(
                        AuditFinding(
                            "chain/recovery-unconfirmed",
                            "advisory",
                            version,
                            f"open() recovery blamed v{version} but the "
                            f"audit found no damage there: {note}",
                        )
                    )
            elif "state" in note and not state_flagged:
                extra.append(
                    AuditFinding(
                        "chain/recovery-unconfirmed",
                        "advisory",
                        None,
                        "open() recovery reported state damage the audit "
                        f"did not confirm: {note}",
                    )
                )
        return report.with_findings(extra)

    def status(self, name: str) -> dict[str, Any]:
        """Operational snapshot of one deployment."""
        deployment = self._get(name)
        with deployment.lock:
            applied = deployment.applied_record
            return {
                "name": name,
                "num_devices": deployment.engine.cluster.num_devices,
                "memory_bytes": deployment.memory_bytes,
                # Logical tables: column shards of one table share a
                # table_id, so the count is stable across re-splits.
                "num_tables": len(
                    {t.table_id for t in deployment.current_tables}
                ),
                "num_shards": len(deployment.current_tables),
                "num_records": len(deployment.records),
                "applied_version": deployment.applied_version,
                "applied_stack": list(deployment.applied_stack),
                # None when nothing is applied or the cost is non-finite
                # (bundle-less engines score plans as nan; bare NaN/inf
                # tokens are not valid JSON for strict parsers).
                "applied_cost_ms": (
                    applied.simulated_cost_ms
                    if applied is not None
                    and math.isfinite(applied.simulated_cost_ms)
                    else None
                ),
                "applied_strategy": (
                    None if applied is None else applied.strategy
                ),
                "default_strategy": deployment.engine.default_strategy,
                # Scenario name of the tuned profile applied at creation
                # (None for untuned deployments).
                "tuned_profile": (
                    None
                    if deployment.profile is None
                    else deployment.profile.scenario
                ),
                "cache": deployment.engine.cache_stats(),
                # Corrupted-tail repairs open() performed on this
                # deployment (empty for a clean store) — operators see
                # at a glance that the served version is a recovery.
                "recovery_notes": list(self.recovery_notes.get(name, [])),
            }

    def _persist_state(
        self,
        deployment: _Deployment,
        applied_stack: Sequence[int] | None = None,
        memory_bytes: int | None = None,
    ) -> None:
        """Write deployment state; overrides let mutating verbs persist
        the post-mutation state *before* touching memory (disk before
        memory — a failed write must leave process and disk agreeing).

        The state carries a provenance stamp anchored at the
        top-of-stack record's chain digest (the genesis digest when
        nothing is applied), so a truncated or edited applied stack is
        detectable offline (see :func:`repro.provenance.chain
        .state_stamp`).
        """
        if self.store is None:
            return
        stack = list(
            deployment.applied_stack if applied_stack is None else applied_stack
        )
        memory = (
            deployment.memory_bytes if memory_bytes is None else memory_bytes
        )
        anchor_version = stack[-1] if stack else 0
        if anchor_version == 0:
            anchor_digest = deployment.genesis_digest
        else:
            anchor_digest = deployment.chain_digests.get(anchor_version)
            if anchor_digest is None:
                anchor_digest = (
                    self._stored_link_digest(deployment.name, anchor_version)
                    or ""
                )
        self.store.save_state(
            deployment.name,
            {
                "applied_stack": stack,
                "memory_bytes": memory,
                "provenance": state_stamp(
                    stack, memory, anchor_version, anchor_digest
                ),
            },
        )
