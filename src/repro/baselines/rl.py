"""RL sharding baselines: AutoShard and DreamShard (Appendix E.2).

Both prior works cast table-wise sharding as an MDP solved with policy
gradients over a *learned* cost model:

- **AutoShard** (Zha et al., 2022a) balances computation only; its
  reward is the degree of balance, ``min_d cost_d / max_d cost_d``.
- **DreamShard** (Zha et al., 2022b) extends the cost model to
  communication and optimizes the overall embedding cost inside an
  "estimated MDP" (all rewards come from cost-model predictions, never
  real hardware), so it typically beats AutoShard.

This reproduction keeps their essential properties that Table 1 exposes:

- **table-wise only** — no column-wise sharding, so a single oversized
  table makes the whole task infeasible (the "-" entries at large max
  dimensions);
- **stochastic policies** — REINFORCE with a moving-average baseline;
  run-to-run variance is real and some seeds land on poor plans
  (Section 4.1's observation that RL "fails even when the dimension is
  small" on some runs);
- **per-task optimization cost** — every task pays an episode budget,
  unlike NeuroShard's train-once search.

Both use a pre-trained cost-model bundle as *their own* learned cost
model, mirroring how the original systems train neural cost estimators
from the same micro-benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import assignment_to_plan
from repro.config import rng_from_seed
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel
from repro.nn import Adam, Sequential

__all__ = ["AutoShardSharder", "DreamShardSharder"]

#: Per-device state features fed to the policy alongside table features.
_DEVICE_FEATURES = 3


class _ReinforceSharder:
    """Shared REINFORCE machinery for the two RL baselines.

    Subclasses define :meth:`_objective`, the (to-be-minimized) scalar a
    finished episode is scored with; the reward is its negation.

    Args:
        models: the baseline's learned cost models.
        episodes: training episodes per task.
        lr: policy learning rate.
        hidden: policy MLP hidden sizes.
        seed: RNG seed (sampling and initialization).
    """

    name = "RL"

    def __init__(
        self,
        models: PretrainedCostModels,
        episodes: int = 60,
        lr: float = 5e-3,
        hidden: tuple[int, ...] = (64, 32),
        seed: int = 0,
    ) -> None:
        if episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {episodes}")
        self.models = models
        self.episodes = episodes
        self.lr = lr
        self.hidden = hidden
        self._rng = rng_from_seed(seed)

    # ------------------------------------------------------------------
    # objective (subclass hook)
    # ------------------------------------------------------------------

    def _objective(
        self,
        simulator: NeuroShardSimulator,
        per_device: list[list[TableConfig]],
    ) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------

    def _state(
        self,
        table_features: np.ndarray,
        device_costs: list[float],
        device_dims: list[int],
        device_bytes: list[int],
        memory_bytes: int,
        total_dim: int,
    ) -> np.ndarray:
        """Policy input: table features ++ per-device summaries."""
        dev = []
        for d in range(len(device_costs)):
            dev.extend(
                (
                    device_costs[d] / 10.0,
                    device_dims[d] / max(total_dim, 1),
                    device_bytes[d] / memory_bytes,
                )
            )
        return np.concatenate([table_features, np.array(dev)])

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        if task.num_devices != self.models.num_devices:
            raise ValueError(
                f"task has {task.num_devices} devices but the cost models "
                f"were trained for {self.models.num_devices}"
            )
        memory = MemoryModel(task.memory_bytes)
        simulator = NeuroShardSimulator(self.models, CostCache())
        featurizer = self.models.featurizer
        tables = list(task.tables)
        num_devices = task.num_devices
        total_dim = sum(t.dim for t in tables)

        # Tables enter the MDP in descending predicted-cost order, the
        # same sorting the greedy methods use.
        singles = simulator.single_table_costs(tables)
        order = list(np.argsort(-singles, kind="stable"))
        feats = [featurizer.features(t) for t in tables]

        input_dim = featurizer.num_features + _DEVICE_FEATURES * num_devices
        policy = Sequential.mlp(
            [input_dim, *self.hidden, num_devices], rng=self._rng, name="policy"
        )
        optimizer = Adam(policy.parameters(), lr=self.lr)

        best_assignment: tuple[int, ...] | None = None
        best_objective = np.inf
        reward_baseline = 0.0

        # Both original systems bootstrap from a learned cost model
        # rather than a blank policy (AutoShard's MDP states *are* cost
        # predictions; DreamShard rolls out inside an estimated MDP), so
        # pure from-scratch REINFORCE would caricature them.  Episodes
        # alternate between cost-model-guided rollouts (episode 0
        # deterministic greedy, later even episodes noisy greedy — no
        # policy update) and on-policy sampling episodes that train the
        # policy.  The best episode under the method's own objective
        # wins, which is where AutoShard (compute balance) and DreamShard
        # (full embedding cost) genuinely differ.
        for episode in range(self.episodes):
            greedy_rollout = episode % 2 == 0
            greedy_temperature = 0.0 if episode == 0 else 0.15
            device_tables: list[list[TableConfig]] = [
                [] for _ in range(num_devices)
            ]
            device_costs = [0.0] * num_devices
            device_dims = [0] * num_devices
            device_bytes = [0] * num_devices
            assignment = [0] * len(tables)
            steps: list[tuple[np.ndarray, np.ndarray, int, np.ndarray]] = []
            failed = False

            for ti in order:
                table = tables[ti]
                t_bytes = memory.table_bytes(table)
                mask = np.array(
                    [
                        device_bytes[d] + t_bytes <= memory.memory_bytes
                        for d in range(num_devices)
                    ]
                )
                if not mask.any():
                    failed = True
                    break
                if greedy_rollout:
                    candidates = [d for d in range(num_devices) if mask[d]]
                    resulting = np.array(
                        simulator.device_compute_costs(
                            [device_tables[d] + [table] for d in candidates]
                        )
                    )
                    if greedy_temperature > 0 and len(candidates) > 1:
                        # Noisy greedy: softmax over negated resulting
                        # costs, temperature relative to their spread.
                        scale = greedy_temperature * max(resulting.mean(), 1e-6)
                        logits = -(resulting - resulting.min()) / scale
                        probs = np.exp(logits - logits.max())
                        probs /= probs.sum()
                        action = candidates[
                            int(self._rng.choice(len(candidates), p=probs))
                        ]
                    else:
                        action = candidates[int(np.argmin(resulting))]
                else:
                    state = self._state(
                        feats[ti],
                        device_costs,
                        device_dims,
                        device_bytes,
                        memory.memory_bytes,
                        total_dim,
                    )
                    logits = policy.forward(state[None, :])[0]
                    logits = np.where(mask, logits, -1e9)
                    logits = logits - logits.max()
                    probs = np.exp(logits)
                    probs /= probs.sum()
                    action = int(self._rng.choice(num_devices, p=probs))
                    steps.append((state, probs, action, mask))

                device_tables[action].append(table)
                device_bytes[action] += t_bytes
                device_dims[action] += table.dim
                device_costs[action] = simulator.device_compute_cost(
                    device_tables[action]
                )
                assignment[ti] = action

            if failed:
                # Episode dead-ended on memory; strongly discourage it.
                objective = np.inf
                reward = -100.0
            else:
                objective = self._objective(simulator, device_tables)
                reward = -objective
                if objective < best_objective:
                    best_objective = objective
                    best_assignment = tuple(assignment)

            if greedy_rollout:
                # Off-policy bootstrap episode: no policy update, but its
                # reward seeds the advantage baseline.
                reward_baseline = reward
                continue
            advantage = reward - reward_baseline
            reward_baseline = 0.9 * reward_baseline + 0.1 * reward

            # REINFORCE: re-run the forward passes and accumulate
            # d(-logp * advantage)/dlogits = (softmax - onehot) * adv.
            optimizer.zero_grad()
            for state, probs, action, mask in steps:
                policy.forward(state[None, :])
                grad = probs.copy()
                grad[action] -= 1.0
                grad *= advantage / max(len(steps), 1)
                grad = np.where(mask, grad, 0.0)
                policy.backward(grad[None, :])
            if steps:
                optimizer.step()

        if best_assignment is None:
            return None
        return assignment_to_plan(best_assignment, num_devices)


class AutoShardSharder(_ReinforceSharder):
    """AutoShard-style RL: balance the predicted computation costs."""

    name = "AutoShard"

    def _objective(
        self,
        simulator: NeuroShardSimulator,
        per_device: list[list[TableConfig]],
    ) -> float:
        costs = simulator.device_compute_costs(per_device)
        max_cost = max(costs)
        if max_cost <= 0:
            return 0.0
        # AutoShard maximizes min/max balance; as a minimized objective we
        # use max_cost * (2 - balance): bottleneck-dominated, tie-broken
        # toward balance.
        balance = min(costs) / max_cost
        return max_cost * (2.0 - balance)


class DreamShardSharder(_ReinforceSharder):
    """DreamShard-style RL: minimize the full predicted embedding cost."""

    name = "DreamShard"

    def _objective(
        self,
        simulator: NeuroShardSimulator,
        per_device: list[list[TableConfig]],
    ) -> float:
        return simulator.plan_cost(per_device).max_cost_ms
