"""The common sharding-algorithm interface."""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.core.plan import ShardingPlan
from repro.data.tasks import ShardingTask

__all__ = ["Sharder", "assignment_to_plan"]


@runtime_checkable
class Sharder(Protocol):
    """Anything that can answer a sharding task.

    Attributes:
        name: display name used by the evaluation reports.
    """

    name: str

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        """Return a memory-legal plan, or ``None`` when the algorithm
        cannot produce one (the paper's "-" outcome)."""
        ...


def assignment_to_plan(
    assignment: Sequence[int],
    num_devices: int,
    column_plan: Sequence[int] = (),
) -> ShardingPlan:
    """Wrap a raw device assignment as a :class:`ShardingPlan`.

    Most baselines are table-wise only, so their ``column_plan`` is
    empty; the production experiment pre-applies NeuroShard's column plan
    and passes it through here (Section 4.5).
    """
    return ShardingPlan(
        column_plan=tuple(column_plan),
        assignment=tuple(assignment),
        num_devices=num_devices,
    )
