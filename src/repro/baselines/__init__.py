"""Baseline sharding algorithms (Section 4 "Baselines" + Appendix E).

Every baseline implements the :class:`~repro.baselines.base.Sharder`
protocol — ``shard(task) -> ShardingPlan | None`` — so the evaluation
harness treats them interchangeably with NeuroShard.  ``None`` means the
algorithm could not produce a memory-legal plan (the "-" entries of
Table 1).

Categories, mirroring the paper:

- **Random** — uniform assignment among memory-feasible devices.
- **Greedy** — sort by a heuristic cost, assign to the least-loaded
  device: size-based, dim-based, lookup-based, size-lookup-based
  (Acun et al., 2021; Lui et al., 2021).
- **Reinforcement learning** — AutoShard-style (computation-balance
  reward) and DreamShard-style (overall-embedding-cost reward) REINFORCE
  sharders; table-wise only, hence prone to OOM on large tables, and
  run-to-run unstable — the deployment problems that motivated
  NeuroShard.
- **Planning** — a TorchRec-style planner: enumerates column-wise
  proposals and allocates greedily, but scores with *heuristic* costs.
- **MILP** — a RecShard-style mixed-integer linear program
  (:mod:`scipy.optimize.milp`) that balances *linear* per-table costs,
  demonstrating what the non-linearity of fused costs (Observation 2)
  does to linear formulations.
- **Linear surrogate** — a SurCo-style sharder (Ferber et al., 2022)
  that learns per-instance linear surrogate costs against the neural
  cost models with zeroth-order optimization; stronger than the fixed
  heuristics, still bounded by the linear inner solver.
"""

from repro.baselines.base import Sharder, assignment_to_plan
from repro.baselines.random_sharding import RandomSharder
from repro.baselines.greedy import (
    GREEDY_COSTS,
    GreedySharder,
    dim_cost,
    lookup_cost,
    size_cost,
    size_lookup_cost,
)
from repro.baselines.planner import PlannerSharder
from repro.baselines.milp import MilpSharder
from repro.baselines.rl import AutoShardSharder, DreamShardSharder
from repro.baselines.surrogate import SurrogateSharder

__all__ = [
    "SurrogateSharder",
    "Sharder",
    "assignment_to_plan",
    "RandomSharder",
    "GreedySharder",
    "GREEDY_COSTS",
    "size_cost",
    "dim_cost",
    "lookup_cost",
    "size_lookup_cost",
    "PlannerSharder",
    "MilpSharder",
    "AutoShardSharder",
    "DreamShardSharder",
]
