"""Greedy heuristic sharders (Appendix E.1).

Each variant gives every table a scalar heuristic cost, sorts tables by
descending cost, and assigns each to the device with the lowest
cost-sum so far (among memory-feasible devices) — the classic
longest-processing-time load-balancing scheme used in production DLRM
systems (Acun et al., 2021; Lui et al., 2021).

The four published cost functions:

- **size-based** — table bytes (reduces OOM risk, correlates with work),
- **dim-based** — table dimension (drives compute and communication),
- **lookup-based** — dimension × mean pooling factor (lookup workload),
- **size-lookup-based** — dimension × pooling factor × table size.

These are exactly the oversimplified linear costs whose inaccuracy
motivates learned cost models: none captures caching, fusion, or the
communication/computation interplay.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import assignment_to_plan
from repro.core.plan import ShardingPlan
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = [
    "size_cost",
    "dim_cost",
    "lookup_cost",
    "size_lookup_cost",
    "GREEDY_COSTS",
    "GreedySharder",
]


def size_cost(table: TableConfig) -> float:
    """Table weight bytes."""
    return float(table.size_bytes)


def dim_cost(table: TableConfig) -> float:
    """Embedding dimension."""
    return float(table.dim)


def lookup_cost(table: TableConfig) -> float:
    """Dimension × mean pooling factor (per-sample lookup workload)."""
    return float(table.dim) * table.pooling_factor


def size_lookup_cost(table: TableConfig) -> float:
    """Dimension × pooling factor × size (Appendix E's comprehensive
    heuristic).  Sizes are rescaled to GB so the product stays finite."""
    return float(table.dim) * table.pooling_factor * (table.size_bytes / 1024**3)


#: Published greedy variants by display name.
GREEDY_COSTS: dict[str, Callable[[TableConfig], float]] = {
    "Size-based": size_cost,
    "Dim-based": dim_cost,
    "Lookup-based": lookup_cost,
    "Size-lookup-based": size_lookup_cost,
}


class GreedySharder:
    """Sorting-enhanced greedy balancing of a heuristic cost.

    Args:
        cost_name: one of :data:`GREEDY_COSTS`, or pass ``cost_fn``.
        cost_fn: custom per-table cost (overrides ``cost_name``).
    """

    def __init__(
        self,
        cost_name: str = "Dim-based",
        cost_fn: Callable[[TableConfig], float] | None = None,
    ) -> None:
        if cost_fn is not None:
            self._cost = cost_fn
            self.name = cost_name
        else:
            if cost_name not in GREEDY_COSTS:
                raise ValueError(
                    f"unknown greedy variant {cost_name!r}; expected one of "
                    f"{sorted(GREEDY_COSTS)}"
                )
            self._cost = GREEDY_COSTS[cost_name]
            self.name = cost_name

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        memory = MemoryModel(task.memory_bytes)
        costs = [self._cost(t) for t in task.tables]
        order = sorted(range(len(costs)), key=lambda i: -costs[i])

        device_cost = [0.0] * task.num_devices
        device_bytes = [0] * task.num_devices
        assignment = [0] * len(costs)
        for ti in order:
            table = task.tables[ti]
            t_bytes = memory.table_bytes(table)
            candidates = [
                d
                for d in range(task.num_devices)
                if device_bytes[d] + t_bytes <= task.memory_bytes
            ]
            if not candidates:
                return None
            best = min(candidates, key=lambda d: device_cost[d])
            device_cost[best] += costs[ti]
            device_bytes[best] += t_bytes
            assignment[ti] = best
        return assignment_to_plan(assignment, task.num_devices)
