"""SurCo-style learned linear surrogate sharder (related work).

SurCo (Ferber et al., 2022 — cited by the paper's related-work section)
solves nonlinear combinatorial problems by *learning linear surrogate
costs*: find per-item weights ``w`` such that the solution of the easy
linear problem (here: greedy balancing of ``sum w_i`` per device, the
same solver the heuristic baselines use) minimizes the true nonlinear
objective ``f`` (here: the simulated embedding cost of the resulting
plan, evaluated on the pre-trained neural cost models).

This implements the on-the-fly ("SurCo-zero") variant with zeroth-order
optimization: the greedy solver is not differentiable, so the weights are
updated by SPSA-style two-point perturbation estimates of
``∇_w f(solve(w))``, keeping the best plan ever seen.  Initialization is
the lookup-based heuristic cost — surrogate learning starts from the best
hand-designed linear proxy and learns per-instance corrections.

Role in the comparison: stronger than the fixed heuristics (it adapts the
linear costs to the instance using the learned cost models) but still
fundamentally limited by the linearity of the inner solver's objective —
it cannot represent the fused-kernel non-linearity of Observation 2 or
split oversized tables, so it inherits the greedy family's OOM behaviour
at large dimensions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import assignment_to_plan
from repro.baselines.greedy import lookup_cost
from repro.config import rng_from_seed
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = ["SurrogateSharder"]


def _greedy_solve(
    tables: Sequence[TableConfig],
    weights: np.ndarray,
    num_devices: int,
    memory: MemoryModel,
) -> tuple[int, ...] | None:
    """The linear inner problem: greedy balance of surrogate weights."""
    order = np.argsort(-weights, kind="stable")
    device_weight = [0.0] * num_devices
    device_bytes = [0] * num_devices
    assignment = [0] * len(tables)
    for ti in order:
        table = tables[ti]
        t_bytes = memory.table_bytes(table)
        candidates = [
            d
            for d in range(num_devices)
            if device_bytes[d] + t_bytes <= memory.memory_bytes
        ]
        if not candidates:
            return None
        best = min(candidates, key=lambda d: device_weight[d])
        device_weight[best] += float(weights[ti])
        device_bytes[best] += t_bytes
        assignment[ti] = best
    return tuple(assignment)


class SurrogateSharder:
    """Per-instance linear-surrogate optimization on neural cost models.

    Args:
        models: pre-trained cost-model bundle (the nonlinear objective).
        iterations: SPSA optimization steps per task.
        step_size: relative step of the weight update.
        perturbation: relative magnitude of the SPSA probe.
        seed: perturbation-stream seed.
    """

    name = "SurCo-surrogate"

    def __init__(
        self,
        models: PretrainedCostModels,
        iterations: int = 40,
        step_size: float = 0.15,
        perturbation: float = 0.1,
        seed: int = 0,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if step_size <= 0 or perturbation <= 0:
            raise ValueError("step_size and perturbation must be > 0")
        self.models = models
        self.iterations = iterations
        self.step_size = step_size
        self.perturbation = perturbation
        self.seed = seed

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        if task.num_devices != self.models.num_devices:
            raise ValueError(
                f"task has {task.num_devices} devices but the cost models "
                f"were pre-trained for {self.models.num_devices}"
            )
        rng = rng_from_seed(self.seed)
        tables = list(task.tables)
        memory = MemoryModel(task.memory_bytes)
        simulator = NeuroShardSimulator(self.models, CostCache())

        def objective(assignment: Sequence[int]) -> float:
            per_device: list[list[TableConfig]] = [
                [] for _ in range(task.num_devices)
            ]
            for ti, d in enumerate(assignment):
                per_device[d].append(tables[ti])
            return simulator.plan_cost(per_device).max_cost_ms

        # Initialize from the best hand-designed linear proxy; work in
        # log-space so multiplicative updates keep weights positive.
        log_w = np.log(
            np.maximum([lookup_cost(t) for t in tables], 1e-6)
        )

        best_assignment = _greedy_solve(
            tables, np.exp(log_w), task.num_devices, memory
        )
        if best_assignment is None:
            # The linear solver cannot place the tables under any
            # weights' *ordering* alone won't fix pure memory overflow;
            # report unscalable like the other greedy baselines.
            return None
        best_cost = objective(best_assignment)

        for _ in range(self.iterations):
            delta = rng.choice([-1.0, 1.0], size=len(tables))
            plus = _greedy_solve(
                tables,
                np.exp(log_w + self.perturbation * delta),
                task.num_devices,
                memory,
            )
            minus = _greedy_solve(
                tables,
                np.exp(log_w - self.perturbation * delta),
                task.num_devices,
                memory,
            )
            if plus is None or minus is None:
                continue
            f_plus = objective(plus)
            f_minus = objective(minus)
            for assignment, cost in ((plus, f_plus), (minus, f_minus)):
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = assignment
            grad = (f_plus - f_minus) / (2.0 * self.perturbation) * delta
            norm = float(np.max(np.abs(grad)))
            if norm > 0 and math.isfinite(norm):
                log_w -= self.step_size * grad / norm

        # One final solve at the learned weights.
        final = _greedy_solve(tables, np.exp(log_w), task.num_devices, memory)
        if final is not None:
            cost = objective(final)
            if cost < best_cost:
                best_cost = cost
                best_assignment = final
        return assignment_to_plan(best_assignment, task.num_devices)
