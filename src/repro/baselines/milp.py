"""RecShard-style MILP baseline (related work; extension experiment).

RecShard (Sethi et al., 2022) formulates embedding placement as a mixed
integer linear program over statistical per-table costs.  The paper's
related-work section points out its blind spot: the MILP requires
*additive* per-table costs, but fused multi-table kernels are sub-additive
and non-linear (Observation 2), so even a provably optimal linear balance
can be noticeably off the true optimum.  This baseline makes that
concrete: it balances the lookup heuristic cost exactly and still loses
to NeuroShard's learned, non-linear costs.

Formulation (variables: binary ``x[t, d]``, continuous bottleneck ``z``):

    minimize    z
    subject to  sum_d x[t, d] = 1                      (each table placed)
                sum_t cost_t * x[t, d] <= z            (bottleneck)
                sum_t bytes_t * x[t, d] <= memory      (per-device memory)

Solved with ``scipy.optimize.milp`` (HiGHS) under a time limit; on
timeout the incumbent is used when HiGHS returns one, otherwise the task
is reported infeasible.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.baselines.base import assignment_to_plan
from repro.baselines.greedy import lookup_cost
from repro.core.plan import ShardingPlan
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = ["MilpSharder"]


class MilpSharder:
    """Mixed-integer bottleneck balancing of linear per-table costs.

    Args:
        time_limit_s: HiGHS wall-clock limit per task.
    """

    name = "MILP"

    def __init__(self, time_limit_s: float = 10.0) -> None:
        if time_limit_s <= 0:
            raise ValueError(f"time_limit_s must be > 0, got {time_limit_s}")
        self.time_limit_s = time_limit_s

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        memory = MemoryModel(task.memory_bytes)
        num_tables = task.num_tables
        num_devices = task.num_devices
        costs = np.array([lookup_cost(t) for t in task.tables])
        table_bytes = np.array([memory.table_bytes(t) for t in task.tables])

        # Variable layout: x[t * D + d] for all tables, then z at the end.
        num_x = num_tables * num_devices
        num_vars = num_x + 1

        # Objective: minimize z.
        c = np.zeros(num_vars)
        c[-1] = 1.0

        rows: list[np.ndarray] = []
        lb_rows: list[float] = []
        ub_rows: list[float] = []

        # Each table on exactly one device.
        for t in range(num_tables):
            row = np.zeros(num_vars)
            row[t * num_devices : (t + 1) * num_devices] = 1.0
            rows.append(row)
            lb_rows.append(1.0)
            ub_rows.append(1.0)

        # Per-device: cost load - z <= 0 and memory load <= budget.
        for d in range(num_devices):
            cost_row = np.zeros(num_vars)
            mem_row = np.zeros(num_vars)
            for t in range(num_tables):
                cost_row[t * num_devices + d] = costs[t]
                mem_row[t * num_devices + d] = table_bytes[t]
            cost_row[-1] = -1.0
            rows.append(cost_row)
            lb_rows.append(-np.inf)
            ub_rows.append(0.0)
            rows.append(mem_row)
            lb_rows.append(-np.inf)
            ub_rows.append(float(task.memory_bytes))

        constraints = optimize.LinearConstraint(
            sparse.csr_matrix(np.stack(rows)), lb_rows, ub_rows
        )
        integrality = np.concatenate([np.ones(num_x), np.zeros(1)])
        bounds = optimize.Bounds(
            lb=np.concatenate([np.zeros(num_x), [0.0]]),
            ub=np.concatenate([np.ones(num_x), [np.inf]]),
        )
        result = optimize.milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options={"time_limit": self.time_limit_s, "disp": False},
        )
        if result.x is None:
            return None
        x = np.asarray(result.x[:num_x]).reshape(num_tables, num_devices)
        assignment = [int(np.argmax(x[t])) for t in range(num_tables)]

        # HiGHS incumbents can be slightly fractional; verify feasibility.
        device_bytes = [0] * num_devices
        for t, d in enumerate(assignment):
            device_bytes[d] += int(table_bytes[t])
        if any(b > task.memory_bytes for b in device_bytes):
            return None
        return assignment_to_plan(assignment, num_devices)
