"""Random sharding baseline.

Assigns each table uniformly at random among the devices that can still
fit it.  Matches the paper's "Random" row: no balancing at all, and
failure ("-") as soon as table sizes grow (Table 1 shows it only scales
to max dimension 8).
"""

from __future__ import annotations

from repro.baselines.base import assignment_to_plan
from repro.config import rng_from_seed
from repro.core.plan import ShardingPlan
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = ["RandomSharder"]


class RandomSharder:
    """Uniform random table-wise sharding.

    Args:
        seed: RNG seed; each :meth:`shard` call advances the stream.
    """

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = rng_from_seed(seed)

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        memory = MemoryModel(task.memory_bytes)
        device_bytes = [0] * task.num_devices
        assignment: list[int] = []
        for table in task.tables:
            t_bytes = memory.table_bytes(table)
            candidates = [
                d
                for d in range(task.num_devices)
                if device_bytes[d] + t_bytes <= task.memory_bytes
            ]
            if not candidates:
                return None
            device = int(self._rng.choice(candidates))
            device_bytes[device] += t_bytes
            assignment.append(device)
        return assignment_to_plan(assignment, task.num_devices)
