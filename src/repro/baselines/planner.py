"""TorchRec-style planning baseline (Appendix E.3).

TorchRec's embedding-sharding planner enumerates per-table sharding
options (including column-wise splits), allocates greedily, and scores
proposals with a closed-form heuristic performance model.  It scales to
every setting in Table 1 — column splits let it satisfy memory — but its
heuristic costs ignore caching and kernel fusion, so NeuroShard's learned
costs beat it everywhere.

This reproduction enumerates proposals by *target maximum dimension*:
for each target, every table is column-split until its dimension is at or
below the target, then tables are greedily balanced on the heuristic
compute cost under the memory budget.  Proposals are scored with the
heuristic end-to-end cost (max over devices of heuristic compute plus a
bandwidth-model communication term), and the best-scoring feasible
proposal wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import assignment_to_plan
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware.memory import MemoryModel

__all__ = ["PlannerSharder"]

#: Candidate target maximum dimensions for column-split proposals.
_TARGET_DIMS = (128, 64, 32, 16, 8, 4)

#: Heuristic effective bandwidths of the closed-form perf model
#: (bytes/ms); deliberately crude, as in TorchRec's planner.
_HEURISTIC_COMPUTE_BW = 2.0e8
_HEURISTIC_COMM_BW = 6.0e6
#: Fixed per-table kernel overhead of the perf model (ms).  Without it
#: the planner would split without bound — column shards would look free.
_HEURISTIC_TABLE_OVERHEAD_MS = 0.4


def _heuristic_compute_ms(table: TableConfig, batch_size: int) -> float:
    """Closed-form per-table compute estimate: bytes moved / bandwidth
    plus a fixed per-table overhead."""
    traffic = table.pooling_factor * batch_size * table.dim * table.bytes_per_element
    return traffic / _HEURISTIC_COMPUTE_BW + _HEURISTIC_TABLE_OVERHEAD_MS


def _heuristic_comm_ms(device_dim: int, batch_size: int) -> float:
    """Closed-form per-device all-to-all estimate."""
    return device_dim * batch_size * 4.0 / _HEURISTIC_COMM_BW


def _split_to_target(tables: list[TableConfig], target_dim: int) -> tuple[int, ...]:
    """Column plan that brings every table's dimension to <= target."""
    working = list(tables)
    plan: list[int] = []
    index = 0
    while index < len(working):
        table = working[index]
        if table.dim > target_dim and table.can_halve:
            first, second = table.halved()
            working[index] = first
            working.append(second)
            plan.append(index)
            # Re-check the same index: it may still exceed the target.
            continue
        index += 1
    return tuple(plan)


@dataclass(frozen=True)
class _Proposal:
    column_plan: tuple[int, ...]
    assignment: tuple[int, ...]
    score: float


class PlannerSharder:
    """Heuristic-cost planner with column-wise proposal enumeration.

    Args:
        batch_size: batch size assumed by the heuristic perf model.
    """

    name = "TorchRec"

    def __init__(self, batch_size: int = 65536) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def shard(self, task: ShardingTask) -> ShardingPlan | None:
        memory = MemoryModel(task.memory_bytes)
        best: _Proposal | None = None
        for target in _TARGET_DIMS:
            if target > task.max_dim:
                # A target above every table's dimension is identical to
                # the no-split proposal at target == max_dim.
                continue
            column_plan = _split_to_target(list(task.tables), target)
            sharded = apply_column_plan(task.tables, column_plan)
            assignment = self._allocate(sharded, task.num_devices, memory)
            if assignment is None:
                continue
            score = self._score(sharded, assignment, task.num_devices)
            if best is None or score < best.score:
                best = _Proposal(column_plan, assignment, score)
        if best is None:
            return None
        return assignment_to_plan(
            best.assignment, task.num_devices, column_plan=best.column_plan
        )

    # ------------------------------------------------------------------

    def _allocate(
        self,
        tables: list[TableConfig],
        num_devices: int,
        memory: MemoryModel,
    ) -> tuple[int, ...] | None:
        """Greedy balance of heuristic compute under the memory budget."""
        costs = [_heuristic_compute_ms(t, self.batch_size) for t in tables]
        order = sorted(range(len(tables)), key=lambda i: -costs[i])
        device_cost = [0.0] * num_devices
        device_bytes = [0] * num_devices
        assignment = [0] * len(tables)
        for ti in order:
            t_bytes = memory.table_bytes(tables[ti])
            candidates = [
                d
                for d in range(num_devices)
                if device_bytes[d] + t_bytes <= memory.memory_bytes
            ]
            if not candidates:
                return None
            best = min(candidates, key=lambda d: device_cost[d])
            device_cost[best] += costs[ti]
            device_bytes[best] += t_bytes
            assignment[ti] = best
        return tuple(assignment)

    def _score(
        self,
        tables: list[TableConfig],
        assignment: tuple[int, ...],
        num_devices: int,
    ) -> float:
        """Heuristic end-to-end cost: max device compute + comm."""
        device_compute = [0.0] * num_devices
        device_dims = [0] * num_devices
        for table, d in zip(tables, assignment):
            device_compute[d] += _heuristic_compute_ms(table, self.batch_size)
            device_dims[d] += table.dim
        return max(
            device_compute[d] + _heuristic_comm_ms(device_dims[d], self.batch_size)
            for d in range(num_devices)
        )
