"""The sharding simulator ``f(c, t)`` built on pre-trained cost models.

The simulated embedding cost of a plan is the max over devices of

    compute_d + forward_comm_d + backward_comm_d

(Section 3.3: "summing up the predicted computation, forward
communication, and backward communication costs").  The communication
models take per-device starting timestamps; during search the observable
proxy for a device's collective start time is its predicted computation
cost (the trace analysis of Section 2 shows compute imbalance is what
skews collective starts), so the simulator feeds the predicted compute
costs as the start times of both collectives.

All computation-cost predictions flow through the
:class:`~repro.core.cache.CostCache`; batch lookups collect the uncached
device sets and predict them in one forward pass.

Two fast paths serve the search hot loop:

- :meth:`NeuroShardSimulator.device_compute_costs_keyed` takes
  *pre-built* canonical keys and per-table feature-row lists, so the
  greedy allocator's incrementally-maintained device state skips the
  per-candidate key re-sort and re-featurization entirely;
- :meth:`NeuroShardSimulator.single_table_costs` memoizes per table
  ``uid`` for the simulator's lifetime (one search request), so the beam
  search's repeated candidate rankings cost one dict lookup per table.

Both paths return bit-identical values to the general
:meth:`NeuroShardSimulator.device_compute_costs` route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cache import CostCache
from repro.costmodel.comm_model import comm_features
from repro.costmodel.features import TableFeaturizer
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig, table_set_key
from repro.perf import SearchProfile

__all__ = ["PlanCost", "NeuroShardSimulator"]


@dataclass(frozen=True)
class PlanCost:
    """Simulated per-device cost breakdown of one placement."""

    compute_ms: tuple[float, ...]
    fwd_comm_ms: tuple[float, ...]
    bwd_comm_ms: tuple[float, ...]

    @property
    def device_costs_ms(self) -> tuple[float, ...]:
        return tuple(
            c + f + b
            for c, f, b in zip(self.compute_ms, self.fwd_comm_ms, self.bwd_comm_ms)
        )

    @property
    def max_cost_ms(self) -> float:
        """The simulated embedding cost ``f(c, t)``."""
        return max(self.device_costs_ms)


class NeuroShardSimulator:
    """Cost-model-backed simulator used by the online search.

    Args:
        models: the pre-trained bundle.
        cache: the lifelong computation-cost cache; a fresh enabled cache
            is created when omitted.
        profile: optional :class:`~repro.perf.SearchProfile` recording
            prediction-batch counters; ``None`` (the default) keeps the
            hot path uninstrumented.
    """

    def __init__(
        self,
        models: PretrainedCostModels,
        cache: CostCache | None = None,
        profile: SearchProfile | None = None,
    ) -> None:
        self.models = models
        self.cache = cache if cache is not None else CostCache()
        self.profile = profile
        # Per-simulator (i.e. per-search-request) memo layers.  Both are
        # disabled alongside the cost cache so the "w/o caching" ablation
        # measures a genuinely memo-free search.
        self._single_cost_by_uid: dict[str, float] = {}
        self._plan_cost_by_key: dict[
            tuple[tuple[str, ...], ...], PlanCost
        ] = {}

    @property
    def num_devices(self) -> int:
        return self.models.num_devices

    @property
    def featurizer(self) -> TableFeaturizer:
        """The bundle's featurizer (row cache shared with the search)."""
        return self.models.featurizer

    # ------------------------------------------------------------------
    # computation-cost prediction (cached)
    # ------------------------------------------------------------------

    def device_compute_cost(self, tables: Sequence[TableConfig]) -> float:
        """Predicted fused-kernel cost of one device's table set."""
        return self.device_compute_costs([tables])[0]

    def device_compute_costs(
        self, table_sets: Sequence[Sequence[TableConfig]]
    ) -> list[float]:
        """Batched, cached prediction over several device table sets."""
        costs: list[float | None] = []
        missing_indices: list[int] = []
        missing_keys = []
        for i, tables in enumerate(table_sets):
            if len(tables) == 0:
                costs.append(0.0)
                continue
            key = table_set_key(tables)
            cached = self.cache.get(key)
            costs.append(cached)
            if cached is None:
                missing_indices.append(i)
                missing_keys.append(key)
        if missing_indices:
            matrices = [
                self.models.featurizer.features_matrix(list(table_sets[i]))
                for i in missing_indices
            ]
            self._predict_missing(costs, missing_indices, missing_keys, matrices)
        return [float(c) for c in costs]  # type: ignore[arg-type]

    def device_compute_costs_keyed(
        self,
        entries: Sequence[
            tuple[
                tuple[str, ...],
                Sequence[np.ndarray],
                np.ndarray | None,
            ]
        ],
    ) -> list[float]:
        """Cached predictions from pre-built keys and feature rows.

        Args:
            entries: per candidate set, a triple of

                - its canonical :func:`~repro.data.table.table_set_key`
                  (maintained incrementally by the caller),
                - the device's existing per-table feature rows *in
                  placement order* (the order tables were added), and
                - optionally one more feature row, logically appended —
                  the candidate table being scored.  Passing it
                  separately lets the greedy allocator score ``base +
                  table`` without copying the base list per candidate.

        The row order matches what :meth:`device_compute_costs` would
        have stacked for the same set, so predictions are bit-identical.
        This is the greedy allocator's fast path: no key sorting, no uid
        materialization, no featurization — only cache lookups plus one
        flat-stacked forward pass over the misses.
        """
        costs: list[float | None] = []
        missing_indices: list[int] = []
        missing_keys: list[tuple[str, ...]] = []
        for i, (key, base_rows, extra_row) in enumerate(entries):
            if not base_rows and extra_row is None:
                costs.append(0.0)
                continue
            cached = self.cache.get(key)
            costs.append(cached)
            if cached is None:
                missing_indices.append(i)
                missing_keys.append(key)
        if missing_indices:
            # One flat row matrix for all misses: concatenating the 1-D
            # rows and reshaping equals the row-wise concatenation of
            # the per-set np.stack matrices, so predictions are
            # bit-identical to the general matrix route — without
            # per-set stacking.
            flat_rows: list[np.ndarray] = []
            lengths: list[int] = []
            for i in missing_indices:
                _, base_rows, extra_row = entries[i]
                flat_rows.extend(base_rows)
                n = len(base_rows)
                if extra_row is not None:
                    flat_rows.append(extra_row)
                    n += 1
                lengths.append(n)
            num_features = flat_rows[0].shape[-1]
            rows_matrix = np.concatenate(flat_rows).reshape(-1, num_features)
            segments = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
            predictions = self.models.compute.predict_rows(
                rows_matrix, segments, len(lengths)
            )
            self._store_predictions(
                costs, missing_indices, missing_keys, predictions
            )
        return costs  # type: ignore[return-value]

    def supports_batch_scoring(self) -> bool:
        """Whether the bundle's featurizer exposes the feature bank.

        The batched scoring path gathers candidate matrices straight
        from :class:`~repro.costmodel.features.TableFeaturizer`'s
        preallocated bank by integer row id; featurizers without that
        API (e.g. the feature-ablation wrapper) fall back to the
        sequential per-candidate route.
        """
        featurizer = self.models.featurizer
        return hasattr(featurizer, "row_indices") and hasattr(featurizer, "gather")

    def device_compute_costs_batch(
        self,
        entries: Sequence[tuple[tuple[str, ...], Sequence[int], int | None]],
    ) -> list[float]:
        """Frontier-level batched predictions from bank row ids.

        The lockstep search enumerates every candidate placement of a
        whole grid pass / beam frontier into ``entries`` and this method
        assembles **one** flat feature matrix — a single fancy-index
        gather from the featurizer bank — and makes a single
        ``predict_rows`` call for all cache misses.

        Args:
            entries: per candidate set, a triple of

                - its canonical :func:`~repro.data.table.table_set_key`,
                - the device's feature-bank row ids *in placement
                  order*, and
                - optionally one more row id, logically appended — the
                  candidate table being scored.

        Duplicate missing keys inside one call are predicted once and
        fanned out (recorded as external cache hits — the sequential
        route would have cache-served the repeats); with the cache
        disabled every entry is predicted, keeping the "w/o caching"
        ablation honest about its prediction volume.  Values are
        bit-identical to the sequential keyed route: same placement-order
        rows, same chunk-stable kernel.
        """
        costs: list[float | None] = []
        missing_indices: list[int] = []
        missing_keys: list[tuple[str, ...]] = []
        first_missing: dict[tuple[str, ...], int] | None = (
            {} if self.cache.enabled else None
        )
        dup_serves: list[tuple[int, int]] = []
        for i, (key, base_ids, extra_id) in enumerate(entries):
            if not base_ids and extra_id is None:
                costs.append(0.0)
                continue
            if first_missing is not None:
                j = first_missing.get(key)
                if j is not None:
                    costs.append(None)
                    dup_serves.append((i, j))
                    continue
            cached = self.cache.get(key)
            costs.append(cached)
            if cached is None:
                missing_indices.append(i)
                missing_keys.append(key)
                if first_missing is not None:
                    first_missing[key] = i
        if missing_indices:
            flat_ids: list[int] = []
            lengths: list[int] = []
            for i in missing_indices:
                _, base_ids, extra_id = entries[i]
                flat_ids.extend(base_ids)
                n = len(base_ids)
                if extra_id is not None:
                    flat_ids.append(extra_id)
                    n += 1
                lengths.append(n)
            rows_matrix = self.models.featurizer.gather(
                np.asarray(flat_ids, dtype=np.intp)
            )
            segments = np.repeat(
                np.arange(len(lengths), dtype=np.int64), lengths
            )
            predictions = self.models.compute.predict_rows(
                rows_matrix, segments, len(lengths)
            )
            self._store_predictions(
                costs, missing_indices, missing_keys, predictions
            )
            if self.profile is not None:
                self.profile.observe("predict_rows_per_batch", len(flat_ids))
                self.profile.observe("predict_sets_per_batch", len(lengths))
        if dup_serves:
            for i, j in dup_serves:
                costs[i] = costs[j]
            self.cache.record_external_hits(len(dup_serves))
            if self.profile is not None:
                self.profile.count("batch_dedup_hits", len(dup_serves))
        return costs  # type: ignore[return-value]

    def _predict_missing(
        self,
        costs: list[float | None],
        missing_indices: list[int],
        missing_keys: Sequence[tuple[str, ...]],
        matrices: Sequence[np.ndarray],
    ) -> None:
        """One stacked forward pass over the cache misses."""
        predictions = self.models.compute.predict_many(matrices)
        self._store_predictions(costs, missing_indices, missing_keys, predictions)

    def _store_predictions(
        self,
        costs: list[float | None],
        missing_indices: list[int],
        missing_keys: Sequence[tuple[str, ...]],
        predictions: np.ndarray,
    ) -> None:
        """Shared miss-handling tail of both prediction routes: floor,
        cache, fill, count — one place so the keyed fast path can never
        drift from the general route."""
        # The true cost is positive; a tiny floor also keeps greedy
        # comparisons meaningful when the model extrapolates low.
        predictions = np.maximum(predictions, 1e-3)
        for i, key, value in zip(missing_indices, missing_keys, predictions):
            self.cache.put(key, float(value))
            costs[i] = float(value)
        if self.profile is not None:
            self.profile.count("predict_batches")
            self.profile.count("predicted_sets", len(missing_indices))

    def single_table_costs(
        self, tables: Sequence[TableConfig]
    ) -> np.ndarray:
        """Predicted isolated cost of each table (used for sorting and
        for the beam search's "top-N costly" candidates).

        Memoized per table ``uid`` for this simulator's lifetime: the
        beam search ranks candidates of near-identical table lists on
        every expansion, so repeat lookups skip the cost cache's key
        construction entirely.  Memo hits are recorded as cache hits
        (:meth:`~repro.core.cache.CostCache.record_external_hits`) to
        keep hit-rate diagnostics comparable.
        """
        memo = self._single_cost_by_uid if self.cache.enabled else None
        out = np.empty(len(tables), dtype=np.float64)
        pending_indices: list[int] = []
        pending_tables: list[TableConfig] = []
        for i, table in enumerate(tables):
            if memo is not None:
                cost = memo.get(table.uid)
                if cost is not None:
                    out[i] = cost
                    continue
            pending_indices.append(i)
            pending_tables.append(table)
        if pending_indices:
            costs = self.device_compute_costs([[t] for t in pending_tables])
            for i, table, cost in zip(pending_indices, pending_tables, costs):
                out[i] = cost
                if memo is not None:
                    memo[table.uid] = cost
        served = len(tables) - len(pending_indices)
        if served:
            self.cache.record_external_hits(served)
            if self.profile is not None:
                self.profile.count("single_cost_memo_hits", served)
        return out

    # ------------------------------------------------------------------
    # full plan cost
    # ------------------------------------------------------------------

    def plan_cost(
        self, per_device_tables: Sequence[Sequence[TableConfig]]
    ) -> PlanCost:
        """Simulated cost breakdown of a placement ``f(c, t)``."""
        if len(per_device_tables) != self.num_devices:
            raise ValueError(
                f"placement has {len(per_device_tables)} devices, models are "
                f"for {self.num_devices}"
            )
        compute = self.device_compute_costs(per_device_tables)
        dims = [sum(t.dim for t in dev) for dev in per_device_tables]
        return self._comm_breakdown(compute, dims)

    def plan_cost_keyed(
        self,
        device_keys: Sequence[Sequence[str]],
        device_rows: Sequence[Sequence[np.ndarray]],
        device_dims: Sequence[int],
    ) -> PlanCost:
        """:meth:`plan_cost` from the greedy allocator's incremental
        per-device state, memoized on the exact placement.

        Adjacent grid points frequently converge to the same assignment;
        the memo (keyed on the ordered tuple of per-device canonical
        keys, which fully determines the breakdown) serves those repeats
        without re-running the communication models.  Compute lookups a
        memo hit skips are recorded as cache hits to keep hit-rate
        diagnostics comparable with the recompute-from-scratch path.

        Only called with an enabled cost cache (the caller falls back to
        :meth:`plan_cost` for the "w/o caching" ablation, preserving its
        stacking order); device compute costs are then cache-served from
        the greedy pass that just built the placement, so the breakdown
        is bit-identical to rebuilding the table lists.
        """
        if len(device_keys) != self.num_devices:
            raise ValueError(
                f"placement has {len(device_keys)} devices, models are "
                f"for {self.num_devices}"
            )
        placement_key = tuple(tuple(k) for k in device_keys)
        hit = self._plan_cost_by_key.get(placement_key)
        if hit is not None:
            nonempty = sum(1 for k in placement_key if k)
            if nonempty:
                self.cache.record_external_hits(nonempty)
            if self.profile is not None:
                self.profile.count("plan_cost_memo_hits")
            return hit
        compute = self.device_compute_costs_keyed(
            [(key, rows, None) for key, rows in zip(placement_key, device_rows)]
        )
        breakdown = self._comm_breakdown(compute, list(device_dims))
        self._plan_cost_by_key[placement_key] = breakdown
        return breakdown

    def plan_costs_keyed_batch(
        self,
        items: Sequence[
            tuple[
                Sequence[Sequence[str]],
                Sequence[Sequence[int]],
                Sequence[int],
            ]
        ],
    ) -> list[PlanCost]:
        """Batched :meth:`plan_cost_keyed` over many placements.

        The lockstep search finalizes every surviving grid pass / beam
        frontier member at once: placement-memo lookups run first, the
        remaining placements' device sets flow through **one**
        :meth:`device_compute_costs_batch` call, and both communication
        models score all placements in one ``predict_batch`` each.
        Bit-identical to calling :meth:`plan_cost_keyed` per placement
        in order (same memo, same chunk-stable kernels); only called
        with an enabled cost cache, like :meth:`plan_cost_keyed`.

        Args:
            items: per placement, ``(device_keys, device_row_ids,
                device_dims)`` with the featurizer-bank row ids of each
                device's tables in placement order.
        """
        out: list[PlanCost | None] = [None] * len(items)
        pending: list[int] = []
        pending_keys: list[tuple[tuple[str, ...], ...]] = []
        first_pending: dict[tuple[tuple[str, ...], ...], int] = {}
        dup_serves: list[tuple[int, int]] = []
        for i, (device_keys, _, _) in enumerate(items):
            if len(device_keys) != self.num_devices:
                raise ValueError(
                    f"placement has {len(device_keys)} devices, models are "
                    f"for {self.num_devices}"
                )
            placement_key = tuple(tuple(k) for k in device_keys)
            hit = self._plan_cost_by_key.get(placement_key)
            if hit is not None:
                nonempty = sum(1 for k in placement_key if k)
                if nonempty:
                    self.cache.record_external_hits(nonempty)
                if self.profile is not None:
                    self.profile.count("plan_cost_memo_hits")
                out[i] = hit
                continue
            j = first_pending.get(placement_key)
            if j is not None:
                # Same placement appears twice before it is memoized;
                # sequential order would memo-serve the second call.
                nonempty = sum(1 for k in placement_key if k)
                if nonempty:
                    self.cache.record_external_hits(nonempty)
                if self.profile is not None:
                    self.profile.count("plan_cost_memo_hits")
                dup_serves.append((i, j))
                continue
            first_pending[placement_key] = i
            pending.append(i)
            pending_keys.append(placement_key)
        if pending:
            entries: list[tuple[tuple[str, ...], Sequence[int], int | None]] = []
            for i, placement_key in zip(pending, pending_keys):
                _, device_row_ids, _ = items[i]
                entries.extend(
                    (key, row_ids, None)
                    for key, row_ids in zip(placement_key, device_row_ids)
                )
            flat_compute = self.device_compute_costs_batch(entries)
            d = self.num_devices
            computes = [
                flat_compute[n * d : (n + 1) * d] for n in range(len(pending))
            ]
            breakdowns = self._comm_breakdowns(
                computes, [list(items[i][2]) for i in pending]
            )
            for i, placement_key, breakdown in zip(
                pending, pending_keys, breakdowns
            ):
                self._plan_cost_by_key[placement_key] = breakdown
                out[i] = breakdown
        for i, j in dup_serves:
            out[i] = out[j]
        return out  # type: ignore[return-value]

    def _comm_breakdowns(
        self,
        computes: Sequence[Sequence[float]],
        dims_list: Sequence[Sequence[int]],
    ) -> list[PlanCost]:
        """Batched :meth:`_comm_breakdown`: one stacked forward per
        direction for all placements (chunk-stable, so each row equals
        its single-placement prediction bitwise)."""
        starts_list = []
        rows = np.empty(
            (len(computes), 2 * self.num_devices), dtype=np.float64
        )
        for n, (compute, dims) in enumerate(zip(computes, dims_list)):
            min_compute = min(compute)
            starts = [c - min_compute for c in compute]
            starts_list.append(starts)
            rows[n] = comm_features(dims, starts, self.models.batch_size)
        fwd = np.maximum(self.models.forward_comm.predict_batch(rows), 0.0)
        bwd = np.maximum(self.models.backward_comm.predict_batch(rows), 0.0)
        return [
            PlanCost(
                compute_ms=tuple(compute),
                fwd_comm_ms=tuple(float(x) for x in fwd[n]),
                bwd_comm_ms=tuple(float(x) for x in bwd[n]),
            )
            for n, compute in enumerate(computes)
        ]

    def _comm_breakdown(
        self, compute: Sequence[float], dims: Sequence[int]
    ) -> PlanCost:
        """Attach communication costs to per-device compute predictions."""
        # Compute imbalance is what skews collective starts; only the
        # relative skew matters, so anchor at zero (the comm models are
        # trained on zero-anchored skews).
        min_compute = min(compute)
        starts = [c - min_compute for c in compute]
        fwd = self.models.forward_comm.predict(dims, starts, self.models.batch_size)
        bwd = self.models.backward_comm.predict(dims, starts, self.models.batch_size)
        fwd = np.maximum(fwd, 0.0)
        bwd = np.maximum(bwd, 0.0)
        return PlanCost(
            compute_ms=tuple(compute),
            fwd_comm_ms=tuple(float(x) for x in fwd),
            bwd_comm_ms=tuple(float(x) for x in bwd),
        )
