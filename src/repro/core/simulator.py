"""The sharding simulator ``f(c, t)`` built on pre-trained cost models.

The simulated embedding cost of a plan is the max over devices of

    compute_d + forward_comm_d + backward_comm_d

(Section 3.3: "summing up the predicted computation, forward
communication, and backward communication costs").  The communication
models take per-device starting timestamps; during search the observable
proxy for a device's collective start time is its predicted computation
cost (the trace analysis of Section 2 shows compute imbalance is what
skews collective starts), so the simulator feeds the predicted compute
costs as the start times of both collectives.

All computation-cost predictions flow through the
:class:`~repro.core.cache.CostCache`; batch lookups collect the uncached
device sets and predict them in one forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cache import CostCache
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig, table_set_key

__all__ = ["PlanCost", "NeuroShardSimulator"]


@dataclass(frozen=True)
class PlanCost:
    """Simulated per-device cost breakdown of one placement."""

    compute_ms: tuple[float, ...]
    fwd_comm_ms: tuple[float, ...]
    bwd_comm_ms: tuple[float, ...]

    @property
    def device_costs_ms(self) -> tuple[float, ...]:
        return tuple(
            c + f + b
            for c, f, b in zip(self.compute_ms, self.fwd_comm_ms, self.bwd_comm_ms)
        )

    @property
    def max_cost_ms(self) -> float:
        """The simulated embedding cost ``f(c, t)``."""
        return max(self.device_costs_ms)


class NeuroShardSimulator:
    """Cost-model-backed simulator used by the online search.

    Args:
        models: the pre-trained bundle.
        cache: the lifelong computation-cost cache; a fresh enabled cache
            is created when omitted.
    """

    def __init__(
        self,
        models: PretrainedCostModels,
        cache: CostCache | None = None,
    ) -> None:
        self.models = models
        self.cache = cache if cache is not None else CostCache()

    @property
    def num_devices(self) -> int:
        return self.models.num_devices

    # ------------------------------------------------------------------
    # computation-cost prediction (cached)
    # ------------------------------------------------------------------

    def device_compute_cost(self, tables: Sequence[TableConfig]) -> float:
        """Predicted fused-kernel cost of one device's table set."""
        return self.device_compute_costs([tables])[0]

    def device_compute_costs(
        self, table_sets: Sequence[Sequence[TableConfig]]
    ) -> list[float]:
        """Batched, cached prediction over several device table sets."""
        costs: list[float | None] = []
        missing_indices: list[int] = []
        missing_keys = []
        for i, tables in enumerate(table_sets):
            if len(tables) == 0:
                costs.append(0.0)
                continue
            key = table_set_key(tables)
            cached = self.cache.get(key)
            costs.append(cached)
            if cached is None:
                missing_indices.append(i)
                missing_keys.append(key)
        if missing_indices:
            matrices = [
                self.models.featurizer.features_matrix(list(table_sets[i]))
                for i in missing_indices
            ]
            predictions = self.models.compute.predict_many(matrices)
            # The true cost is positive; a tiny floor also keeps greedy
            # comparisons meaningful when the model extrapolates low.
            predictions = np.maximum(predictions, 1e-3)
            for i, key, value in zip(missing_indices, missing_keys, predictions):
                self.cache.put(key, float(value))
                costs[i] = float(value)
        return [float(c) for c in costs]  # type: ignore[arg-type]

    def single_table_costs(
        self, tables: Sequence[TableConfig]
    ) -> np.ndarray:
        """Predicted isolated cost of each table (used for sorting and
        for the beam search's "top-N costly" candidates)."""
        return np.array(self.device_compute_costs([[t] for t in tables]))

    # ------------------------------------------------------------------
    # full plan cost
    # ------------------------------------------------------------------

    def plan_cost(
        self, per_device_tables: Sequence[Sequence[TableConfig]]
    ) -> PlanCost:
        """Simulated cost breakdown of a placement ``f(c, t)``."""
        if len(per_device_tables) != self.num_devices:
            raise ValueError(
                f"placement has {len(per_device_tables)} devices, models are "
                f"for {self.num_devices}"
            )
        compute = self.device_compute_costs(per_device_tables)
        dims = [sum(t.dim for t in dev) for dev in per_device_tables]
        # Compute imbalance is what skews collective starts; only the
        # relative skew matters, so anchor at zero (the comm models are
        # trained on zero-anchored skews).
        min_compute = min(compute)
        starts = [c - min_compute for c in compute]
        fwd = self.models.forward_comm.predict(dims, starts, self.models.batch_size)
        bwd = self.models.backward_comm.predict(dims, starts, self.models.batch_size)
        fwd = np.maximum(fwd, 0.0)
        bwd = np.maximum(bwd, 0.0)
        return PlanCost(
            compute_ms=tuple(compute),
            fwd_comm_ms=tuple(float(x) for x in fwd),
            bwd_comm_ms=tuple(float(x) for x in bwd),
        )
