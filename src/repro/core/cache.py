"""Lifelong computation-cost cache (Section 3.3, "Implementation with
caching").

The search's dominant cost is computation-cost prediction: the model is
queried ``O(L K N M T D)`` times, but small plan perturbations re-query
the same device table sets over and over.  Keys are the canonical
table-multiset keys from :func:`repro.data.table.table_set_key`, so two
cost-identical device contents share an entry.  The paper reports a >95%
hit rate (Table 3), which the full-search benchmark reproduces.

Long-lived engine processes (:class:`repro.api.engine.ShardingEngine`)
share one cache across every request, so the cache optionally runs in a
bounded LRU mode (``max_entries``): least-recently-used entries are
evicted once the bound is hit.  The default stays unbounded — the paper's
lifelong hash map — so paper-mode hit rates are unaffected.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["CostCache"]


class CostCache:
    """A hit-rate-instrumented memo table for predicted costs.

    Args:
        enabled: when ``False`` every lookup misses (the "w/o caching"
            ablation of Table 3) but statistics are still recorded.
        max_entries: optional LRU bound on stored entries; ``None``
            (the default) keeps the cache unbounded.  Bounded caches are
            safe to share across threads: every store access *and* every
            statistics update happens under one lock, so concurrent
            lookups always satisfy ``hits + misses == lookups``.
            Unbounded caches rely on the GIL's atomic dict operations,
            keeping the paper-mode hot path lock-free.
    """

    def __init__(
        self, enabled: bool = True, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.enabled = enabled
        self.max_entries = max_entries
        self._store: OrderedDict[Hashable, float] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> float | None:
        """Look up a predicted cost; records the hit/miss.

        Locking scheme: in bounded mode *every* statistics update happens
        under the lock together with the store access — miss counting
        included, so concurrent lookups can never lose increments or
        observe ``hits + misses != lookups``.  Unbounded (paper) mode
        stays lock-free on the GIL's atomic dict operations.
        """
        if self.max_entries is None:
            if self.enabled:
                value = self._store.get(key)
                if value is not None:
                    self._hits += 1
                    return value
            self._misses += 1
            return None
        with self._lock:
            if self.enabled:
                value = self._store.get(key)
                if value is not None:
                    self._store.move_to_end(key)
                    self._hits += 1
                    return value
            self._misses += 1
            return None

    def put(self, key: Hashable, value: float) -> None:
        """Store a predicted cost (no-op when disabled)."""
        if not self.enabled:
            return
        if self.max_entries is None:
            self._store[key] = float(value)
            return
        with self._lock:
            self._store[key] = float(value)
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self._evictions += 1

    def record_external_hits(self, n: int = 1) -> None:
        """Count ``n`` lookups served by an upstream memo on this cache's
        behalf.

        The search keeps tiny per-request memo layers (e.g. single-table
        costs by uid) in front of the cache; pre-optimization, those
        lookups all reached the cache and were recorded as hits.  Routing
        the bookkeeping here keeps reported hit rates comparable across
        the optimization *for those per-lookup memos*.  The compensation
        is deliberately not extended to the coarser short-circuits — a
        beam-search plan-memo hit or a greedy-grid ``dim_bound`` skip
        avoids an entire grid search whose would-be lookups (a
        workload-dependent mix the skip never enumerates) simply do not
        happen — so on duplicate-heavy workloads the reported hit rate
        can drift from the pre-optimization search's figure even though
        every served *result* is identical.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if self.max_entries is None:
            self._hits += n
        else:
            with self._lock:
                self._hits += n

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound (0 when unbounded)."""
        return self._evictions

    @property
    def lookups(self) -> int:
        return self._hits + self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.lookups
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop entries and statistics."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
