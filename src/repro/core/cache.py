"""Lifelong computation-cost cache (Section 3.3, "Implementation with
caching").

The search's dominant cost is computation-cost prediction: the model is
queried ``O(L K N M T D)`` times, but small plan perturbations re-query
the same device table sets over and over.  Keys are the canonical
table-multiset keys from :func:`repro.data.table.table_set_key`, so two
cost-identical device contents share an entry.  The paper reports a >95%
hit rate (Table 3), which the full-search benchmark reproduces.
"""

from __future__ import annotations

from typing import Hashable

__all__ = ["CostCache"]


class CostCache:
    """A hit-rate-instrumented memo table for predicted costs.

    Args:
        enabled: when ``False`` every lookup misses (the "w/o caching"
            ablation of Table 3) but statistics are still recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._store: dict[Hashable, float] = {}
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> float | None:
        """Look up a predicted cost; records the hit/miss."""
        if self.enabled:
            value = self._store.get(key)
            if value is not None:
                self._hits += 1
                return value
        self._misses += 1
        return None

    def put(self, key: Hashable, value: float) -> None:
        """Store a predicted cost (no-op when disabled)."""
        if self.enabled:
            self._store[key] = float(value)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def lookups(self) -> int:
        return self._hits + self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.lookups
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop entries and statistics."""
        self._store.clear()
        self._hits = 0
        self._misses = 0
