"""NeuroShard core: sharding plans and the online search (Section 3.3).

The search minimizes the *simulated* embedding cost ``f(c, t)`` over a
column-wise sharding plan ``c`` (outer loop, beam search — Algorithm 1)
and a table-wise plan ``t`` (inner loop, greedy allocation under a
grid-searched max-device-dimension constraint — Algorithm 2), with a
lifelong computation-cost cache.

Public API:

- :mod:`~repro.core.plan` — plan representations and legality.
- :class:`~repro.core.cache.CostCache` — the global cache with hit-rate
  statistics (Table 3's caching ablation).
- :class:`~repro.core.simulator.NeuroShardSimulator` — ``f(c, t)`` from
  the pre-trained cost models.
- :func:`~repro.core.greedy_grid.greedy_grid_search` — Algorithm 2.
- :func:`~repro.core.beam_search.beam_search` — Algorithm 1.
- :class:`~repro.core.sharder.NeuroShard` — the end-to-end facade
  (pre-train once, shard any task).
- :mod:`~repro.core.reference` — the frozen pre-optimization search,
  kept as the equivalence oracle and performance baseline for the
  incremental/memoized hot path.
"""

from repro.core.plan import (
    ShardingPlan,
    apply_column_plan,
    column_plan_is_legal,
    split_candidates,
)
from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator, PlanCost
from repro.core.greedy_grid import GridSearchResult, greedy_grid_search
from repro.core.beam_search import BeamSearchResult, beam_search
from repro.core.reference import (
    reference_beam_search,
    reference_greedy_grid_search,
)
from repro.core.sharder import NeuroShard, ShardingResult

__all__ = [
    "ShardingPlan",
    "apply_column_plan",
    "column_plan_is_legal",
    "split_candidates",
    "CostCache",
    "NeuroShardSimulator",
    "PlanCost",
    "GridSearchResult",
    "greedy_grid_search",
    "BeamSearchResult",
    "beam_search",
    "reference_beam_search",
    "reference_greedy_grid_search",
    "NeuroShard",
    "ShardingResult",
]
