"""Sharding-plan persistence and checkpoint-consistency checks.

Section 3.2's deployment notes: a training job must resume with *the
same* sharding plan it started with (embedding weights are sharded on
disk accordingly), so plans are version-controlled artifacts tied to
their cost-model version and to the exact table list they were computed
for.  This module serializes plans as JSON with a fingerprint of the
task's tables; loading verifies the fingerprint so a plan can never be
silently applied to a drifted table list.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Sequence

from repro.core.plan import ShardingPlan
from repro.data.table import TableConfig

__all__ = ["PlanCheckpoint", "save_plan", "load_plan", "task_fingerprint"]

#: Bump on incompatible layout changes.
_FORMAT_VERSION = 1


def task_fingerprint(tables: Sequence[TableConfig]) -> str:
    """Order-sensitive digest of a task's table list.

    Order matters: the plan's assignment is positional, so a permuted
    table list is a *different* task even with identical contents.
    """
    h = hashlib.blake2b(digest_size=16)
    for t in tables:
        h.update(t.uid.encode("utf-8"))
        h.update(b"|")
        h.update(str(t.bytes_per_element).encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class PlanCheckpoint:
    """A plan plus the metadata needed to validate it on resume.

    Attributes:
        plan: the sharding plan.
        fingerprint: digest of the table list the plan was computed for.
        cost_model_version: free-form tag of the cost-model bundle used
            (e.g. a bundle directory name or hash), per Section 3.2's
            "strict version control".
    """

    plan: ShardingPlan
    fingerprint: str
    cost_model_version: str = ""


def save_plan(
    plan: ShardingPlan,
    tables: Sequence[TableConfig],
    path: str | os.PathLike,
    cost_model_version: str = "",
) -> None:
    """Write a plan checkpoint for the task defined by ``tables``."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "fingerprint": task_fingerprint(tables),
        "cost_model_version": cost_model_version,
        "num_devices": plan.num_devices,
        "column_plan": list(plan.column_plan),
        "assignment": list(plan.assignment),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def load_plan(
    path: str | os.PathLike,
    tables: Sequence[TableConfig] | None = None,
) -> PlanCheckpoint:
    """Load a plan checkpoint; verify it matches ``tables`` if given.

    Raises:
        ValueError: wrong format version, malformed payload, or (when
            ``tables`` is provided) fingerprint mismatch — the resume-
            safety check.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"plan checkpoint version {version!r} != supported {_FORMAT_VERSION}"
        )
    try:
        plan = ShardingPlan(
            column_plan=tuple(int(c) for c in payload["column_plan"]),
            assignment=tuple(int(a) for a in payload["assignment"]),
            num_devices=int(payload["num_devices"]),
        )
        fingerprint = str(payload["fingerprint"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed plan checkpoint {path}: {exc}") from exc
    if tables is not None:
        actual = task_fingerprint(tables)
        if actual != fingerprint:
            raise ValueError(
                "plan checkpoint does not match the task: table list "
                f"fingerprint {actual} != checkpoint {fingerprint}; the "
                "tables changed since the plan was computed (re-shard "
                "instead of resuming)"
            )
    return PlanCheckpoint(
        plan=plan,
        fingerprint=fingerprint,
        cost_model_version=str(payload.get("cost_model_version", "")),
    )
