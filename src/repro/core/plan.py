"""Sharding-plan representation and legality (Section 3.3).

A full sharding plan is the pair ``(c, t)``:

- the **column-wise plan** ``c = [c_1, ..., c_m]``: in step ``i`` the
  table at index ``c_i`` of the *current* table list is split into two
  half-dimension shards; the first shard replaces the original in place
  and the second is appended to the end of the list (the paper's "append
  the resultant new table to the end of the table list");
- the **table-wise plan** ``t = [t_1, ..., t_{T'}]`` assigning each of
  the ``T' = T + m`` column-sharded tables to a device.

Legality: every dimension must stay a multiple of 4 (FBGEMM), which
:meth:`~repro.data.table.TableConfig.halved` enforces, and the placement
must satisfy per-device memory (checked by the hardware's
:class:`~repro.hardware.memory.MemoryModel` at evaluation time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.table import TableConfig

__all__ = [
    "apply_column_plan",
    "column_plan_is_legal",
    "split_candidates",
    "ShardingPlan",
]


def apply_column_plan(
    tables: Sequence[TableConfig], column_plan: Sequence[int]
) -> list[TableConfig]:
    """Materialize the table list after applying ``column_plan``.

    Raises:
        IndexError: if a step references a table index that does not
            exist at that step.
        ValueError: if a step would split a table below the minimum
            dimension.
    """
    working = list(tables)
    for step, index in enumerate(column_plan):
        if not 0 <= index < len(working):
            raise IndexError(
                f"column plan step {step} references table {index}, but only "
                f"{len(working)} tables exist at that step"
            )
        first, second = working[index].halved()
        working[index] = first
        working.append(second)
    return working


def column_plan_is_legal(
    tables: Sequence[TableConfig], column_plan: Sequence[int]
) -> bool:
    """Non-raising legality check of a column-wise plan."""
    try:
        apply_column_plan(tables, column_plan)
    except (IndexError, ValueError):
        return False
    return True


def split_candidates(tables: Sequence[TableConfig]) -> list[int]:
    """Indices of tables that can legally be column-halved."""
    return [i for i, t in enumerate(tables) if t.can_halve]


@dataclass(frozen=True)
class ShardingPlan:
    """A complete (column-wise, table-wise) sharding decision.

    Attributes:
        column_plan: the split sequence ``c`` (indices into the evolving
            table list).
        assignment: device id per column-sharded table, aligned with
            :func:`apply_column_plan`'s output order.
        num_devices: the device count the assignment targets.
    """

    column_plan: tuple[int, ...]
    assignment: tuple[int, ...]
    num_devices: int

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        for t in self.assignment:
            if not 0 <= t < self.num_devices:
                raise ValueError(
                    f"assignment targets device {t}, valid range is "
                    f"0..{self.num_devices - 1}"
                )

    @property
    def num_splits(self) -> int:
        return len(self.column_plan)

    def sharded_tables(
        self, base_tables: Sequence[TableConfig]
    ) -> list[TableConfig]:
        """The post-column-sharding table list this plan assigns."""
        sharded = apply_column_plan(base_tables, self.column_plan)
        if len(sharded) != len(self.assignment):
            raise ValueError(
                f"assignment covers {len(self.assignment)} tables but the "
                f"column plan produces {len(sharded)}"
            )
        return sharded

    def shard_identities(
        self, base_tables: Sequence[TableConfig]
    ) -> list[tuple[str, int, int, int]]:
        """``(uid, occurrence, device, size_bytes)`` per placed shard.

        The shard identity convention shared by the plan-diff layer and
        the validation layer: shards are keyed by cost-identity
        (:attr:`~repro.data.table.TableConfig.uid`) plus occurrence rank
        among uid-equal shards (the two halves of a column split share a
        uid and are distinguished by rank, in assignment order).
        """
        seen: dict[str, int] = {}
        entries: list[tuple[str, int, int, int]] = []
        for table, device in zip(
            self.sharded_tables(base_tables), self.assignment
        ):
            rank = seen.get(table.uid, 0)
            seen[table.uid] = rank + 1
            entries.append((table.uid, rank, device, table.size_bytes))
        return entries

    def per_device_tables(
        self, base_tables: Sequence[TableConfig]
    ) -> list[list[TableConfig]]:
        """Group the sharded tables by assigned device — the layout the
        hardware executes."""
        sharded = self.sharded_tables(base_tables)
        per_device: list[list[TableConfig]] = [
            [] for _ in range(self.num_devices)
        ]
        for table, device in zip(sharded, self.assignment):
            per_device[device].append(table)
        return per_device

    def device_dims(self, base_tables: Sequence[TableConfig]) -> list[int]:
        """Per-device dimension sums under this plan."""
        return [
            sum(t.dim for t in dev) for dev in self.per_device_tables(base_tables)
        ]
