"""Table-wise sharding: greedy allocation + grid search (Algorithm 2).

Given a (column-sharded) table list, the inner loop finds the table-wise
plan ``t``:

1. Sort tables by predicted single-table computation cost, descending.
2. For each ``max_dim`` on a grid from ``Ms`` (the average device
   dimension) to ``Me = 1.5 * Ms`` (``M`` points):
   greedily assign each table to the *cheapest* candidate device, where
   candidates are devices that stay within the memory budget and whose
   device dimension stays within ``max_dim``, and "cheapest" means the
   lowest predicted computation cost with the table added (cache-served).
3. Score each completed assignment with the full simulated embedding
   cost ``f(c, t)`` and keep the best.

The ``max_dim`` constraint is how Observation 3 enters the search: it
bounds the max device dimension, which controls the communication
bottleneck, while the greedy objective balances the non-linear
computation costs (Observation 2).

**Incremental hot loop.**  The greedy allocator is the innermost layer of
the whole search (``O(L K N M T D)`` candidate evaluations), so it keeps
*running per-device state* instead of recomputing from scratch:

- table uids, feature rows, byte sizes and dimensions are materialized
  once per grid search and shared across all ``M`` grid passes;
- each device carries an incrementally-maintained sorted uid list, so a
  candidate's canonical cache key is one binary-search splice
  (:func:`~repro.data.table.extend_table_set_key`) instead of an
  ``O(n log n)`` re-sort over re-materialized uids;
- each device carries its feature rows in placement order, so a cache
  miss stacks cached row references instead of re-featurizing the set;
- all uncached candidates of a step are scored in one stacked
  ``predict_many`` call (:meth:`~repro.core.simulator.NeuroShardSimulator
  .device_compute_costs_keyed`).

The results are bit-identical to the recompute-from-scratch reference
(:mod:`repro.core.reference`): same keys, same stacked matrices in the
same row order, same tie-breaking.

Deviation from the paper (documented): when *every* grid point is
infeasible — e.g. one table's dimension alone exceeds ``Me`` — we fall
back to an unconstrained greedy pass (``max_dim = ∞``) so that the inner
loop only reports infeasible when memory genuinely cannot accommodate the
tables.  The paper's text leaves this case unspecified; without the
fallback, beam search would be forced to column-split purely to satisfy
an artificial dimension bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SearchConfig
from repro.core.simulator import NeuroShardSimulator, PlanCost
from repro.data.table import TableConfig, extend_table_set_key, insort_uid
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile, maybe_stage

__all__ = ["GridSearchResult", "greedy_grid_search"]


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of the inner loop for one column-sharded table list.

    Attributes:
        feasible: a memory-legal assignment exists.
        cost_ms: simulated embedding cost of the best assignment
            (``inf`` when infeasible).
        assignment: device per table (aligned with the input order),
            empty when infeasible.
        max_dim_used: the grid value that produced the best assignment
            (``None`` for the unconstrained fallback or infeasible).
        breakdown: per-device simulated costs of the best assignment.
        overflow_bytes: for infeasible results, how far oversized tables
            exceed a single device's budget in total.  The beam search
            uses this to rank equally-infeasible plans: among plans that
            cannot be placed at all, the one closer to fitting (smaller
            overflow) should survive, otherwise the beam has no signal
            pointing at the tables that must be split.
    """

    feasible: bool
    cost_ms: float
    assignment: tuple[int, ...]
    max_dim_used: float | None
    breakdown: PlanCost | None
    overflow_bytes: float = 0.0

    @staticmethod
    def infeasible(overflow_bytes: float = math.inf) -> "GridSearchResult":
        return GridSearchResult(
            feasible=False,
            cost_ms=math.inf,
            assignment=(),
            max_dim_used=None,
            breakdown=None,
            overflow_bytes=overflow_bytes,
        )

    @property
    def beam_key(self) -> tuple[float, float]:
        """Sort key for the beam: cost first, feasibility progress second."""
        return (self.cost_ms, self.overflow_bytes)


@dataclass
class _GreedyPass:
    """Outcome of one greedy pass, carrying its incremental device state.

    ``assignment`` is ``None`` when some table had no candidate device.
    ``dim_bound_hit`` records whether the ``max_dim`` constraint ever
    excluded a device: when it never did, any pass with a *larger*
    ``max_dim`` is guaranteed to replay the identical trajectory (same
    candidate sets at every step, by induction), so the caller can skip
    the rest of the grid outright.
    """

    assignment: tuple[int, ...] | None
    device_keys: list[list[str]]
    device_rows: list[list[np.ndarray]]
    device_dims: list[int]
    dim_bound_hit: bool


def _greedy_assign(
    order: np.ndarray,
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory_bytes: int,
    max_dim: float,
    uids: Sequence[str],
    rows: Sequence[np.ndarray],
    table_bytes: Sequence[int],
    dims: Sequence[int],
    profile: SearchProfile | None = None,
) -> _GreedyPass:
    """One greedy pass under a ``max_dim`` constraint.

    Operates on pre-materialized per-table state (``uids``, feature
    ``rows``, ``table_bytes``, ``dims`` — computed once per grid search)
    and maintains incremental per-device state, so scoring a candidate
    device costs one key splice and one cache lookup.
    """
    device_keys: list[list[str]] = [[] for _ in range(num_devices)]
    device_rows: list[list[np.ndarray]] = [[] for _ in range(num_devices)]
    device_bytes = [0] * num_devices
    device_dims = [0] * num_devices
    assignment: list[int] | None = [0] * len(uids)
    dim_bound_hit = False
    steps = 0
    scored = 0

    for ti in order:
        steps += 1
        t_bytes = table_bytes[ti]
        t_dim = dims[ti]
        candidates = []
        for d in range(num_devices):
            if device_bytes[d] + t_bytes > memory_bytes:
                continue
            if device_dims[d] + t_dim > max_dim:
                dim_bound_hit = True
                continue
            candidates.append(d)
        if not candidates:
            assignment = None
            break
        uid = uids[ti]
        row = rows[ti]
        # Cheapest resulting device per the computation cost model; the
        # keyed batch call predicts all uncached candidate sets at once.
        entries = [
            (extend_table_set_key(device_keys[d], uid), device_rows[d], row)
            for d in candidates
        ]
        costs = simulator.device_compute_costs_keyed(entries)
        scored += len(candidates)
        best = candidates[min(range(len(costs)), key=costs.__getitem__)]
        insort_uid(device_keys[best], uid)
        device_rows[best].append(row)
        device_bytes[best] += t_bytes
        device_dims[best] += t_dim
        assignment[ti] = best
    if profile is not None:
        profile.count("greedy_steps", steps)
        profile.count("scored_candidates", scored)
    return _GreedyPass(
        assignment=None if assignment is None else tuple(assignment),
        device_keys=device_keys,
        device_rows=device_rows,
        device_dims=device_dims,
        dim_bound_hit=dim_bound_hit,
    )


def greedy_grid_search(
    tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
    profile: SearchProfile | None = None,
) -> GridSearchResult:
    """Algorithm 2: find the best table-wise plan for ``tables``.

    With ``config.use_grid_search`` disabled, a single unconstrained
    greedy pass runs instead (the "w/o greedy grid search" ablation).
    """
    config = config or SearchConfig()
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if len(tables) == 0:
        raise ValueError("cannot shard an empty table list")

    singles = simulator.single_table_costs(tables)
    order = np.argsort(-singles, kind="stable")

    # Per-table state shared by every grid pass: uids, cached feature
    # rows, memory footprints and dimensions are materialized exactly
    # once per grid search instead of per candidate evaluation.
    uids = [t.uid for t in tables]
    rows = simulator.featurizer.features_rows(tables)
    table_bytes = [memory.table_bytes(t) for t in tables]
    dims = [t.dim for t in tables]
    max_table_dim = max(dims)

    # How far this table list is from being placeable at all: tables
    # larger than one device can never fit, however they are assigned.
    overflow = float(
        sum(max(0, b - memory.memory_bytes) for b in table_bytes)
    )

    if config.use_grid_search:
        avg_dim = sum(dims) / num_devices
        ms = max(avg_dim, 1.0)
        me = config.grid_end_factor * ms
        if config.grid_points == 1:
            grid: list[float] = [ms]
        else:
            grid = list(np.linspace(ms, me, config.grid_points))
        grid.append(math.inf)  # unconstrained fallback, tried last
    else:
        grid = [math.inf]

    best = GridSearchResult.infeasible(overflow)
    for grid_index, max_dim in enumerate(grid):
        if math.isfinite(max_dim) and max_table_dim > max_dim:
            continue  # no single table could be placed; skip early
        with maybe_stage(profile, "greedy_assign"):
            if profile is not None:
                profile.count("grid_passes")
            gpass = _greedy_assign(
                order,
                num_devices,
                simulator,
                memory.memory_bytes,
                max_dim,
                uids,
                rows,
                table_bytes,
                dims,
                profile=profile,
            )
        if gpass.assignment is not None:
            with maybe_stage(profile, "plan_cost"):
                if simulator.cache.enabled:
                    # Reuse the pass's incremental device state; repeated
                    # placements (adjacent grid points frequently produce
                    # the same assignment) are memo-served.
                    breakdown = simulator.plan_cost_keyed(
                        gpass.device_keys, gpass.device_rows, gpass.device_dims
                    )
                else:
                    per_device: list[list[TableConfig]] = [
                        [] for _ in range(num_devices)
                    ]
                    for ti, d in enumerate(gpass.assignment):
                        per_device[d].append(tables[ti])
                    breakdown = simulator.plan_cost(per_device)
            cost = breakdown.max_cost_ms
            if cost < best.cost_ms:
                best = GridSearchResult(
                    feasible=True,
                    cost_ms=cost,
                    assignment=gpass.assignment,
                    max_dim_used=None if math.isinf(max_dim) else float(max_dim),
                    breakdown=breakdown,
                )
        if not gpass.dim_bound_hit:
            # The dimension bound never excluded a device, so every
            # remaining (larger) grid point — the ∞ fallback included —
            # would replay this exact trajectory.  Skip it.
            if profile is not None:
                profile.count("grid_passes_skipped", len(grid) - 1 - grid_index)
            break
    return best
