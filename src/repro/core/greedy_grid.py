"""Table-wise sharding: greedy allocation + grid search (Algorithm 2).

Given a (column-sharded) table list, the inner loop finds the table-wise
plan ``t``:

1. Sort tables by predicted single-table computation cost, descending.
2. For each ``max_dim`` on a grid from ``Ms`` (the average device
   dimension) to ``Me = 1.5 * Ms`` (``M`` points):
   greedily assign each table to the *cheapest* candidate device, where
   candidates are devices that stay within the memory budget and whose
   device dimension stays within ``max_dim``, and "cheapest" means the
   lowest predicted computation cost with the table added (cache-served).
3. Score each completed assignment with the full simulated embedding
   cost ``f(c, t)`` and keep the best.

The ``max_dim`` constraint is how Observation 3 enters the search: it
bounds the max device dimension, which controls the communication
bottleneck, while the greedy objective balances the non-linear
computation costs (Observation 2).

Deviation from the paper (documented): when *every* grid point is
infeasible — e.g. one table's dimension alone exceeds ``Me`` — we fall
back to an unconstrained greedy pass (``max_dim = ∞``) so that the inner
loop only reports infeasible when memory genuinely cannot accommodate the
tables.  The paper's text leaves this case unspecified; without the
fallback, beam search would be forced to column-split purely to satisfy
an artificial dimension bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SearchConfig
from repro.core.simulator import NeuroShardSimulator, PlanCost
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel

__all__ = ["GridSearchResult", "greedy_grid_search"]


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of the inner loop for one column-sharded table list.

    Attributes:
        feasible: a memory-legal assignment exists.
        cost_ms: simulated embedding cost of the best assignment
            (``inf`` when infeasible).
        assignment: device per table (aligned with the input order),
            empty when infeasible.
        max_dim_used: the grid value that produced the best assignment
            (``None`` for the unconstrained fallback or infeasible).
        breakdown: per-device simulated costs of the best assignment.
        overflow_bytes: for infeasible results, how far oversized tables
            exceed a single device's budget in total.  The beam search
            uses this to rank equally-infeasible plans: among plans that
            cannot be placed at all, the one closer to fitting (smaller
            overflow) should survive, otherwise the beam has no signal
            pointing at the tables that must be split.
    """

    feasible: bool
    cost_ms: float
    assignment: tuple[int, ...]
    max_dim_used: float | None
    breakdown: PlanCost | None
    overflow_bytes: float = 0.0

    @staticmethod
    def infeasible(overflow_bytes: float = math.inf) -> "GridSearchResult":
        return GridSearchResult(
            feasible=False,
            cost_ms=math.inf,
            assignment=(),
            max_dim_used=None,
            breakdown=None,
            overflow_bytes=overflow_bytes,
        )

    @property
    def beam_key(self) -> tuple[float, float]:
        """Sort key for the beam: cost first, feasibility progress second."""
        return (self.cost_ms, self.overflow_bytes)


def _greedy_assign(
    tables: Sequence[TableConfig],
    order: np.ndarray,
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    max_dim: float,
) -> tuple[int, ...] | None:
    """One greedy pass under a ``max_dim`` constraint.

    Returns the assignment or ``None`` when some table has no candidate
    device.
    """
    device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
    device_bytes = [0] * num_devices
    device_dims = [0] * num_devices
    assignment = [0] * len(tables)

    for ti in order:
        table = tables[ti]
        t_bytes = memory.table_bytes(table)
        candidates = [
            d
            for d in range(num_devices)
            if device_bytes[d] + t_bytes <= memory.memory_bytes
            and device_dims[d] + table.dim <= max_dim
        ]
        if not candidates:
            return None
        # Cheapest resulting device per the computation cost model; the
        # batched call predicts all uncached candidate sets at once.
        resulting = [device_tables[d] + [table] for d in candidates]
        costs = simulator.device_compute_costs(resulting)
        best = candidates[int(np.argmin(costs))]
        device_tables[best].append(table)
        device_bytes[best] += t_bytes
        device_dims[best] += table.dim
        assignment[ti] = best
    return tuple(assignment)


def greedy_grid_search(
    tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
) -> GridSearchResult:
    """Algorithm 2: find the best table-wise plan for ``tables``.

    With ``config.use_grid_search`` disabled, a single unconstrained
    greedy pass runs instead (the "w/o greedy grid search" ablation).
    """
    config = config or SearchConfig()
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if len(tables) == 0:
        raise ValueError("cannot shard an empty table list")

    singles = simulator.single_table_costs(tables)
    order = np.argsort(-singles, kind="stable")

    # How far this table list is from being placeable at all: tables
    # larger than one device can never fit, however they are assigned.
    overflow = float(
        sum(
            max(0, memory.table_bytes(t) - memory.memory_bytes)
            for t in tables
        )
    )

    if config.use_grid_search:
        avg_dim = sum(t.dim for t in tables) / num_devices
        ms = max(avg_dim, 1.0)
        me = config.grid_end_factor * ms
        if config.grid_points == 1:
            grid: list[float] = [ms]
        else:
            grid = list(np.linspace(ms, me, config.grid_points))
        grid.append(math.inf)  # unconstrained fallback, tried last
    else:
        grid = [math.inf]

    best = GridSearchResult.infeasible(overflow)
    for max_dim in grid:
        if math.isfinite(max_dim) and max(t.dim for t in tables) > max_dim:
            continue  # no single table could be placed; skip early
        assignment = _greedy_assign(
            tables, order, num_devices, simulator, memory, max_dim
        )
        if assignment is None:
            continue
        per_device: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        for ti, d in enumerate(assignment):
            per_device[d].append(tables[ti])
        breakdown = simulator.plan_cost(per_device)
        cost = breakdown.max_cost_ms
        if cost < best.cost_ms:
            best = GridSearchResult(
                feasible=True,
                cost_ms=cost,
                assignment=assignment,
                max_dim_used=None if math.isinf(max_dim) else float(max_dim),
                breakdown=breakdown,
            )
    return best
