"""Table-wise sharding: greedy allocation + grid search (Algorithm 2).

Given a (column-sharded) table list, the inner loop finds the table-wise
plan ``t``:

1. Sort tables by predicted single-table computation cost, descending.
2. For each ``max_dim`` on a grid from ``Ms`` (the average device
   dimension) to ``Me = 1.5 * Ms`` (``M`` points):
   greedily assign each table to the *cheapest* candidate device, where
   candidates are devices that stay within the memory budget and whose
   device dimension stays within ``max_dim``, and "cheapest" means the
   lowest predicted computation cost with the table added (cache-served).
3. Score each completed assignment with the full simulated embedding
   cost ``f(c, t)`` and keep the best.

The ``max_dim`` constraint is how Observation 3 enters the search: it
bounds the max device dimension, which controls the communication
bottleneck, while the greedy objective balances the non-linear
computation costs (Observation 2).

**Incremental hot loop.**  The greedy allocator is the innermost layer of
the whole search (``O(L K N M T D)`` candidate evaluations), so it keeps
*running per-device state* instead of recomputing from scratch:

- table uids, feature rows, byte sizes and dimensions are materialized
  once per grid search and shared across all ``M`` grid passes;
- each device carries an incrementally-maintained sorted uid list, so a
  candidate's canonical cache key is one binary-search splice
  (:func:`~repro.data.table.extend_table_set_key`) instead of an
  ``O(n log n)`` re-sort over re-materialized uids;
- each device carries its feature rows in placement order, so a cache
  miss stacks cached row references instead of re-featurizing the set;
- all uncached candidates of a step are scored in one stacked
  ``predict_many`` call (:meth:`~repro.core.simulator.NeuroShardSimulator
  .device_compute_costs_keyed`).

**Batched lockstep scoring** (``use_batch_scoring``, the default).  The
grid's ``M`` passes are run as *trajectory groups* in lockstep: all grid
points start as one group (identical empty history), each step scores
the union of the group's candidate devices in a single flat
``predict_rows`` gather+forward
(:meth:`~repro.core.simulator.NeuroShardSimulator
.device_compute_costs_batch`), and a group splits only when members
choose different devices — so identical trajectories are scored once
(which subsumes the sequential path's redundant-grid-point early
break).  Device state is held as integer row ids into the featurizer's
preallocated feature bank; surviving assignments are finalized with one
batched plan-cost call.  With the cache ablated every grid point is its
own group scoring exactly its own mask — the "w/o caching" ablation
keeps its honest prediction volume.

The results are bit-identical to the recompute-from-scratch reference
(:mod:`repro.core.reference`): same keys, same tie-breaking, and —
because inference GEMMs are chunk-stable and segment pooling sums in
canonical content order (:mod:`repro.costmodel.kernels`) — the same
bits regardless of how candidates are merged into batches.

Deviation from the paper (documented): when *every* grid point is
infeasible — e.g. one table's dimension alone exceeds ``Me`` — we fall
back to an unconstrained greedy pass (``max_dim = ∞``) so that the inner
loop only reports infeasible when memory genuinely cannot accommodate the
tables.  The paper's text leaves this case unspecified; without the
fallback, beam search would be forced to column-split purely to satisfy
an artificial dimension bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SearchConfig
from repro.core.simulator import NeuroShardSimulator, PlanCost
from repro.data.table import TableConfig, extend_table_set_key, insort_uid
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile, maybe_stage

__all__ = ["GridSearchResult", "greedy_grid_search"]


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of the inner loop for one column-sharded table list.

    Attributes:
        feasible: a memory-legal assignment exists.
        cost_ms: simulated embedding cost of the best assignment
            (``inf`` when infeasible).
        assignment: device per table (aligned with the input order),
            empty when infeasible.
        max_dim_used: the grid value that produced the best assignment
            (``None`` for the unconstrained fallback or infeasible).
        breakdown: per-device simulated costs of the best assignment.
        overflow_bytes: for infeasible results, how far oversized tables
            exceed a single device's budget in total.  The beam search
            uses this to rank equally-infeasible plans: among plans that
            cannot be placed at all, the one closer to fitting (smaller
            overflow) should survive, otherwise the beam has no signal
            pointing at the tables that must be split.
    """

    feasible: bool
    cost_ms: float
    assignment: tuple[int, ...]
    max_dim_used: float | None
    breakdown: PlanCost | None
    overflow_bytes: float = 0.0

    @staticmethod
    def infeasible(overflow_bytes: float = math.inf) -> "GridSearchResult":
        return GridSearchResult(
            feasible=False,
            cost_ms=math.inf,
            assignment=(),
            max_dim_used=None,
            breakdown=None,
            overflow_bytes=overflow_bytes,
        )

    @property
    def beam_key(self) -> tuple[float, float]:
        """Sort key for the beam: cost first, feasibility progress second."""
        return (self.cost_ms, self.overflow_bytes)


@dataclass
class _GreedyPass:
    """Outcome of one greedy pass, carrying its incremental device state.

    ``assignment`` is ``None`` when some table had no candidate device.
    ``dim_bound_hit`` records whether the ``max_dim`` constraint ever
    excluded a device: when it never did, any pass with a *larger*
    ``max_dim`` is guaranteed to replay the identical trajectory (same
    candidate sets at every step, by induction), so the caller can skip
    the rest of the grid outright.
    """

    assignment: tuple[int, ...] | None
    device_keys: list[list[str]]
    device_rows: list[list[np.ndarray]]
    device_dims: list[int]
    dim_bound_hit: bool


def _greedy_assign(
    order: np.ndarray,
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory_bytes: int,
    max_dim: float,
    uids: Sequence[str],
    rows: Sequence[np.ndarray],
    table_bytes: Sequence[int],
    dims: Sequence[int],
    profile: SearchProfile | None = None,
) -> _GreedyPass:
    """One greedy pass under a ``max_dim`` constraint.

    Operates on pre-materialized per-table state (``uids``, feature
    ``rows``, ``table_bytes``, ``dims`` — computed once per grid search)
    and maintains incremental per-device state, so scoring a candidate
    device costs one key splice and one cache lookup.
    """
    device_keys: list[list[str]] = [[] for _ in range(num_devices)]
    device_rows: list[list[np.ndarray]] = [[] for _ in range(num_devices)]
    device_bytes = [0] * num_devices
    device_dims = [0] * num_devices
    assignment: list[int] | None = [0] * len(uids)
    dim_bound_hit = False
    steps = 0
    scored = 0

    for ti in order:
        steps += 1
        t_bytes = table_bytes[ti]
        t_dim = dims[ti]
        candidates = []
        for d in range(num_devices):
            if device_bytes[d] + t_bytes > memory_bytes:
                continue
            if device_dims[d] + t_dim > max_dim:
                dim_bound_hit = True
                continue
            candidates.append(d)
        if not candidates:
            assignment = None
            break
        uid = uids[ti]
        row = rows[ti]
        # Cheapest resulting device per the computation cost model; the
        # keyed batch call predicts all uncached candidate sets at once.
        entries = [
            (extend_table_set_key(device_keys[d], uid), device_rows[d], row)
            for d in candidates
        ]
        costs = simulator.device_compute_costs_keyed(entries)
        scored += len(candidates)
        best = candidates[min(range(len(costs)), key=costs.__getitem__)]
        insort_uid(device_keys[best], uid)
        device_rows[best].append(row)
        device_bytes[best] += t_bytes
        device_dims[best] += t_dim
        assignment[ti] = best
    if profile is not None:
        profile.count("greedy_steps", steps)
        profile.count("scored_candidates", scored)
    return _GreedyPass(
        assignment=None if assignment is None else tuple(assignment),
        device_keys=device_keys,
        device_rows=device_rows,
        device_dims=device_dims,
        dim_bound_hit=dim_bound_hit,
    )


@dataclass
class _PassGroup:
    """One shared greedy trajectory in the lockstep batched search.

    ``members`` are the grid indices whose passes have made identical
    device choices at every step so far.  Shared history implies shared
    per-device state, so the group carries exactly one copy of it;
    members only separate (:meth:`clone_for`) at a step where different
    ``max_dim`` thresholds lead to different chosen devices.
    """

    members: list[int]
    device_keys: list[list[str]]
    device_row_ids: list[list[int]]
    device_bytes: list[int]
    device_dims: list[int]
    assignment: list[int]
    breakdown: PlanCost | None = None

    @staticmethod
    def initial(members: list[int], num_devices: int, num_tables: int) -> "_PassGroup":
        return _PassGroup(
            members=members,
            device_keys=[[] for _ in range(num_devices)],
            device_row_ids=[[] for _ in range(num_devices)],
            device_bytes=[0] * num_devices,
            device_dims=[0] * num_devices,
            assignment=[0] * num_tables,
        )

    def clone_for(self, members: list[int]) -> "_PassGroup":
        return _PassGroup(
            members=members,
            device_keys=[list(k) for k in self.device_keys],
            device_row_ids=[list(r) for r in self.device_row_ids],
            device_bytes=list(self.device_bytes),
            device_dims=list(self.device_dims),
            assignment=list(self.assignment),
        )

    def place(
        self, d: int, ti: int, uid: str, row_id: int, t_bytes: int, t_dim: int
    ) -> None:
        insort_uid(self.device_keys[d], uid)
        self.device_row_ids[d].append(row_id)
        self.device_bytes[d] += t_bytes
        self.device_dims[d] += t_dim
        self.assignment[ti] = d


class _GridInstance:
    """One inner-loop request (one sharded table list) in batched form.

    The batched search drives many instances — all grid passes of one
    :func:`greedy_grid_search` call, or a whole beam frontier's worth of
    them — in *lockstep*: every active instance advances one
    table-placement step per round, and the candidate scoring of all
    groups of all instances lands in a single
    :meth:`~repro.core.simulator.NeuroShardSimulator
    .device_compute_costs_batch` call per round.

    With the cost cache enabled all grid points start as one trajectory
    group (their histories are trivially identical) and only split when
    their ``max_dim`` thresholds force different device choices — the
    grouping subsumes the sequential path's ``dim_bound_hit`` early
    break, because a never-splitting grid collapses to one trajectory.
    With the cache disabled every grid point runs as its own group and
    scores exactly its own candidate mask, so the "w/o caching" ablation
    performs the same prediction volume as the sequential ablation.
    """

    __slots__ = (
        "tables",
        "num_devices",
        "memory_bytes",
        "order",
        "uids",
        "row_ids",
        "table_bytes",
        "dims",
        "grid",
        "overflow",
        "groups",
        "step",
        "num_steps",
    )

    def __init__(
        self,
        tables: Sequence[TableConfig],
        num_devices: int,
        simulator: NeuroShardSimulator,
        memory: MemoryModel,
        config: SearchConfig,
        profile: SearchProfile | None = None,
    ) -> None:
        self.tables = tables
        self.num_devices = num_devices
        self.memory_bytes = memory.memory_bytes

        singles = simulator.single_table_costs(tables)
        self.order = np.argsort(-singles, kind="stable")
        self.uids = [t.uid for t in tables]
        self.row_ids: list[int] = simulator.featurizer.row_indices(tables).tolist()
        self.table_bytes = [memory.table_bytes(t) for t in tables]
        self.dims = [t.dim for t in tables]
        max_table_dim = max(self.dims)
        self.overflow = float(
            sum(max(0, b - self.memory_bytes) for b in self.table_bytes)
        )

        if config.use_grid_search:
            avg_dim = sum(self.dims) / num_devices
            ms = max(avg_dim, 1.0)
            me = config.grid_end_factor * ms
            if config.grid_points == 1:
                grid: list[float] = [ms]
            else:
                grid = list(np.linspace(ms, me, config.grid_points))
            grid.append(math.inf)  # unconstrained fallback, tried last
        else:
            grid = [math.inf]
        # Runnable grid points only (same early skip as the sequential
        # path); the ∞ fallback is always runnable, so this never empties.
        self.grid = [
            g for g in grid if not (math.isfinite(g) and max_table_dim > g)
        ]

        self.step = 0
        self.num_steps = len(tables)
        if simulator.cache.enabled:
            self.groups = [
                _PassGroup.initial(
                    list(range(len(self.grid))), num_devices, self.num_steps
                )
            ]
        else:
            self.groups = [
                _PassGroup.initial([gi], num_devices, self.num_steps)
                for gi in range(len(self.grid))
            ]
        if profile is not None:
            profile.count("grid_passes", len(self.grid))

    @property
    def active(self) -> bool:
        return bool(self.groups) and self.step < self.num_steps

    def result(self, profile: SearchProfile | None = None) -> GridSearchResult:
        """Fold the finalized groups back into the sequential result.

        Replays the grid in order with the sequential strict-``<``
        update, so ties resolve to the earliest grid point exactly as
        the one-pass-at-a-time loop would.
        """
        if profile is not None:
            profile.count("grid_pass_groups", len(self.groups))
        group_by_grid: dict[int, _PassGroup] = {}
        for group in self.groups:
            for m in group.members:
                group_by_grid[m] = group
        best = GridSearchResult.infeasible(self.overflow)
        for gi, max_dim in enumerate(self.grid):
            group = group_by_grid.get(gi)
            if group is None:
                continue  # this grid point's pass died (no candidate device)
            assert group.breakdown is not None
            cost = group.breakdown.max_cost_ms
            if cost < best.cost_ms:
                best = GridSearchResult(
                    feasible=True,
                    cost_ms=cost,
                    assignment=tuple(group.assignment),
                    max_dim_used=None if math.isinf(max_dim) else float(max_dim),
                    breakdown=group.breakdown,
                )
        return best


def _advance_instances(
    active: Sequence[_GridInstance],
    simulator: NeuroShardSimulator,
    profile: SearchProfile | None,
) -> None:
    """One lockstep round: score every group's candidates in one batch,
    then advance each group one table-placement step (splitting groups
    whose members choose different devices)."""
    entries: list[tuple[tuple[str, ...], Sequence[int], int | None]] = []
    # (instance, group, ti, union candidates, per-member masks, slot start)
    requests: list[
        tuple[_GridInstance, _PassGroup, int, list[int], list[tuple[int, ...]], int]
    ] = []
    for inst in active:
        ti = int(inst.order[inst.step])
        t_bytes = inst.table_bytes[ti]
        t_dim = inst.dims[ti]
        uid = inst.uids[ti]
        for group in inst.groups:
            mem_ok = [
                d
                for d in range(inst.num_devices)
                if group.device_bytes[d] + t_bytes <= inst.memory_bytes
            ]
            # Candidate masks are nested by max_dim, so the loosest
            # member's mask is the union; score it once and let each
            # member pick the first-min over its own subset.
            union_max = max(inst.grid[m] for m in group.members)
            union = [
                d for d in mem_ok if group.device_dims[d] + t_dim <= union_max
            ]
            alive: list[int] = []
            masks: list[tuple[int, ...]] = []
            for m in group.members:
                threshold = inst.grid[m]
                if threshold == union_max:
                    mask = tuple(union)
                else:
                    mask = tuple(
                        d
                        for d in union
                        if group.device_dims[d] + t_dim <= threshold
                    )
                if mask:
                    alive.append(m)
                    masks.append(mask)
                # An empty mask means this grid point's pass just failed
                # (no candidate device) — exactly the sequential
                # ``assignment = None`` break; the member is dropped.
            group.members = alive
            if not alive:
                continue
            start = len(entries)
            entries.extend(
                (
                    extend_table_set_key(group.device_keys[d], uid),
                    group.device_row_ids[d],
                    inst.row_ids[ti],
                )
                for d in union
            )
            requests.append((inst, group, ti, union, masks, start))
            if profile is not None:
                profile.count("greedy_steps")
                profile.count("scored_candidates", len(union))

    costs = simulator.device_compute_costs_batch(entries) if entries else []

    new_groups: dict[int, list[_PassGroup]] = {id(inst): [] for inst in active}
    for inst, group, ti, union, masks, start in requests:
        slot = {d: start + k for k, d in enumerate(union)}
        best_by_mask: dict[tuple[int, ...], int] = {}
        buckets: dict[int, list[int]] = {}
        for m, mask in zip(group.members, masks):
            best = best_by_mask.get(mask)
            if best is None:
                # First-min tie-break over the member's own candidates in
                # ascending device order — identical to the sequential
                # ``min(range(len(costs)), key=costs.__getitem__)``.
                best = mask[
                    min(range(len(mask)), key=lambda k: costs[slot[mask[k]]])
                ]
                best_by_mask[mask] = best
            buckets.setdefault(best, []).append(m)
        uid = inst.uids[ti]
        row_id = inst.row_ids[ti]
        t_bytes = inst.table_bytes[ti]
        t_dim = inst.dims[ti]
        successors = new_groups[id(inst)]
        if len(buckets) == 1:
            (best,) = buckets
            group.place(best, ti, uid, row_id, t_bytes, t_dim)
            successors.append(group)
        else:
            # Members diverge: one successor group per chosen device,
            # ordered by earliest member grid index for determinism.
            # Clones split off the *pre-placement* state, so they are
            # built before the surviving group mutates in place.
            ordered = sorted(buckets.items(), key=lambda kv: min(kv[1]))
            clones: list[_PassGroup] = []
            for best, members in ordered[1:]:
                clone = group.clone_for(members)
                clone.place(best, ti, uid, row_id, t_bytes, t_dim)
                clones.append(clone)
            first_best, first_members = ordered[0]
            group.members = first_members
            group.place(first_best, ti, uid, row_id, t_bytes, t_dim)
            successors.append(group)
            successors.extend(clones)
    for inst in active:
        inst.groups = new_groups[id(inst)]
        inst.step += 1


def _drive_grid_instances(
    instances: Sequence[_GridInstance],
    simulator: NeuroShardSimulator,
    profile: SearchProfile | None = None,
) -> list[GridSearchResult]:
    """Run instances to completion in lockstep, finalize, fold results."""
    with maybe_stage(profile, "greedy_assign"):
        while True:
            active = [inst for inst in instances if inst.active]
            if not active:
                break
            if profile is not None:
                profile.observe("frontier_size", len(active))
            _advance_instances(active, simulator, profile)

    with maybe_stage(profile, "plan_cost"):
        if simulator.cache.enabled:
            items = []
            slots: list[_PassGroup] = []
            for inst in instances:
                for group in inst.groups:
                    items.append(
                        (group.device_keys, group.device_row_ids, group.device_dims)
                    )
                    slots.append(group)
            if items:
                for group, breakdown in zip(
                    slots, simulator.plan_costs_keyed_batch(items)
                ):
                    group.breakdown = breakdown
        else:
            # The "w/o caching" ablation mirrors the sequential fallback:
            # per-device table lists rebuilt in table input order and
            # scored via plan_cost, one placement at a time.
            for inst in instances:
                for group in inst.groups:
                    per_device: list[list[TableConfig]] = [
                        [] for _ in range(inst.num_devices)
                    ]
                    for ti, d in enumerate(group.assignment):
                        per_device[d].append(inst.tables[ti])
                    group.breakdown = simulator.plan_cost(per_device)

    return [inst.result(profile) for inst in instances]


def greedy_grid_search(
    tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
    profile: SearchProfile | None = None,
) -> GridSearchResult:
    """Algorithm 2: find the best table-wise plan for ``tables``.

    With ``config.use_grid_search`` disabled, a single unconstrained
    greedy pass runs instead (the "w/o greedy grid search" ablation).

    With ``config.use_batch_scoring`` (the default, when the featurizer
    exposes the feature bank) all grid passes run in lockstep and every
    step's candidates across all passes are scored in one batched
    forward pass; results are bit-identical to the sequential route.
    """
    config = config or SearchConfig()
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if len(tables) == 0:
        raise ValueError("cannot shard an empty table list")

    if config.use_batch_scoring and simulator.supports_batch_scoring():
        instance = _GridInstance(
            tables, num_devices, simulator, memory, config, profile
        )
        return _drive_grid_instances([instance], simulator, profile=profile)[0]

    singles = simulator.single_table_costs(tables)
    order = np.argsort(-singles, kind="stable")

    # Per-table state shared by every grid pass: uids, cached feature
    # rows, memory footprints and dimensions are materialized exactly
    # once per grid search instead of per candidate evaluation.
    uids = [t.uid for t in tables]
    rows = simulator.featurizer.features_rows(tables)
    table_bytes = [memory.table_bytes(t) for t in tables]
    dims = [t.dim for t in tables]
    max_table_dim = max(dims)

    # How far this table list is from being placeable at all: tables
    # larger than one device can never fit, however they are assigned.
    overflow = float(
        sum(max(0, b - memory.memory_bytes) for b in table_bytes)
    )

    if config.use_grid_search:
        avg_dim = sum(dims) / num_devices
        ms = max(avg_dim, 1.0)
        me = config.grid_end_factor * ms
        if config.grid_points == 1:
            grid: list[float] = [ms]
        else:
            grid = list(np.linspace(ms, me, config.grid_points))
        grid.append(math.inf)  # unconstrained fallback, tried last
    else:
        grid = [math.inf]

    best = GridSearchResult.infeasible(overflow)
    for grid_index, max_dim in enumerate(grid):
        if math.isfinite(max_dim) and max_table_dim > max_dim:
            continue  # no single table could be placed; skip early
        with maybe_stage(profile, "greedy_assign"):
            if profile is not None:
                profile.count("grid_passes")
            gpass = _greedy_assign(
                order,
                num_devices,
                simulator,
                memory.memory_bytes,
                max_dim,
                uids,
                rows,
                table_bytes,
                dims,
                profile=profile,
            )
        if gpass.assignment is not None:
            with maybe_stage(profile, "plan_cost"):
                if simulator.cache.enabled:
                    # Reuse the pass's incremental device state; repeated
                    # placements (adjacent grid points frequently produce
                    # the same assignment) are memo-served.
                    breakdown = simulator.plan_cost_keyed(
                        gpass.device_keys, gpass.device_rows, gpass.device_dims
                    )
                else:
                    per_device: list[list[TableConfig]] = [
                        [] for _ in range(num_devices)
                    ]
                    for ti, d in enumerate(gpass.assignment):
                        per_device[d].append(tables[ti])
                    breakdown = simulator.plan_cost(per_device)
            cost = breakdown.max_cost_ms
            if cost < best.cost_ms:
                best = GridSearchResult(
                    feasible=True,
                    cost_ms=cost,
                    assignment=gpass.assignment,
                    max_dim_used=None if math.isinf(max_dim) else float(max_dim),
                    breakdown=breakdown,
                )
        if not gpass.dim_bound_hit:
            # The dimension bound never excluded a device, so every
            # remaining (larger) grid point — the ∞ fallback included —
            # would replay this exact trajectory.  Skip it.
            if profile is not None:
                profile.count("grid_passes_skipped", len(grid) - 1 - grid_index)
            break
    return best
