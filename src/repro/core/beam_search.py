"""Column-wise sharding: beam search (Algorithm 1).

The outer loop decides *which tables to column-split*.  Column splits
trade overall computation (Observation 1: two half shards cost more than
the parent) for balance and memory feasibility, so good plans split as
few tables as possible — the beam search therefore expands only from the
most promising candidates:

- in each iteration, the candidate tables of a plan are the union of the
  top-``N`` predicted-costliest tables and the top-``N`` largest tables
  (duplicates removed, unsplittable dim-4 tables skipped);
- each of the top-``K`` plans from the previous iteration is extended by
  each candidate, scored by the inner loop (Algorithm 2), and the
  top-``K`` lowest-cost new plans survive;
- after ``L`` iterations the globally best ``(c, t)`` wins.  The empty
  plan (no splits) is evaluated first, so zero splits is always an
  option.

**Plan memoization.**  Beam expansions are dominated by
permutation-duplicate plans: with beam width ``K`` and overlapping
candidate sets, different split orders routinely produce the *same
multiset of shards*, and the inner loop's outcome depends only on that
multiset.  ``evaluate`` therefore memoizes on the canonical key of the
resulting table list (its sorted uid multiset — NOT the column-plan
index sequence, whose permutations can legally produce different shard
multisets), and serves hits by remapping the stored assignment across
uid-equal tables (cost-identical by construction of
:attr:`~repro.data.table.TableConfig.uid`).  A hit for a *permuted*
ordering is only served when the greedy visit sequence matches the
memoized one — distinct uids with bit-equal predicted costs (possible
via the prediction floor) would otherwise tie-break differently — so
memoized results are bit-identical to re-evaluation; the search
trajectory — beam contents, tie-breaking, best plan — is unchanged, only
the redundant grid searches disappear.  The memo is disabled alongside
``use_cache`` so the "w/o caching" ablation measures a genuinely
memo-free search.

**Frontier batching** (``use_batch_scoring``, the default).  All
expansions of a beam iteration are evaluated as one frontier: their
grid searches run in lockstep (:mod:`repro.core.greedy_grid`), every
step of the frontier scores in a single flat ``predict_rows`` call, and
the plan-memo decisions (serve / remap / fall-through / store) are made
up front in the sequential visit order, so memo semantics — and
therefore the search trajectory — are unchanged bit for bit.

With ``use_beam_search`` disabled only the empty plan is evaluated —
Table 3's "w/o beam search" ablation, which loses memory feasibility on
tasks with oversized tables.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.config import SearchConfig
from repro.core.greedy_grid import (
    GridSearchResult,
    _drive_grid_instances,
    _GridInstance,
    greedy_grid_search,
)
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.core.simulator import NeuroShardSimulator
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile, maybe_stage

__all__ = ["BeamSearchResult", "beam_search"]


@dataclass(frozen=True)
class BeamSearchResult:
    """Outcome of the full (outer + inner) search.

    Attributes:
        feasible: some evaluated plan was memory-legal.
        plan: the best complete plan (column plan may be empty); ``None``
            when nothing feasible was found.
        cost_ms: its simulated embedding cost.
        evaluations: number of inner-loop (grid search) requests,
            including requests served by the plan memo — comparable to
            the pre-optimization search's count (the profile's
            ``unique_evaluations`` counter reports the grid searches
            actually executed).
    """

    feasible: bool
    plan: ShardingPlan | None
    cost_ms: float
    evaluations: int


def _candidates(
    tables: Sequence[TableConfig],
    simulator: NeuroShardSimulator,
    top_n: int,
) -> list[int]:
    """Top-N costly ∪ top-N largest splittable table indices.

    Order-preserving: the by-cost block first, then unseen by-size
    entries — deduplicated through a set (the candidate lists are
    ``O(top_n)`` long, but this runs on every beam expansion).
    """
    splittable = [i for i, t in enumerate(tables) if t.can_halve]
    if not splittable:
        return []
    singles = simulator.single_table_costs(tables)
    by_cost = sorted(splittable, key=lambda i: -singles[i])[:top_n]
    by_size = sorted(splittable, key=lambda i: -tables[i].size_bytes)[:top_n]
    merged: list[int] = []
    seen: set[int] = set()
    for i in by_cost + by_size:
        if i not in seen:
            seen.add(i)
            merged.append(i)
    return merged


def _remap_assignment(
    result: GridSearchResult,
    ref_uids: tuple[str, ...],
    uids: tuple[str, ...],
) -> GridSearchResult:
    """Re-align a memoized assignment to a permuted table list.

    ``result`` was computed for a table list with uid sequence
    ``ref_uids``; the requesting plan produced the same multiset in order
    ``uids`` *with an identical greedy visit sequence* (checked by the
    caller).  The allocator's behaviour depends only on that visit
    sequence, and uid-equal tables are visited in position order, so the
    k-th table of a given uid receives the same device in both
    orderings: remapping by occurrence rank reproduces exactly what
    direct re-evaluation would return.
    """
    devices_by_uid: dict[str, deque[int]] = defaultdict(deque)
    for uid, device in zip(ref_uids, result.assignment):
        devices_by_uid[uid].append(device)
    assignment = tuple(devices_by_uid[uid].popleft() for uid in uids)
    return replace(result, assignment=assignment)


def beam_search(
    base_tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
    profile: SearchProfile | None = None,
) -> BeamSearchResult:
    """Algorithm 1: jointly search column-wise and table-wise plans."""
    config = config or SearchConfig()
    if len(base_tables) == 0:
        raise ValueError("cannot shard an empty table list")

    evaluations = 0
    memo_enabled = config.use_cache
    # Canonical shard multiset -> (inner result, uid order it was
    # computed for, greedy visit sequence).  Lives for one search
    # request, like the uid memo.
    plan_memo: dict[
        tuple[str, ...],
        tuple[GridSearchResult, tuple[str, ...], tuple[str, ...]],
    ] = {}

    def visit_sequence(sharded, uids: tuple[str, ...]) -> tuple[str, ...]:
        """The uid sequence the greedy allocator would visit: descending
        predicted single-table cost, stable on list position.  Cheap —
        single-table costs are memo-served after the first evaluation."""
        singles = simulator.single_table_costs(sharded)
        order = np.argsort(-singles, kind="stable")
        return tuple(uids[i] for i in order)

    def evaluate(column_plan: tuple[int, ...]) -> GridSearchResult:
        nonlocal evaluations
        evaluations += 1
        with maybe_stage(profile, "evaluate"):
            sharded = apply_column_plan(base_tables, column_plan)
            if not memo_enabled:
                if profile is not None:
                    profile.count("unique_evaluations")
                return greedy_grid_search(
                    sharded, num_devices, simulator, memory, config,
                    profile=profile,
                )
            uids = tuple(t.uid for t in sharded)
            key = tuple(sorted(uids))
            hit = plan_memo.get(key)
            if hit is not None:
                result, ref_uids, ref_visit = hit
                if ref_uids == uids:
                    if profile is not None:
                        profile.count("plan_memo_hits")
                    return result
                # A permuted ordering replays the memoized trajectory
                # only when the allocator would visit the same uid
                # sequence.  Distinct uids with bit-equal predicted
                # costs (e.g. both clamped to the prediction floor) can
                # break that — then stable-argsort tie-breaking depends
                # on list positions, so fall through and re-evaluate.
                if visit_sequence(sharded, uids) == ref_visit:
                    if profile is not None:
                        profile.count("plan_memo_hits")
                    if not result.feasible:
                        return result
                    return _remap_assignment(result, ref_uids, uids)
            result = greedy_grid_search(
                sharded, num_devices, simulator, memory, config,
                profile=profile,
            )
            if hit is None:
                plan_memo[key] = (result, uids, visit_sequence(sharded, uids))
            if profile is not None:
                profile.count("unique_evaluations")
            return result

    batch_mode = config.use_batch_scoring and simulator.supports_batch_scoring()

    def evaluate_frontier(
        plans: Sequence[tuple[int, ...]],
    ) -> list[GridSearchResult]:
        """Batched ``evaluate`` over a whole beam frontier.

        Every expansion that must actually run becomes a
        :class:`~repro.core.greedy_grid._GridInstance` and the whole
        frontier is driven in lockstep — one merged scoring batch per
        greedy step across all expansions and all their grid passes.

        The plan-memo decisions ``evaluate`` makes sequentially (serve /
        remap / fall-through / store) depend only on uid multisets and
        visit sequences, all known before any result exists, so they are
        mirrored up front: a later expansion whose key matches an
        earlier *pending* one is served that instance's result after the
        drive, exactly as the sequential loop — where the earlier
        expansion would already have been memoized — would serve it.
        """
        nonlocal evaluations
        with maybe_stage(profile, "evaluate"):
            # outcome per plan:
            #   ("done", result)                      memo-served now
            #   ("inst", idx, store_key_or_None)      runs as instance idx
            #   ("direct", idx)                       pending result as-is
            #   ("remap", idx, ref_uids, uids)        pending result remapped
            outcomes: list[tuple] = []
            instances: list[_GridInstance] = []
            pending_by_key: dict[
                tuple[str, ...], tuple[int, tuple[str, ...], tuple[str, ...]]
            ] = {}

            def spawn(sharded, store=None) -> None:
                if profile is not None:
                    profile.count("unique_evaluations")
                instances.append(
                    _GridInstance(
                        sharded, num_devices, simulator, memory, config, profile
                    )
                )
                outcomes.append(("inst", len(instances) - 1, store))

            for plan in plans:
                evaluations += 1
                sharded = apply_column_plan(base_tables, plan)
                if not memo_enabled:
                    spawn(sharded)
                    continue
                uids = tuple(t.uid for t in sharded)
                key = tuple(sorted(uids))
                hit = plan_memo.get(key)
                if hit is not None:
                    result, ref_uids, ref_visit = hit
                    if ref_uids == uids:
                        if profile is not None:
                            profile.count("plan_memo_hits")
                        outcomes.append(("done", result))
                        continue
                    if visit_sequence(sharded, uids) == ref_visit:
                        if profile is not None:
                            profile.count("plan_memo_hits")
                        outcomes.append(
                            (
                                "done",
                                result
                                if not result.feasible
                                else _remap_assignment(result, ref_uids, uids),
                            )
                        )
                        continue
                    # Visit-sequence mismatch: re-evaluate, and (like the
                    # sequential path, where ``hit`` is non-None) do not
                    # overwrite the stored entry.
                    spawn(sharded)
                    continue
                pending = pending_by_key.get(key)
                if pending is not None:
                    # An earlier expansion of this frontier owns the key;
                    # sequentially it would already be memoized by now.
                    idx, ref_uids, ref_visit = pending
                    if ref_uids == uids:
                        if profile is not None:
                            profile.count("plan_memo_hits")
                        outcomes.append(("direct", idx))
                        continue
                    if visit_sequence(sharded, uids) == ref_visit:
                        if profile is not None:
                            profile.count("plan_memo_hits")
                        outcomes.append(("remap", idx, ref_uids, uids))
                        continue
                    spawn(sharded)
                    continue
                visit = visit_sequence(sharded, uids)
                pending_by_key[key] = (len(instances), uids, visit)
                spawn(sharded, store=(key, uids, visit))

            inner = (
                _drive_grid_instances(instances, simulator, profile=profile)
                if instances
                else []
            )

            results: list[GridSearchResult] = []
            for outcome in outcomes:
                tag = outcome[0]
                if tag == "done":
                    results.append(outcome[1])
                elif tag == "inst":
                    _, idx, store = outcome
                    result = inner[idx]
                    if store is not None:
                        skey, suids, svisit = store
                        plan_memo[skey] = (result, suids, svisit)
                    results.append(result)
                elif tag == "direct":
                    results.append(inner[outcome[1]])
                else:  # remap
                    _, idx, ref_uids, uids = outcome
                    result = inner[idx]
                    results.append(
                        result
                        if not result.feasible
                        else _remap_assignment(result, ref_uids, uids)
                    )
            return results

    best_plan: tuple[int, ...] | None = None
    best_inner: GridSearchResult = GridSearchResult.infeasible()

    empty_result = evaluate_frontier([()])[0] if batch_mode else evaluate(())
    if empty_result.feasible:
        best_plan = ()
        best_inner = empty_result

    if config.use_beam_search and config.max_steps > 0:
        # Beam entries: (column_plan, beam key).  Infeasible plans stay in
        # the beam with infinite cost so the search can keep splitting
        # toward feasibility even before anything fits; among them, the
        # key's overflow component prefers plans whose oversized tables
        # are closest to fitting, steering the splits to the right
        # tables (without it the beam has no signal until something is
        # feasible and can wander for all L steps).
        beam: list[tuple[tuple[int, ...], tuple[float, float]]] = [
            ((), empty_result.beam_key)
        ]
        for _ in range(config.max_steps):
            expansions: list[tuple[int, ...]] = []
            for plan, _ in beam:
                sharded = apply_column_plan(base_tables, plan)
                with maybe_stage(profile, "candidates"):
                    indices = _candidates(sharded, simulator, config.top_n)
                expansions.extend(plan + (index,) for index in indices)
            if not expansions:
                break
            if batch_mode:
                results = evaluate_frontier(expansions)
            else:
                results = [evaluate(new_plan) for new_plan in expansions]
            scored: list[tuple[tuple[int, ...], tuple[float, float]]] = []
            for new_plan, result in zip(expansions, results):
                scored.append((new_plan, result.beam_key))
                if result.feasible and result.cost_ms < best_inner.cost_ms:
                    best_plan = new_plan
                    best_inner = result
            scored.sort(key=lambda item: item[1])
            beam = scored[: config.beam_width]

    if profile is not None:
        profile.count("evaluations", evaluations)

    if best_plan is None or not best_inner.feasible:
        return BeamSearchResult(
            feasible=False, plan=None, cost_ms=math.inf, evaluations=evaluations
        )
    return BeamSearchResult(
        feasible=True,
        plan=ShardingPlan(
            column_plan=best_plan,
            assignment=best_inner.assignment,
            num_devices=num_devices,
        ),
        cost_ms=best_inner.cost_ms,
        evaluations=evaluations,
    )
