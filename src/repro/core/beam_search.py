"""Column-wise sharding: beam search (Algorithm 1).

The outer loop decides *which tables to column-split*.  Column splits
trade overall computation (Observation 1: two half shards cost more than
the parent) for balance and memory feasibility, so good plans split as
few tables as possible — the beam search therefore expands only from the
most promising candidates:

- in each iteration, the candidate tables of a plan are the union of the
  top-``N`` predicted-costliest tables and the top-``N`` largest tables
  (duplicates removed, unsplittable dim-4 tables skipped);
- each of the top-``K`` plans from the previous iteration is extended by
  each candidate, scored by the inner loop (Algorithm 2), and the
  top-``K`` lowest-cost new plans survive;
- after ``L`` iterations the globally best ``(c, t)`` wins.  The empty
  plan (no splits) is evaluated first, so zero splits is always an
  option.

With ``use_beam_search`` disabled only the empty plan is evaluated —
Table 3's "w/o beam search" ablation, which loses memory feasibility on
tasks with oversized tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.config import SearchConfig
from repro.core.greedy_grid import GridSearchResult, greedy_grid_search
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.core.simulator import NeuroShardSimulator
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel

__all__ = ["BeamSearchResult", "beam_search"]


@dataclass(frozen=True)
class BeamSearchResult:
    """Outcome of the full (outer + inner) search.

    Attributes:
        feasible: some evaluated plan was memory-legal.
        plan: the best complete plan (column plan may be empty); ``None``
            when nothing feasible was found.
        cost_ms: its simulated embedding cost.
        evaluations: number of inner-loop (grid search) invocations.
    """

    feasible: bool
    plan: ShardingPlan | None
    cost_ms: float
    evaluations: int


def _candidates(
    tables: Sequence[TableConfig],
    simulator: NeuroShardSimulator,
    top_n: int,
) -> list[int]:
    """Top-N costly ∪ top-N largest splittable table indices."""
    splittable = [i for i, t in enumerate(tables) if t.can_halve]
    if not splittable:
        return []
    singles = simulator.single_table_costs(tables)
    by_cost = sorted(splittable, key=lambda i: -singles[i])[:top_n]
    by_size = sorted(splittable, key=lambda i: -tables[i].size_bytes)[:top_n]
    merged: list[int] = []
    for i in by_cost + by_size:
        if i not in merged:
            merged.append(i)
    return merged


def beam_search(
    base_tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
) -> BeamSearchResult:
    """Algorithm 1: jointly search column-wise and table-wise plans."""
    config = config or SearchConfig()
    if len(base_tables) == 0:
        raise ValueError("cannot shard an empty table list")

    evaluations = 0

    def evaluate(column_plan: tuple[int, ...]) -> GridSearchResult:
        nonlocal evaluations
        evaluations += 1
        sharded = apply_column_plan(base_tables, column_plan)
        return greedy_grid_search(sharded, num_devices, simulator, memory, config)

    best_plan: tuple[int, ...] | None = None
    best_inner: GridSearchResult = GridSearchResult.infeasible()

    empty_result = evaluate(())
    if empty_result.feasible:
        best_plan = ()
        best_inner = empty_result

    if config.use_beam_search and config.max_steps > 0:
        # Beam entries: (column_plan, beam key).  Infeasible plans stay in
        # the beam with infinite cost so the search can keep splitting
        # toward feasibility even before anything fits; among them, the
        # key's overflow component prefers plans whose oversized tables
        # are closest to fitting, steering the splits to the right
        # tables (without it the beam has no signal until something is
        # feasible and can wander for all L steps).
        beam: list[tuple[tuple[int, ...], tuple[float, float]]] = [
            ((), empty_result.beam_key)
        ]
        for _ in range(config.max_steps):
            scored: list[tuple[tuple[int, ...], tuple[float, float]]] = []
            for plan, _ in beam:
                sharded = apply_column_plan(base_tables, plan)
                for index in _candidates(sharded, simulator, config.top_n):
                    new_plan = plan + (index,)
                    result = evaluate(new_plan)
                    scored.append((new_plan, result.beam_key))
                    if result.feasible and result.cost_ms < best_inner.cost_ms:
                        best_plan = new_plan
                        best_inner = result
            if not scored:
                break
            scored.sort(key=lambda item: item[1])
            beam = scored[: config.beam_width]

    if best_plan is None or not best_inner.feasible:
        return BeamSearchResult(
            feasible=False, plan=None, cost_ms=math.inf, evaluations=evaluations
        )
    return BeamSearchResult(
        feasible=True,
        plan=ShardingPlan(
            column_plan=best_plan,
            assignment=best_inner.assignment,
            num_devices=num_devices,
        ),
        cost_ms=best_inner.cost_ms,
        evaluations=evaluations,
    )
