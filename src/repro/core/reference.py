"""Frozen pre-optimization search — the equivalence oracle.

This module preserves, verbatim, the recompute-from-scratch search
implementation that :mod:`repro.core.beam_search` and
:mod:`repro.core.greedy_grid` shipped with before the incremental-state
rewrite:

- the greedy allocator rebuilds every candidate device's table list and
  lets the simulator re-sort its ``table_set_key`` and re-stack its
  feature matrix on every single candidate evaluation;
- the beam search re-evaluates every expansion, including column plans
  that are multiset permutations of already-scored plans;
- single-table costs go through the cost cache on every ranking.

It exists for two reasons and must not be "improved":

1. **Equivalence regression**: the optimized search is required to return
   bit-identical ``(feasible, cost_ms, assignment, column_plan)`` results
   (``tests/test_search_equivalence.py`` pins this on seeded small /
   medium / infeasible task mixes).
2. **Performance baseline**: ``benchmarks/test_perf_search.py`` measures
   the optimized search's speedup against this implementation and tracks
   the trajectory in ``BENCH_search.json``.

Why equivalence holds (and is tested rather than assumed): the optimized
paths reuse the same cached feature rows in the same placement order, so
every stacked prediction is the same matrix; canonical keys built
incrementally equal the re-sorted keys; and the beam's plan memo is keyed
on the *resulting table multiset* (not the column-plan index sequence,
whose permutations can produce different shard multisets), with
assignments remapped across uid-equal tables, which are cost-identical by
construction of :attr:`~repro.data.table.TableConfig.uid`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.config import SearchConfig
from repro.core.beam_search import BeamSearchResult
from repro.core.greedy_grid import GridSearchResult
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.core.simulator import NeuroShardSimulator
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel

__all__ = ["reference_greedy_grid_search", "reference_beam_search"]


def _single_table_costs(
    simulator: NeuroShardSimulator, tables: Sequence[TableConfig]
) -> np.ndarray:
    """Pre-optimization single-table costs: one cache round-trip per
    table, no uid memo (what ``single_table_costs`` used to do)."""
    return np.array(simulator.device_compute_costs([[t] for t in tables]))


def _reference_greedy_assign(
    tables: Sequence[TableConfig],
    order: np.ndarray,
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    max_dim: float,
) -> tuple[int, ...] | None:
    """One greedy pass under a ``max_dim`` constraint (recompute-from-
    scratch: candidate lists are rebuilt and re-keyed per evaluation)."""
    device_tables: list[list[TableConfig]] = [[] for _ in range(num_devices)]
    device_bytes = [0] * num_devices
    device_dims = [0] * num_devices
    assignment = [0] * len(tables)

    for ti in order:
        table = tables[ti]
        t_bytes = memory.table_bytes(table)
        candidates = [
            d
            for d in range(num_devices)
            if device_bytes[d] + t_bytes <= memory.memory_bytes
            and device_dims[d] + table.dim <= max_dim
        ]
        if not candidates:
            return None
        resulting = [device_tables[d] + [table] for d in candidates]
        costs = simulator.device_compute_costs(resulting)
        best = candidates[int(np.argmin(costs))]
        device_tables[best].append(table)
        device_bytes[best] += t_bytes
        device_dims[best] += table.dim
        assignment[ti] = best
    return tuple(assignment)


def reference_greedy_grid_search(
    tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
) -> GridSearchResult:
    """Algorithm 2, pre-optimization implementation."""
    config = config or SearchConfig()
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if len(tables) == 0:
        raise ValueError("cannot shard an empty table list")

    singles = _single_table_costs(simulator, tables)
    order = np.argsort(-singles, kind="stable")

    overflow = float(
        sum(
            max(0, memory.table_bytes(t) - memory.memory_bytes)
            for t in tables
        )
    )

    if config.use_grid_search:
        avg_dim = sum(t.dim for t in tables) / num_devices
        ms = max(avg_dim, 1.0)
        me = config.grid_end_factor * ms
        if config.grid_points == 1:
            grid: list[float] = [ms]
        else:
            grid = list(np.linspace(ms, me, config.grid_points))
        grid.append(math.inf)  # unconstrained fallback, tried last
    else:
        grid = [math.inf]

    best = GridSearchResult.infeasible(overflow)
    for max_dim in grid:
        if math.isfinite(max_dim) and max(t.dim for t in tables) > max_dim:
            continue  # no single table could be placed; skip early
        assignment = _reference_greedy_assign(
            tables, order, num_devices, simulator, memory, max_dim
        )
        if assignment is None:
            continue
        per_device: list[list[TableConfig]] = [[] for _ in range(num_devices)]
        for ti, d in enumerate(assignment):
            per_device[d].append(tables[ti])
        breakdown = simulator.plan_cost(per_device)
        cost = breakdown.max_cost_ms
        if cost < best.cost_ms:
            best = GridSearchResult(
                feasible=True,
                cost_ms=cost,
                assignment=assignment,
                max_dim_used=None if math.isinf(max_dim) else float(max_dim),
                breakdown=breakdown,
            )
    return best


def _reference_candidates(
    tables: Sequence[TableConfig],
    simulator: NeuroShardSimulator,
    top_n: int,
) -> list[int]:
    """Top-N costly ∪ top-N largest splittable table indices, with the
    original O(N²) ``i not in merged`` list-scan dedup."""
    splittable = [i for i, t in enumerate(tables) if t.can_halve]
    if not splittable:
        return []
    singles = _single_table_costs(simulator, tables)
    by_cost = sorted(splittable, key=lambda i: -singles[i])[:top_n]
    by_size = sorted(splittable, key=lambda i: -tables[i].size_bytes)[:top_n]
    merged: list[int] = []
    for i in by_cost + by_size:
        if i not in merged:
            merged.append(i)
    return merged


def reference_beam_search(
    base_tables: Sequence[TableConfig],
    num_devices: int,
    simulator: NeuroShardSimulator,
    memory: MemoryModel,
    config: SearchConfig | None = None,
) -> BeamSearchResult:
    """Algorithm 1, pre-optimization implementation (no plan memo)."""
    config = config or SearchConfig()
    if len(base_tables) == 0:
        raise ValueError("cannot shard an empty table list")

    evaluations = 0

    def evaluate(column_plan: tuple[int, ...]) -> GridSearchResult:
        nonlocal evaluations
        evaluations += 1
        sharded = apply_column_plan(base_tables, column_plan)
        return reference_greedy_grid_search(
            sharded, num_devices, simulator, memory, config
        )

    best_plan: tuple[int, ...] | None = None
    best_inner: GridSearchResult = GridSearchResult.infeasible()

    empty_result = evaluate(())
    if empty_result.feasible:
        best_plan = ()
        best_inner = empty_result

    if config.use_beam_search and config.max_steps > 0:
        beam: list[tuple[tuple[int, ...], tuple[float, float]]] = [
            ((), empty_result.beam_key)
        ]
        for _ in range(config.max_steps):
            scored: list[tuple[tuple[int, ...], tuple[float, float]]] = []
            for plan, _ in beam:
                sharded = apply_column_plan(base_tables, plan)
                for index in _reference_candidates(
                    sharded, simulator, config.top_n
                ):
                    new_plan = plan + (index,)
                    result = evaluate(new_plan)
                    scored.append((new_plan, result.beam_key))
                    if result.feasible and result.cost_ms < best_inner.cost_ms:
                        best_plan = new_plan
                        best_inner = result
            if not scored:
                break
            scored.sort(key=lambda item: item[1])
            beam = scored[: config.beam_width]

    if best_plan is None or not best_inner.feasible:
        return BeamSearchResult(
            feasible=False, plan=None, cost_ms=math.inf, evaluations=evaluations
        )
    return BeamSearchResult(
        feasible=True,
        plan=ShardingPlan(
            column_plan=best_plan,
            assignment=best_inner.assignment,
            num_devices=num_devices,
        ),
        cost_ms=best_inner.cost_ms,
        evaluations=evaluations,
    )
