"""The NeuroShard facade: pre-train once, shard any task.

Ties the whole pipeline together (Figure 6): a :class:`NeuroShard`
instance owns a pre-trained cost-model bundle and answers sharding tasks
with :meth:`NeuroShard.shard`, returning the plan plus the diagnostics
the paper reports (simulated cost, wall-clock sharding time, cache hit
rate — Table 3's columns).

Because the cost models are universal ("once-for-all"), one instance
serves any task with the matching device count and batch size — no
per-task training, unlike the RL baselines.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.config import (
    CollectionConfig,
    SearchConfig,
    TrainConfig,
)
from repro.core.beam_search import beam_search
from repro.core.cache import CostCache
from repro.core.plan import ShardingPlan
from repro.core.simulator import NeuroShardSimulator
from repro.costmodel.pretrain import (
    CostModelReport,
    PretrainedCostModels,
    pretrain_cost_models,
)
from repro.data.pool import TablePool
from repro.data.tasks import ShardingTask
from repro.hardware.cluster import SimulatedCluster
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile

__all__ = ["NeuroShard", "ShardingResult"]


@dataclass(frozen=True)
class ShardingResult:
    """A sharding decision plus search diagnostics.

    Attributes:
        feasible: whether a memory-legal plan was found.
        plan: the plan (``None`` when infeasible).
        simulated_cost_ms: the cost models' estimate of the plan's
            embedding cost.
        sharding_time_s: wall-clock time of the online search.
        cache_hit_rate: hit rate of the computation-cost cache.
        evaluations: number of inner-loop invocations (plan-memo hits
            included, so counts are comparable across optimizations).
        profile: serialized :class:`~repro.perf.SearchProfile` (stage
            timers + work counters) when the sharder was constructed
            with ``profile=True``; ``None`` otherwise.
    """

    feasible: bool
    plan: ShardingPlan | None
    simulated_cost_ms: float
    sharding_time_s: float
    cache_hit_rate: float
    evaluations: int
    profile: Mapping[str, Any] | None = None


class NeuroShard:
    """Embedding-table sharder with pre-trained neural cost models.

    Args:
        models: pre-trained cost-model bundle (from
            :meth:`NeuroShard.pretrain`, :func:`pretrain_cost_models`, or
            :meth:`PretrainedCostModels.load`).
        search: online-search hyperparameters (``N``, ``K``, ``L``,
            ``M`` and the ablation switches).
        lifelong_cache: share one computation-cost cache across all
            :meth:`shard` calls (the paper's "life-long hash map").
            Disable to give each task a fresh cache (useful for measuring
            per-task hit rates, as Table 3 does).
        cache: the lifelong cache to share (e.g. a
            :class:`~repro.api.engine.ShardingEngine`'s bounded cache);
            a fresh one is created when omitted.  Only consulted when
            ``lifelong_cache`` is enabled.
        profile: collect a :class:`~repro.perf.SearchProfile` (stage
            timers, evaluation/memoization/cache counters) per
            :meth:`shard` call and attach it to the result.  Off by
            default — the instrumented search pays a small bookkeeping
            overhead.
    """

    def __init__(
        self,
        models: PretrainedCostModels,
        search: SearchConfig | None = None,
        lifelong_cache: bool = True,
        cache: CostCache | None = None,
        profile: bool = False,
    ) -> None:
        self.models = models
        self.search = search or SearchConfig()
        self._lifelong = lifelong_cache
        self.profile_enabled = profile
        # The config outranks the provided cache: a "w/o caching"
        # (use_cache=False) sharder must run cache-disabled semantics —
        # memo gating, keyed-plan routing, grid-pass grouping, hit-rate
        # stats — even when a shared engine offers its always-enabled
        # lifelong cache.  Otherwise sibling configs served from one
        # engine silently inherit cached-mode behavior.
        if not self.search.use_cache:
            cache = None
        self._shared_cache = (
            cache
            if cache is not None
            else CostCache(enabled=self.search.use_cache)
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def pretrain(
        cls,
        cluster: SimulatedCluster,
        pool: TablePool,
        collection: CollectionConfig | None = None,
        train: TrainConfig | None = None,
        search: SearchConfig | None = None,
        seed: int = 0,
    ) -> tuple["NeuroShard", CostModelReport]:
        """Run the full pre-training pipeline and wrap the result."""
        models, report = pretrain_cost_models(
            cluster, pool, collection=collection, train=train, seed=seed
        )
        return cls(models, search=search), report

    @classmethod
    def from_directory(
        cls, directory: str | os.PathLike, search: SearchConfig | None = None
    ) -> "NeuroShard":
        """Load a sharder from a saved cost-model bundle."""
        return cls(PretrainedCostModels.load(directory), search=search)

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def shard(self, task: ShardingTask) -> ShardingResult:
        """Search for the best sharding plan of ``task``.

        Raises:
            ValueError: when the task's device count does not match the
                models' (communication models are device-count-specific).
        """
        if task.num_devices != self.models.num_devices:
            raise ValueError(
                f"task has {task.num_devices} devices but the cost models "
                f"were pre-trained for {self.models.num_devices}; pre-train "
                "a bundle per cluster shape"
            )
        cache = (
            self._shared_cache
            if self._lifelong
            else CostCache(enabled=self.search.use_cache)
        )
        hits_before, lookups_before = cache.hits, cache.lookups
        profile = SearchProfile() if self.profile_enabled else None
        simulator = NeuroShardSimulator(self.models, cache, profile=profile)
        memory = MemoryModel(task.memory_bytes)

        started = time.perf_counter()
        result = beam_search(
            list(task.tables),
            task.num_devices,
            simulator,
            memory,
            self.search,
            profile=profile,
        )
        elapsed = time.perf_counter() - started

        lookups = cache.lookups - lookups_before
        hits = cache.hits - hits_before
        if profile is not None:
            profile.add_time("search_total", elapsed)
            profile.count("cache_lookups", lookups)
            profile.count("cache_hits", hits)
        return ShardingResult(
            feasible=result.feasible,
            plan=result.plan,
            simulated_cost_ms=result.cost_ms,
            sharding_time_s=elapsed,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            evaluations=result.evaluations,
            profile=profile.to_dict() if profile is not None else None,
        )
