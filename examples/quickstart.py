"""Quickstart: pre-train cost models and shard a task in ~1 minute.

Walks the full NeuroShard pipeline (paper Figure 6) at a small scale:

1. synthesize the table pool (the ``dlrm_datasets`` stand-in),
2. micro-benchmark random inputs on the simulated cluster and pre-train
   the three neural cost models,
3. search for the best column-wise + table-wise sharding plan of an
   unseen task,
4. execute the plan on the simulated hardware and compare against a
   naive baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    CollectionConfig,
    NeuroShard,
    SearchConfig,
    SimulatedCluster,
    TablePool,
    TaskConfig,
    TrainConfig,
    generate_tasks,
    synthesize_table_pool,
)
from repro.baselines import GreedySharder
from repro.evaluation import execute_plan


def main() -> None:
    # --- 1. the table pool and the hardware -------------------------
    pool = TablePool(synthesize_table_pool(seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    print(f"pool: {len(pool)} tables; cluster: {cluster.num_devices} GPUs")

    # --- 2. pre-train the cost models (scaled-down sizes) -----------
    print("pre-training cost models (~1 minute)...")
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=3000, num_comm_samples=1000),
        train=TrainConfig(epochs=150),
        search=SearchConfig(),  # the paper's N=10, K=3, L=10, M=11
        seed=0,
    )
    for name, mse in report.test_mse_rows().items():
        print(f"  {name:24s} test MSE = {mse:.3f} ms^2")

    # --- 3. shard an unseen task -------------------------------------
    task = generate_tasks(
        pool, TaskConfig(num_devices=4, max_dim=128), count=1, seed=42
    )[0]
    print(f"\ntask: {task.num_tables} tables, max dim {task.max_dim}, "
          f"{task.total_size_bytes / 1024**3:.1f} GB total")
    result = sharder.shard(task)
    plan = result.plan
    print(f"NeuroShard plan: {plan.num_splits} column splits, "
          f"searched in {result.sharding_time_s:.1f}s "
          f"(cache hit rate {result.cache_hit_rate:.0%})")
    print(f"  device dims: {plan.device_dims(task.tables)}")

    # --- 4. execute on the (simulated) hardware ---------------------
    execution = execute_plan(plan, task, cluster)
    print(f"  real max-device embedding cost: {execution.max_cost_ms:.2f} ms "
          f"(simulated: {result.simulated_cost_ms:.2f} ms)")

    baseline_plan = GreedySharder("Dim-based").shard(task)
    if baseline_plan is None:
        print("dim-greedy baseline: cannot shard this task (out of memory)")
    else:
        baseline = execute_plan(baseline_plan, task, cluster)
        print(f"dim-greedy baseline cost: {baseline.max_cost_ms:.2f} ms "
              f"({(baseline.max_cost_ms / execution.max_cost_ms - 1) * 100:+.1f}% "
              "vs NeuroShard)")


if __name__ == "__main__":
    main()
