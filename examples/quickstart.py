"""Quickstart: pre-train cost models and serve sharding requests.

Walks the full NeuroShard pipeline (paper Figure 6) at a small scale,
through the service API every caller in this repository uses:

1. synthesize the table pool (the ``dlrm_datasets`` stand-in),
2. micro-benchmark random inputs on the simulated cluster and pre-train
   the three neural cost models,
3. stand up a :class:`repro.api.ShardingEngine` on the bundle and answer
   a :class:`repro.api.ShardingRequest` with the beam-search strategy,
4. execute the plan on the simulated hardware and compare against the
   dim-greedy baseline — served by the same engine, same request.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    CollectionConfig,
    NeuroShard,
    SearchConfig,
    SimulatedCluster,
    TablePool,
    TaskConfig,
    TrainConfig,
    generate_tasks,
    synthesize_table_pool,
)
from repro.api import ShardingEngine, ShardingRequest
from repro.evaluation import execute_plan


def main() -> None:
    # --- 1. the table pool and the hardware -------------------------
    pool = TablePool(synthesize_table_pool(seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    print(f"pool: {len(pool)} tables; cluster: {cluster.num_devices} GPUs")

    # --- 2. pre-train the cost models (scaled-down sizes) -----------
    print("pre-training cost models (~1 minute)...")
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=3000, num_comm_samples=1000),
        train=TrainConfig(epochs=150),
        seed=0,
    )
    for name, mse in report.test_mse_rows().items():
        print(f"  {name:24s} test MSE = {mse:.3f} ms^2")

    # --- 3. serve an unseen task through the engine ------------------
    engine = ShardingEngine(
        cluster,
        sharder.models,
        search=SearchConfig(),  # the paper's N=10, K=3, L=10, M=11
    )
    task = generate_tasks(
        pool, TaskConfig(num_devices=4, max_dim=128), count=1, seed=42
    )[0]
    print(f"\ntask: {task.num_tables} tables, max dim {task.max_dim}, "
          f"{task.total_size_bytes / 1024**3:.1f} GB total")
    response = engine.shard(ShardingRequest(task, strategy="beam"))
    plan = response.plan
    print(f"NeuroShard plan: {plan.num_splits} column splits, "
          f"searched in {response.sharding_time_s:.1f}s "
          f"(cache hit rate {response.cache_hit_rate:.0%})")
    print(f"  device dims: {plan.device_dims(task.tables)}")

    # --- 4. execute on the (simulated) hardware ---------------------
    execution = execute_plan(plan, task, cluster)
    print(f"  real max-device embedding cost: {execution.max_cost_ms:.2f} ms "
          f"(simulated: {response.simulated_cost_ms:.2f} ms)")

    baseline = engine.shard(ShardingRequest(task, strategy="dim_greedy"))
    if not baseline.feasible:
        print("dim-greedy baseline: cannot shard this task (out of memory)")
    else:
        base_exec = execute_plan(baseline.plan, task, cluster)
        print(f"dim-greedy baseline cost: {base_exec.max_cost_ms:.2f} ms "
              f"({(base_exec.max_cost_ms / execution.max_cost_ms - 1) * 100:+.1f}% "
              "vs NeuroShard)")


if __name__ == "__main__":
    main()
