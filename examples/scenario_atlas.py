"""The scenario atlas: replay production workload regimes end to end.

The paper evaluates sharding on *static* task distributions; production
workloads move — load breathes daily, tables churn, access skew drifts,
devices degrade.  The scenario atlas (:mod:`repro.scenarios`) makes those
regimes first-class: each one is a deterministic, seeded
:class:`~repro.scenarios.WorkloadTrace` that replays through the
plan-lifecycle service, producing a
:class:`~repro.scenarios.ScenarioReport`.

This walkthrough:

1. pre-trains a small cost-model bundle (the only slow part),
2. lists the registered atlas,
3. replays a flash crowd — watch the serving cost spike with traffic and
   the reshard rebalance *without* re-materializing every table,
4. replays a capacity loss — the per-device budget shrinks and recovers,
5. prints the reshard-vs-scratch migration totals side by side and
   round-trips the report through its versioned JSON.

Run:  python examples/scenario_atlas.py
"""

from repro import (
    ClusterConfig,
    CollectionConfig,
    SimulatedCluster,
    TablePool,
    TrainConfig,
    synthesize_table_pool,
)
from repro.api import ReshardConfig, ShardingEngine
from repro.config import SearchConfig
from repro.costmodel import pretrain_cost_models
from repro.evaluation import replay_workload_trace
from repro.scenarios import (
    ScenarioReport,
    format_scenario_report,
    iter_scenarios,
    make_trace,
)


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=96, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=2))

    print("pre-training cost models (~1 minute)...")
    models, _ = pretrain_cost_models(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=1500, num_comm_samples=600),
        train=TrainConfig(epochs=100),
        seed=0,
    )
    engine = ShardingEngine(
        cluster,
        models,
        search=SearchConfig(top_n=3, beam_width=2, max_steps=5, grid_points=4),
    )

    # --- 2. the atlas --------------------------------------------------
    print("\nregistered scenarios:")
    for info in iter_scenarios():
        print(f"  {info.name:20s} [{', '.join(info.tags)}] {info.description}")

    config = ReshardConfig(
        migration_budget_ms=5_000, migration_lambda=1e-4, max_refine_steps=16
    )

    # --- 3. a flash crowd ---------------------------------------------
    crowd = make_trace(
        "flash_crowd", pool, num_devices=2, num_tables=12, seed=7
    )
    report = replay_workload_trace(crowd, engine, reshard_config=config)
    print()
    print(format_scenario_report(report))

    # --- 4. capacity loss ----------------------------------------------
    degraded = make_trace(
        "device_degradation", pool, num_devices=2, num_tables=12, seed=7
    )
    degraded_report = replay_workload_trace(
        degraded, engine, reshard_config=config
    )
    print()
    print(format_scenario_report(degraded_report))

    # --- 5. summaries + JSON round-trip --------------------------------
    print("\nreshard vs re-shard-from-scratch, cumulative moved MB:")
    for rep in (report, degraded_report):
        summary = rep.summary()
        print(
            f"  {summary['scenario']:20s} "
            f"{summary['total_moved_mb']:8.1f} MB incremental vs "
            f"{summary['total_scratch_moved_mb']:8.1f} MB from scratch "
            f"(infeasible rate {summary['infeasible_rate']:.2f})"
        )

    payload = report.to_dict()  # versioned JSON — commit, diff, replay
    restored = ScenarioReport.from_dict(payload)
    print(f"\nreport JSON round-trip intact: {restored == report}")


if __name__ == "__main__":
    main()
