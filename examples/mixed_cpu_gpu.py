"""Mixed CPU-GPU sharding: offload what no GPU can hold (Section 6).

The paper's future-work list names CPU and mixed CPU-GPU sharding.  This
example runs the extension end to end on a cluster of two GPUs plus a
host CPU:

1. build a heterogeneous cluster — tight 1 GB GPU budgets, a 64 GB CPU,
2. pre-train one computation cost model per device class,
3. shard a workload whose biggest tables exceed any single GPU's budget,
4. execute the plan on the simulated hardware and compare against what a
   GPU-only cluster could do (nothing: the workload does not fit).

Run:  python examples/mixed_cpu_gpu.py
"""

from repro.config import CollectionConfig, TrainConfig
from repro.data import TablePool, synthesize_table_pool
from repro.data.table import TableConfig
from repro.extensions import MixedClusterSharder, pretrain_mixed_cost_models
from repro.hardware import HeterogeneousCluster, cpu_host, gpu_2080ti

GPU_BUDGET = 1 * 1024**3
CPU_BUDGET = 64 * 1024**3
BATCH = 4096


def main() -> None:
    # --- 1. the heterogeneous cluster --------------------------------
    cluster = HeterogeneousCluster(
        [gpu_2080ti(), gpu_2080ti(), cpu_host()],
        memory_bytes=[GPU_BUDGET, GPU_BUDGET, CPU_BUDGET],
        batch_size=BATCH,
    )
    print(
        f"cluster: {cluster.num_devices} devices "
        f"({', '.join(s.name for s in cluster.specs)})"
    )

    # --- 2. per-class cost models -------------------------------------
    pool = TablePool(synthesize_table_pool(num_tables=64, seed=0))
    print("pre-training per-class cost models (~1 minute)...")
    models = pretrain_mixed_cost_models(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2000, num_comm_samples=1),
        train=TrainConfig(epochs=120),
        seed=0,
    )
    for klass, report in sorted(models.reports.items()):
        print(f"  {klass} compute model: test MSE = {report.test_mse:.3f} ms^2")

    # --- 3. a workload with GPU-impossible tables ---------------------
    hot = [pool.tables[i].with_dim(64) for i in range(10)]
    cold_giants = [
        TableConfig(
            table_id=1000 + i,
            hash_size=25_000_000,  # ~6 GB with optimizer state at dim 64
            dim=64,
            pooling_factor=1.2,
            zipf_alpha=1.25,
        )
        for i in range(3)
    ]
    workload = hot + cold_giants
    total_gb = sum(t.size_bytes for t in workload) / 1024**3
    print(f"\nworkload: {len(workload)} tables, {total_gb:.1f} GB of weights")
    feasible_gpu_only = all(
        cluster.device_fits(0, [t]) for t in workload
    )
    print(f"every table fits a single GPU: {feasible_gpu_only}")

    # --- 4. shard and execute -----------------------------------------
    sharder = MixedClusterSharder(cluster, models, max_steps=6)
    result = sharder.shard(workload)
    print(f"\nmixed plan feasible: {result.feasible} "
          f"({result.column_splits} column splits, "
          f"cache hit rate {result.cache_hit_rate:.0%})")
    for d, dev_tables in enumerate(result.per_device):
        name = cluster.specs[d].name
        dim = sum(t.dim for t in dev_tables)
        gb = sum(t.size_bytes for t in dev_tables) / 1024**3
        print(f"  device {d} ({name:10s}): {len(dev_tables):2d} tables, "
              f"device dim {dim:4d}, {gb:5.1f} GB")

    execution = cluster.evaluate_plan(result.per_device)
    print(f"\nreal per-device embedding costs (ms): "
          f"{['%.2f' % c for c in execution.device_costs_ms]}")
    print(f"bottleneck: {execution.max_cost_ms:.2f} ms, "
          f"iteration {execution.iteration_ms:.2f} ms, "
          f"throughput {execution.throughput_samples_per_s:,.0f} samples/s")


if __name__ == "__main__":
    main()
