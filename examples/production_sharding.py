"""Production-style deployment workflow (paper Sections 3.2 and 4.5).

Demonstrates the operational story around NeuroShard:

1. pre-train cost models once and save a version-controlled bundle,
2. reload the bundle in a (simulated) training job and shard a
   production-flavoured task — many large-dimension tables under a tight
   memory budget, where column-wise sharding is mandatory,
3. compare embedding cost and end-to-end training throughput against
   random sharding (the Table 4 protocol),
4. monitor cost-model drift and decide when to re-train (Section 3.2's
   deployment note).

Run:  python examples/production_sharding.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ClusterConfig,
    CollectionConfig,
    NeuroShard,
    SearchConfig,
    ShardingTask,
    SimulatedCluster,
    TablePool,
    TrainConfig,
    synthesize_table_pool,
)
from repro.api import BundleStore
from repro.baselines import RandomSharder
from repro.costmodel import DriftMonitor
from repro.evaluation import execute_plan
from repro.hardware import DeviceSpec

NUM_DEVICES = 8
MEMORY_BYTES = 2 * 1024**3


def make_production_task(pool: TablePool) -> ShardingTask:
    """~60 tables, dimensions biased to 128, tight memory."""
    rng = np.random.default_rng(7)
    tables = pool.sample_tables(60, rng)
    dims = rng.choice([64, 128], size=len(tables), p=[0.3, 0.7])
    tables = [t.with_dim(int(d)) for t, d in zip(tables, dims)]
    tables.sort(key=lambda t: t.size_bytes)
    while sum(t.size_bytes for t in tables) > 0.7 * MEMORY_BYTES * NUM_DEVICES:
        tables.pop()
    return ShardingTask(
        tables=tuple(tables), num_devices=NUM_DEVICES, memory_bytes=MEMORY_BYTES
    )


def main() -> None:
    pool = TablePool(synthesize_table_pool(seed=0))
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=NUM_DEVICES, memory_bytes=MEMORY_BYTES)
    )

    # --- 1. pre-train once, save a versioned bundle ------------------
    print("pre-training cost models for the production cluster...")
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=3000, num_comm_samples=1000),
        train=TrainConfig(epochs=150),
        search=SearchConfig(top_n=6, beam_width=2, max_steps=8, grid_points=7),
        seed=0,
    )
    store = BundleStore(Path(tempfile.mkdtemp()) / "bundles")
    info = store.save(
        sharder.models,
        "prod-8gpu",
        metadata={"test_mse": report.test_mse_rows()},
    )
    print(f"saved bundle {info.version_tag} to {info.path}")

    # --- 2. reload (latest version) and shard -------------------------
    deployed = NeuroShard(
        store.load("prod-8gpu"),
        search=SearchConfig(top_n=6, beam_width=2, max_steps=8, grid_points=7),
    )
    task = make_production_task(pool)
    print(f"\nproduction task: {task.num_tables} tables, "
          f"{task.total_size_bytes / 1024**3:.1f} GB on {NUM_DEVICES} GPUs "
          f"x {MEMORY_BYTES / 1024**3:.0f} GB")
    result = deployed.shard(task)
    print(f"NeuroShard: {result.plan.num_splits} column splits, "
          f"{result.sharding_time_s:.1f}s search")

    # --- 3. cost + throughput vs random sharding ----------------------
    ns_exec = execute_plan(result.plan, task, cluster)
    random_plan = RandomSharder(seed=1).shard(task)
    print(f"  embedding cost : {ns_exec.max_cost_ms:8.2f} ms")
    print(f"  throughput     : {ns_exec.throughput_samples_per_s:12,.0f} samples/s")
    if random_plan is None:
        print("  random sharding: out of memory (cannot shard at all)")
    else:
        rnd_exec = execute_plan(random_plan, task, cluster)
        if rnd_exec is None:
            print("  random sharding: out of memory")
        else:
            gain = (
                ns_exec.throughput_samples_per_s
                / rnd_exec.throughput_samples_per_s
                - 1
            ) * 100
            print(f"  vs random      : {rnd_exec.max_cost_ms:8.2f} ms, "
                  f"throughput improvement {gain:+.1f}%")

    # --- 4. drift monitoring ------------------------------------------
    print("\ndrift monitoring (Section 3.2):")
    monitor = DriftMonitor(deployed.models, cluster, pool, threshold_mse=250.0)
    report = monitor.probe(num_samples=16, seed=3)
    print(f"  same hardware   : probe MSE {report.probe_mse:8.2f}  "
          f"retrain? {report.needs_retraining}")

    # Simulate a hardware/workload shift: a 2x slower memory system.
    shifted = SimulatedCluster(
        ClusterConfig(num_devices=NUM_DEVICES, memory_bytes=MEMORY_BYTES),
        spec=DeviceSpec(gather_bandwidth_bytes_per_ms=5.0e7, index_cost_ms=2.2e-6),
    )
    drift_monitor = DriftMonitor(
        deployed.models, shifted, pool, threshold_mse=250.0
    )
    report = drift_monitor.probe(num_samples=16, seed=3)
    print(f"  shifted hardware: probe MSE {report.probe_mse:8.2f}  "
          f"retrain? {report.needs_retraining}")


if __name__ == "__main__":
    main()
