"""The plan lifecycle: deployments, drift, budgeted resharding, rollback.

The one-shot workflow (pre-train, search, emit a plan) answers a single
question; production keeps the answer *alive*.  This example plays one
deployment's week through :class:`repro.api.ShardingService`:

1. create a named deployment (engine + initial workload),
2. plan and apply version 1,
3. the workload shifts — the drift monitor fires and the model gains two
   tables while retiring one,
4. ``reshard`` under a migration budget: the incremental candidate
   (warm-started from the live plan) is compared with a full re-search,
   and the winner is applied with its :class:`repro.api.PlanDiff`
   recorded — note how many megabytes of live embedding state it moves
   versus re-sharding from scratch,
5. something looks off — ``rollback`` restores version 1 byte-for-byte.

Run:  python examples/plan_lifecycle.py
"""

import dataclasses

import numpy as np

from repro import (
    ClusterConfig,
    CollectionConfig,
    SimulatedCluster,
    TablePool,
    TaskConfig,
    TrainConfig,
    generate_tasks,
    synthesize_table_pool,
)
from repro.api import (
    ReshardConfig,
    ShardingEngine,
    ShardingService,
    WorkloadDelta,
)
from repro.costmodel import DriftMonitor, pretrain_cost_models


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=128, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))

    print("pre-training cost models (~1 minute)...")
    models, report = pretrain_cost_models(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2000, num_comm_samples=800),
        train=TrainConfig(epochs=120),
        seed=0,
    )
    engine = ShardingEngine(cluster, models, cache_max_entries=50_000)

    # --- 1+2. create, plan, apply -------------------------------------
    task = generate_tasks(
        pool, TaskConfig(num_devices=4, max_dim=64), count=1, seed=3
    )[0]
    service = ShardingService()  # pass PlanStore("deployments/") to persist
    service.create_deployment("dlrm-prod", engine, tables=task.tables)
    v1 = service.plan("dlrm-prod")
    service.apply("dlrm-prod")
    print(f"\nv1 applied: {len(v1.base_tables)} shards, "
          f"{v1.simulated_cost_ms:.3f} ms simulated cost")

    # --- 3. the workload drifts and grows -----------------------------
    drifted_pool = TablePool(
        [dataclasses.replace(t, zipf_alpha=round(t.zipf_alpha * 0.6, 6))
         for t in pool.tables],
        augment_dims=pool.augment_dims,
    )
    monitor = DriftMonitor(
        models, cluster, drifted_pool,
        threshold_mse=max(2.0 * report.compute.test_mse, 0.5), window=2,
    )
    drift = monitor.probe(num_samples=24, seed=42)
    drift = monitor.probe(num_samples=24, seed=43)
    print(f"\ndrift probe: rolling MSE {drift.rolling_mse:.2f} ms^2, "
          f"retrain: {drift.needs_retraining}")

    fresh = pool.sample_tables(2, np.random.default_rng(7))
    max_id = max(t.table_id for t in task.tables)
    added = tuple(
        dataclasses.replace(t.with_dim(64), table_id=max_id + 1 + i)
        for i, t in enumerate(fresh)
    )
    retired = (task.tables[0].table_id,)
    delta = WorkloadDelta(
        add_tables=added, remove_table_ids=retired, drift=drift
    )

    # --- 4. budgeted reshard ------------------------------------------
    v2 = service.reshard(
        "dlrm-prod",
        delta,
        ReshardConfig(migration_budget_ms=60_000, migration_lambda=1e-4),
    )
    assert v2.diff is not None
    full = v2.metadata.get("full_search", {})
    print(f"\nv2 ({v2.metadata['chosen']}) applied: "
          f"{v2.simulated_cost_ms:.3f} ms simulated cost")
    print(f"  moved {v2.diff.moved_bytes / 1e6:8.1f} MB "
          f"({len(v2.diff.moves)} shards), migration "
          f"{v2.diff.migration_cost_ms:.1f} ms")
    if full:
        print(f"  re-shard-from-scratch would move "
              f"{full['moved_bytes'] / 1e6:8.1f} MB for "
              f"{full['simulated_cost_ms']:.3f} ms simulated cost")

    # --- 5. rollback ---------------------------------------------------
    restored = service.rollback("dlrm-prod")
    print(f"\nrolled back: v{restored.version} live again "
          f"(byte-identical: {restored.plan == v1.plan})")

    print("\nhistory:")
    for data in service.history("dlrm-prod"):
        print(f"  v{data['version']} [{data['kind']}/{data['strategy']}] "
              f"cost={data['simulated_cost_ms']:.3f} ms")


if __name__ == "__main__":
    main()
