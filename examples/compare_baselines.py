"""Compare every sharding algorithm on one benchmark setting.

Regenerates a single Table 1 column — the core search plus the baseline
families on 4-GPU / max-dimension-128 tasks — and prints the paper-style
comparison with real measured costs, success rates and planning time.

All methods are resolved by name through the :mod:`repro.api` registry
and evaluated with :func:`repro.evaluation.evaluate_strategy`; adding an
algorithm to the comparison is one ``@register_strategy`` away.

Run:  python examples/compare_baselines.py
"""

from repro import (
    ClusterConfig,
    NeuroShard,
    CollectionConfig,
    SimulatedCluster,
    TablePool,
    TaskConfig,
    TrainConfig,
    generate_tasks,
    synthesize_table_pool,
)
from repro.evaluation import (
    evaluate_strategy,
    format_text_table,
    improvement_percent,
    strongest_baseline,
)

NUM_TASKS = 5

#: (registry name, factory kwargs) per compared method.
METHODS = [
    ("random", {"seed": 0}),
    ("size_greedy", {}),
    ("dim_greedy", {}),
    ("lookup_greedy", {}),
    ("size_lookup_greedy", {}),
    ("autoshard", {"episodes": 20, "seed": 0}),
    ("rl", {"episodes": 20, "seed": 0}),  # DreamShard-style
    ("planner", {}),
    ("milp", {"time_limit_s": 5}),
    ("beam", {}),  # NeuroShard
]


def main() -> None:
    pool = TablePool(synthesize_table_pool(seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))

    print("pre-training NeuroShard's cost models (~1.5 minutes)...")
    neuroshard, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=4000, num_comm_samples=1500),
        train=TrainConfig(epochs=200),
        seed=0,
    )
    bundle = neuroshard.models

    tasks = generate_tasks(
        pool,
        TaskConfig(num_devices=4, max_dim=128),
        count=NUM_TASKS,
        seed=17,
    )

    evaluations = {}
    for strategy, kwargs in METHODS:
        print(f"  running {strategy}...")
        evaluation = evaluate_strategy(
            strategy, tasks, cluster, bundle=bundle, **kwargs
        )
        evaluations[evaluation.method] = evaluation

    rows = [
        [
            name,
            ev.mean_cost_ms,
            f"{ev.num_success}/{ev.num_tasks}",
            ev.mean_sharding_time_s,
        ]
        for name, ev in evaluations.items()
    ]
    print()
    print(
        format_text_table(
            ["method", "mean cost (ms)", "success", "plan time (s)"],
            rows,
            title=f"4 GPUs, max dimension 128, {NUM_TASKS} tasks "
            "('-' = failed some task)",
        )
    )

    best_name, best_cost = strongest_baseline(evaluations)
    ns_cost = evaluations["NeuroShard"].mean_cost_ms
    print(
        f"\nNeuroShard vs strongest baseline ({best_name}): "
        f"{improvement_percent(best_cost, ns_cost):+.1f}% improvement"
    )


if __name__ == "__main__":
    main()
