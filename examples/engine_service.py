"""Serving sharding as a service: one engine, many strategies, batches.

The FLSys-style deployment story: a long-lived process owns one
:class:`repro.api.ShardingEngine` (pre-trained bundle + shared bounded
cost cache) and answers every sharding question the training platform
asks:

- single requests (``engine.shard``) with any registered strategy,
- concurrent batches (``engine.shard_batch``) with deterministic,
  sequential-identical results,
- side-by-side strategy comparisons (``engine.compare``),
- JSON in, JSON out — requests and responses round-trip through the
  versioned schema, so the engine can sit behind any RPC layer.

Run:  python examples/engine_service.py
"""

import json

from repro import (
    ClusterConfig,
    CollectionConfig,
    NeuroShard,
    SimulatedCluster,
    TablePool,
    TaskConfig,
    TrainConfig,
    generate_tasks,
    synthesize_table_pool,
)
from repro.api import ShardingEngine, ShardingRequest, ShardingResponse


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=128, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))

    print("pre-training cost models (~1 minute)...")
    sharder, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2000, num_comm_samples=800),
        train=TrainConfig(epochs=120),
        seed=0,
    )

    # The long-lived service object: bundle + shared LRU-bounded cache.
    # lifelong_cache=True opts the beam strategy into the paper's
    # lifelong hash map (shared across requests) instead of the default
    # order-independent per-request caches.
    engine = ShardingEngine(
        cluster,
        sharder.models,
        cache_max_entries=50_000,
        strategy_kwargs={"beam": {"lifelong_cache": True}},
    )
    print(f"engine serves: {', '.join(engine.available())}\n")

    tasks = generate_tasks(
        pool, TaskConfig(num_devices=4, max_dim=64), count=8, seed=3
    )

    # --- concurrent batch serving ------------------------------------
    requests = [
        ShardingRequest(task, strategy="beam", request_id=f"job-{task.task_id}")
        for task in tasks
    ]
    responses = engine.shard_batch(requests, max_workers=4)
    print("batch of 8 (4 workers):")
    for resp in responses:
        print(f"  {resp.request_id}: feasible={resp.feasible} "
              f"cost={resp.simulated_cost_ms:8.3f} ms "
              f"in {resp.sharding_time_s:.2f}s")
    print(f"shared cache after batch: {engine.cache_stats()}\n")

    # --- strategy comparison on one task ------------------------------
    print("compare on task 0:")
    for resp in engine.compare(requests[0]):
        cost = "-" if not resp.feasible else f"{resp.simulated_cost_ms:8.3f}"
        print(f"  {resp.strategy:20s} {cost}")

    # --- the wire format ----------------------------------------------
    wire = json.dumps(responses[0].to_dict())
    restored = ShardingResponse.from_dict(json.loads(wire))
    print(f"\nresponse round-trips through JSON: "
          f"{restored.deterministic_dict() == responses[0].deterministic_dict()}")


if __name__ == "__main__":
    main()
