"""Deployment lifecycle: drift monitoring and triggered re-training.

Section 3.2's deployment notes: indices distributions shift over time, so
production NeuroShard periodically probes the cost models' prediction
error on fresh samples and re-trains when a threshold is crossed ("we
find a re-training interval of three months is sufficient").  This
example plays out that lifecycle on the simulated cluster:

1. pre-train cost models against today's hardware/workload,
2. probe — healthy (errors comparable to the test MSE),
3. the workload shifts (index distributions flatten: users explore more,
   caches help less) — probes degrade and the monitor fires,
4. re-train on the shifted workload — probes recover.

Run:  python examples/drift_retraining.py
"""

import dataclasses

from repro.config import ClusterConfig, CollectionConfig, TrainConfig
from repro.costmodel import DriftMonitor, pretrain_cost_models
from repro.data import TablePool, synthesize_table_pool
from repro.hardware import SimulatedCluster

BATCH = 65536


def shifted_pool(pool: TablePool) -> TablePool:
    """The drifted workload: flatter index distributions.

    Zipf exponents shrink by 40% — the same tables are looked up with
    far less skew, so per-batch unique rows (and thus real costs) grow
    while the deployed model still predicts yesterday's costs.
    """
    tables = [
        dataclasses.replace(t, zipf_alpha=round(t.zipf_alpha * 0.6, 6))
        for t in pool.tables
    ]
    return TablePool(tables, augment_dims=pool.augment_dims)


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=96, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4, batch_size=BATCH))
    collection = CollectionConfig(num_compute_samples=2500, num_comm_samples=600)
    train = TrainConfig(epochs=150)

    # --- 1. pre-train on today's workload ----------------------------
    print("pre-training cost models on today's workload...")
    models, report = pretrain_cost_models(
        cluster, pool, collection=collection, train=train, seed=0
    )
    test_mse = report.compute.test_mse
    print(f"  compute model test MSE: {test_mse:.3f} ms^2")

    threshold = max(5.0 * test_mse, 0.5)
    monitor = DriftMonitor(
        models, cluster, pool, threshold_mse=threshold, window=4
    )
    print(f"  drift threshold: rolling MSE > {threshold:.2f} ms^2")

    # --- 2. healthy probes --------------------------------------------
    print("\nweek 1-4: probing against the deployed workload")
    for week in range(4):
        r = monitor.probe(num_samples=24, seed=100 + week)
        print(f"  week {week + 1}: probe MSE {r.probe_mse:7.3f}, "
              f"rolling {r.rolling_mse:7.3f}, "
              f"retrain: {r.needs_retraining}")

    # --- 3. the workload shifts ---------------------------------------
    print("\nindex distributions shift (skew drops 40%)...")
    drifted = shifted_pool(pool)
    monitor_drifted = DriftMonitor(
        models, cluster, drifted, threshold_mse=threshold, window=4
    )
    fired = False
    for week in range(4):
        r = monitor_drifted.probe(num_samples=24, seed=200 + week)
        print(f"  week {week + 5}: probe MSE {r.probe_mse:7.3f}, "
              f"rolling {r.rolling_mse:7.3f}, "
              f"retrain: {r.needs_retraining}")
        fired = fired or r.needs_retraining
    if not fired:
        print("  (monitor did not fire — try a larger shift)")
        return

    # --- 4. re-train on the shifted workload --------------------------
    print("\nre-training on the shifted workload...")
    models2, report2 = pretrain_cost_models(
        cluster, drifted, collection=collection, train=train, seed=1
    )
    # The drifted workload's costs are larger in absolute terms (flatter
    # skew => more unique rows per batch), so the redeployment calibrates
    # a fresh threshold from the new model's test MSE — exactly as the
    # original deployment did.
    threshold2 = max(5.0 * report2.compute.test_mse, 0.5)
    print(f"  new compute test MSE: {report2.compute.test_mse:.3f} ms^2, "
          f"new threshold: {threshold2:.2f} ms^2")
    monitor2 = DriftMonitor(
        models2, cluster, drifted, threshold_mse=threshold2, window=4
    )
    healthy = True
    for week in range(2):
        r = monitor2.probe(num_samples=24, seed=300 + week)
        healthy = healthy and not r.needs_retraining
        print(f"  post-retrain probe {week + 1}: MSE {r.probe_mse:7.3f}, "
              f"retrain: {r.needs_retraining}")
    if healthy:
        print("\nmonitor healthy again — redeploy the new bundle "
              "(version-controlled, per Section 3.2)")
    else:
        print("\nstill drifting — in production this would escalate to a "
              "larger re-collection run")


if __name__ == "__main__":
    main()
