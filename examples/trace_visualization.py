"""Visualize per-GPU execution traces (paper Figure 1, right).

Renders ASCII timelines of one synchronous DLRM training iteration for a
balanced and an imbalanced sharding plan, making the straggler effect
visible: on the imbalanced plan, lightly-loaded GPUs idle inside the
all-to-all collectives waiting for the overloaded one.

Run:  python examples/trace_visualization.py
"""

from repro import ClusterConfig, SimulatedCluster, synthesize_table_pool
from repro.hardware import TraceSimulator

#: Glyph per event kind, matching Figure 1's color coding.
GLYPHS = {
    "fwd_comp": "F",
    "fwd_comm": "f",
    "dense": "D",
    "bwd_comm": "b",
    "bwd_comp": "B",
}
WIDTH = 96


def render(trace, title: str) -> None:
    print(f"\n{title}")
    start = min(e.start_ms for e in trace.events)
    end = max(e.end_ms for e in trace.events)
    scale = WIDTH / (end - start)
    devices = sorted({e.device for e in trace.events})
    for d in devices:
        line = [" "] * WIDTH
        for event in trace.events:
            if event.device != d:
                continue
            lo = int((event.start_ms - start) * scale)
            hi = max(lo + 1, int((event.end_ms - start) * scale))
            for i in range(lo, min(hi, WIDTH)):
                line[i] = GLYPHS[event.kind]
        cost = trace.embedding_costs_ms[d]
        print(f"GPU {d} |{''.join(line)}| emb cost {cost:6.1f} ms")
    print(
        f"legend: F=emb fwd comp, f=fwd all-to-all, D=dense fwd+bwd, "
        f"b=bwd all-to-all, B=emb bwd comp"
    )
    print(
        f"iteration: {trace.iteration_ms:.1f} ms; "
        f"max embedding cost: {trace.max_embedding_cost_ms:.1f} ms"
    )


def main() -> None:
    pool = synthesize_table_pool(seed=0)
    # 16 medium tables at dimension 64.
    tables = [t for t in pool if t.size_bytes < 256 * 1024**2][:16]
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    tracer: TraceSimulator = cluster.tracer

    balanced = [tables[d::4] for d in range(4)]
    imbalanced = [tables[:10], tables[10:12], tables[12:14], tables[14:]]

    render(
        tracer.steady_state(balanced),
        "Balanced plan (4 tables per GPU):",
    )
    render(
        tracer.steady_state(imbalanced),
        "Imbalanced plan (10 tables on GPU 0) - note the idle waiting "
        "(f/b stretches) on GPUs 1-3:",
    )

    thr_b = tracer.throughput_samples_per_s(balanced)
    thr_i = tracer.throughput_samples_per_s(imbalanced)
    print(
        f"\ntraining throughput: balanced {thr_b:,.0f} samples/s vs "
        f"imbalanced {thr_i:,.0f} samples/s "
        f"({(thr_b / thr_i - 1) * 100:+.1f}%)"
    )


if __name__ == "__main__":
    main()
