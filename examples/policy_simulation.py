"""Online resharding policies in the discrete-event cluster simulator.

The scenario atlas replays a workload trace step by step and reshards on
*every* change — an oracle operator.  Real operators must decide *when*
resharding is worth its migration cost, with devices failing and load
breathing underneath them.  The cluster simulator (:mod:`repro.simulator`)
makes that decision rule a first-class, testable object:

1. a workload trace compiles into a timestamped event stream
   (table churn, traffic, memory pressure) on a deterministic
   `EventClock`;
2. seeded machine processes inject device flaps, stragglers, and
   latency degradations on top;
3. an `OnlinePolicy` from the policy registry watches the serving cost
   each tick and decides when to call `ShardingService.reshard` — every
   change it sits on accrues as pending backlog and overlaid cost;
4. the run condenses into a versioned `SimulationReport` — time-weighted
   mean/p99 serving cost, SLO violation-minutes, downtime, reshard count
   and migrated bytes per simulated day.

This walkthrough:

1. pre-trains a small cost-model bundle (the only slow part),
2. lists the registered policies,
3. simulates a lazy and an eager policy through a table-churn regime on
   a flaky fleet and prints both reports,
4. compares three policies side by side in the policy-vs-regime matrix,
5. round-trips a report through its versioned JSON.

Run:  python examples/policy_simulation.py
"""

import json

from repro import (
    ClusterConfig,
    CollectionConfig,
    SimulatedCluster,
    TablePool,
    TrainConfig,
    synthesize_table_pool,
)
from repro.api import ReshardConfig, ShardingEngine
from repro.config import SearchConfig
from repro.costmodel import pretrain_cost_models
from repro.scenarios import make_trace
from repro.simulator import (
    FleetSpec,
    SimulationConfig,
    SimulationReport,
    format_policy_matrix,
    format_simulation_report,
    iter_policies,
    make_policy,
    simulate_policy,
)


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=96, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=2))

    print("pre-training cost models (~1 minute)...")
    models, _ = pretrain_cost_models(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=1500, num_comm_samples=600),
        train=TrainConfig(epochs=100),
        seed=0,
    )
    engine = ShardingEngine(
        cluster,
        models,
        search=SearchConfig(top_n=3, beam_width=2, max_steps=5, grid_points=4),
    )

    # --- 2. the policy registry ----------------------------------------
    print("\nregistered policies:")
    for info in iter_policies():
        print(f"  {info.name:16s} {info.description}")

    # --- 3. lazy vs eager on a flaky fleet -----------------------------
    # Table churn: model-iteration waves onboard and retire tables every
    # step.  The fleet breaks occasionally (seeded, so reproducible):
    # devices flap roughly weekly and straggle every couple of days.
    trace = make_trace("table_churn", pool, num_devices=2, num_tables=10, seed=3)
    reshard = ReshardConfig(migration_budget_ms=5_000, max_refine_steps=8)
    config = SimulationConfig(
        sim_seed=7,
        fleet=FleetSpec(mtbf_hours=168.0, straggler_rate_per_hour=1.0 / 48.0),
    )

    print("\n--- eager: reshard the moment anything is pending ---")
    eager = simulate_policy(
        trace, engine, make_policy("immediate"),
        reshard_config=reshard, config=config,
    )
    print(format_simulation_report(eager))

    print("\n--- lazy: reshard only when delay costs more than moving ---")
    lazy = simulate_policy(
        trace, engine, make_policy("cost_of_delay", lam=0.05),
        reshard_config=reshard, config=config,
    )
    print(format_simulation_report(lazy))

    moved_ratio = lazy.total_moved_mb / max(eager.total_moved_mb, 1e-9)
    print(
        f"\nlazy policy migrated {moved_ratio:.0%} of the eager bytes "
        f"({lazy.reshard_count} vs {eager.reshard_count} reshards) at "
        f"{lazy.mean_cost_ms / eager.mean_cost_ms:.2f}x its mean cost"
    )

    # --- 4. the policy matrix ------------------------------------------
    reports = [eager, lazy]
    for name in ("periodic", "drift_threshold"):
        reports.append(
            simulate_policy(
                trace, engine, make_policy(name),
                reshard_config=reshard, config=config,
            )
        )
    print("\n" + format_policy_matrix(reports))

    # --- 5. versioned JSON ---------------------------------------------
    payload = json.dumps(lazy.to_dict(), indent=2)
    restored = SimulationReport.from_dict(json.loads(payload))
    assert restored.to_dict() == lazy.to_dict()
    print(f"\nreport round-trips through {len(payload)} bytes of JSON "
          f"(schema_version {lazy.to_dict()['schema_version']})")


if __name__ == "__main__":
    main()
