"""Amortized sharding: learned policies on top of "pre-train, and search".

Appendix H sketches how to come back from search to learning: harvest the
sharding *system log* and train a policy that shards in one pass.  This
example builds the full spectrum on one set of tasks and reports the
quality/latency trade:

- **Lookup-greedy** — the strongest hand-designed heuristic (instant).
- **SurCo-surrogate** — per-instance linear surrogate costs optimized
  against the neural cost models (related work, Ferber et al. 2022).
- **OfflineRL** — advantage-weighted regression on a log of heuristic
  plans (Appendix H's offline-RL strategy): one forward pass per table
  at deployment.
- **NeuroShard** — the full beam + greedy grid search (best, slowest).

Run:  python examples/amortized_sharding.py
"""

from repro.baselines import GreedySharder, RandomSharder, SurrogateSharder
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard
from repro.data import TablePool, generate_tasks, synthesize_table_pool
from repro.evaluation import evaluate_sharder, format_text_table
from repro.extensions import OfflineRLSharder
from repro.hardware import SimulatedCluster


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=128, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    cfg = TaskConfig(num_devices=4, max_dim=64, min_tables=10, max_tables=40)
    train_tasks = generate_tasks(pool, cfg, count=8, seed=1)
    eval_tasks = generate_tasks(pool, cfg, count=5, seed=2)

    # --- pre-train the shared cost models -----------------------------
    print("pre-training cost models (~1 minute)...")
    neuro, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2500, num_comm_samples=800),
        train=TrainConfig(epochs=150),
        search=SearchConfig(max_steps=6, grid_points=7),
        seed=0,
    )
    bundle = neuro.models

    # --- train the offline-RL policy from a heuristic log -------------
    print("collecting the sharding log and training the AWR policy...")
    offline = OfflineRLSharder(bundle, seed=0)
    offline.fit_from_log(
        train_tasks,
        [
            GreedySharder("Size-based"),
            GreedySharder("Dim-based"),
            GreedySharder("Lookup-based"),
            RandomSharder(seed=3),
        ],
        epochs=80,
    )

    # --- evaluate the spectrum ----------------------------------------
    methods = [
        GreedySharder("Lookup-based"),
        SurrogateSharder(bundle, iterations=30, seed=0),
        offline,
        neuro,
    ]
    rows = []
    for method in methods:
        name = getattr(method, "name", "NeuroShard")
        ev = evaluate_sharder(method, eval_tasks, cluster, name=name)
        rows.append(
            [
                name,
                ev.mean_cost_of_successes_ms,
                f"{ev.num_success}/{ev.num_tasks}",
                ev.mean_sharding_time_s,
            ]
        )
    print()
    print(
        format_text_table(
            ["method", "cost on solved (ms)", "success", "shard time (s)"],
            rows,
            title=f"Amortization spectrum on {len(eval_tasks)} held-out tasks",
        )
    )
    print(
        "\n(table-wise-only methods skip tasks whose largest table needs a\n"
        "column split — only NeuroShard solves all of them; costs average\n"
        "over each method's solved tasks)"
    )
    print(
        "\nreading: NeuroShard buys the best plans with seconds of search;\n"
        "the offline-RL policy recovers most of the heuristics' gap in a\n"
        "single forward pass — the Appendix H amortization story."
    )


if __name__ == "__main__":
    main()
