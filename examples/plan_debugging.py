"""Debugging a sharding plan with the cost models as a diagnostics tool.

The pre-trained cost models are not just a search substrate — they answer
the questions an on-call engineer asks about a slow training job in
milliseconds, with no GPU time:

- Which device is the bottleneck, and is it compute- or comm-bound?
- How unbalanced is the plan (compute balance, dimension balance)?
- Would moving or splitting one specific table help, and by how much?
- What is the best single edit available right now?

This example takes a deliberately bad plan (everything dim-greedy onto
too few devices' worth of balance), diagnoses it, applies the analyzer's
best suggested edits one at a time, and verifies each step on the
simulated hardware.

Run:  python examples/plan_debugging.py
"""

from repro.config import (
    ClusterConfig,
    CollectionConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard
from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.data import TablePool, generate_tasks, synthesize_table_pool
from repro.evaluation import analyze_plan, best_single_improvement
from repro.hardware import SimulatedCluster
from repro.hardware.memory import MemoryModel


def main() -> None:
    pool = TablePool(synthesize_table_pool(num_tables=96, seed=0))
    cluster = SimulatedCluster(ClusterConfig(num_devices=4))
    print("pre-training cost models (~1 minute)...")
    sharder, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2500, num_comm_samples=800),
        train=TrainConfig(epochs=150),
        seed=0,
    )
    simulator = NeuroShardSimulator(sharder.models, CostCache())

    # --- a deliberately bad (but memory-legal) plan --------------------
    # Pile everything onto the last device until its memory is nearly
    # full, spilling the rest round-robin — the worst legal imbalance.
    task = generate_tasks(
        pool, TaskConfig(num_devices=4, max_dim=64), count=1, seed=9
    )[0]
    memory = MemoryModel(task.memory_bytes)
    per_device = [[], [], [], []]
    spill = 0
    for table in task.tables:
        if memory.device_bytes(per_device[3] + [table]) <= 0.9 * task.memory_bytes:
            per_device[3].append(table)
        else:
            per_device[spill % 3].append(table)
            spill += 1

    # --- diagnose ------------------------------------------------------
    analysis = analyze_plan(per_device, simulator, memory)
    print(f"\ninitial plan: simulated bottleneck "
          f"{analysis.max_cost_ms:.2f} ms on device "
          f"{analysis.bottleneck_device} "
          f"({analysis.bottleneck_fraction_compute:.0%} compute)")
    print(f"  compute balance {analysis.compute_balance:.2f}, "
          f"dim balance {analysis.dim_balance:.2f}, "
          f"device dims {analysis.device_dims}")

    # --- iteratively apply the best single edit ------------------------
    for step in range(6):
        edits = best_single_improvement(per_device, simulator, memory, top_k=1)
        best = edits[0]
        if best.improvement_ms <= 0:
            print(f"\nstep {step + 1}: no single edit helps — done")
            break
        print(f"\nstep {step + 1}: {best.description}")
        print(f"  predicted {best.cost_before_ms:.2f} -> "
              f"{best.cost_after_ms:.2f} ms "
              f"({best.improvement_ms:+.2f} ms)")
        per_device = [list(dev) for dev in best.edited]
        measured = cluster.evaluate_plan(per_device).max_cost_ms
        print(f"  measured on hardware: {measured:.2f} ms")

    # --- compare against the full search -------------------------------
    result = sharder.shard(task)
    neuro_cost = cluster.evaluate_plan(
        result.plan.per_device_tables(task.tables)
    ).max_cost_ms
    final = cluster.evaluate_plan(per_device).max_cost_ms
    print(f"\nhand-repaired plan: {final:.2f} ms; "
          f"full NeuroShard search: {neuro_cost:.2f} ms")
    print("single-edit repair closes most of the gap; the search buys the "
          "rest (and the column splits).")


if __name__ == "__main__":
    main()
